"""Scheduled maintenance: checkpoint-and-terminate, then restart elsewhere.

Run:  python examples/maintenance_migration.py

The asynchronous tool workflow from the paper's introduction ("these
tools enable system administrators and support services the ability to
checkpoint a user's job for various reasons such as system
maintenance"), including the usability point of section 4: the
administrator needs *no knowledge of how the job was started* — the
global snapshot reference carries the application identity, arguments,
and runtime parameters.

1. a user launches a long Jacobi run with custom MCA parameters;
2. the administrator checkpoint-terminates it (``ompi-checkpoint
   --term``) to drain the machines;
3. two of the four nodes are taken down for maintenance;
4. later, the administrator restarts the job from the reference alone;
   the runtime replays the recorded parameters and re-maps ranks onto
   the surviving nodes (paper section 6.3: "reconnecting peers when
   restarting in new process topologies");
5. the final results match an undisturbed run exactly.
"""

from repro.mca.params import MCAParams
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.tools.api import (
    checkpoint_ref,
    ompi_checkpoint,
    ompi_restart,
    ompi_run,
)

ARGS = {"n_global": 512, "iters": 40000}
USER_PARAMS = {"pml_ob1_eager_limit": "32768", "coll_basic_bcast_algorithm": "linear"}


def main() -> None:
    healthy = Universe(Cluster(ClusterSpec(n_nodes=4)), MCAParams())
    baseline = ompi_run(healthy, "jacobi", 4, args=ARGS, params=MCAParams(USER_PARAMS))
    print(f"baseline: checksum={baseline.results[0]['checksum']:.9f}")

    universe = Universe(Cluster(ClusterSpec(n_nodes=4)), MCAParams())

    # 1. The user's job, with their private parameter tweaks.
    job = ompi_run(
        universe, "jacobi", 4, args=ARGS, params=MCAParams(USER_PARAMS), wait=False
    )

    # 2. The administrator checkpoints-and-terminates it mid-run.  They
    #    know only the jobid (from ompi-ps) — nothing about the app.
    handle = ompi_checkpoint(universe, job.jobid, at=0.1, terminate=True, wait=False)
    universe.run_job_to_completion(job)
    ref = checkpoint_ref(handle)
    print(f"\njob {job.jobid} halted into {ref.path}")

    # 3. Maintenance window: two nodes leave service.
    universe.cluster.failures.crash_node_now("node02")
    universe.cluster.failures.crash_node_now("node03")
    up = [n.name for n in universe.cluster.up_nodes]
    print(f"nodes in service: {up}")

    # 4. Restart from the reference alone.
    new_job = ompi_restart(universe, ref)
    print(f"\nrestarted as job {new_job.jobid}: {new_job.state.value}")
    print(f"rank placements after maintenance: {new_job.placements}")
    print(f"user parameters preserved: "
          f"eager_limit={new_job.params.get('pml_ob1_eager_limit')}, "
          f"bcast={new_job.params.get('coll_basic_bcast_algorithm')}")

    # 5. Identical results.
    match = new_job.results[0] == baseline.results[0]
    print(f"results identical to undisturbed run: {match}")
    assert match


if __name__ == "__main__":
    main()
