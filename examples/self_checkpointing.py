"""Application-level checkpointing with the SELF CRS component.

Run:  python examples/self_checkpointing.py

The paper ships two checkpointers: BLCR (system-level, transparent —
``simcr`` here) and SELF, where the application registers callbacks and
provides its own state (sections 2, 6.4).  SELF suits applications
whose meaningful state is much smaller than their memory image — here,
a phase counter and an accumulator instead of a full op history.

The pattern:

* keep restartable state in one structure;
* register a ``checkpoint`` callback returning a snapshot of it;
* on startup, look at ``ctx.restored_state`` and fast-forward;
* checkpoint at communication-quiescent points (right after a
  collective) — application-level checkpointing resumes from coarser
  state, so in-flight traffic must be your own responsibility.
"""

from repro.mca.params import MCAParams
from repro.apps.registry import app, has_app
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.tools.api import ompi_restart, ompi_run

PHASES = 8


if not has_app("self_ckpt_demo"):

    @app("self_ckpt_demo")
    def self_ckpt_demo(ctx):
        state = {"phase": 0, "acc": 0.0}
        if ctx.restored_state is not None:
            state = dict(ctx.restored_state)
            yield ctx.log(f"rank {ctx.rank}: resuming at phase {state['phase']}")

        ctx.register_self_callbacks(checkpoint=lambda: dict(state))

        while state["phase"] < PHASES:
            yield ctx.compute(seconds=0.005)
            state["acc"] += (state["phase"] + 1) ** 0.5
            state["phase"] += 1
            # Quiescent point: everyone synchronizes each phase.
            total = yield from ctx.allreduce(state["acc"])
            state["global"] = total
            # Halt the job mid-way exactly once (first life only).
            if state["phase"] == PHASES // 2 and ctx.rank == 0:
                result = yield ctx.checkpoint(terminate=True)
                assert result.get("restarted")
        return {"rank": ctx.rank, "acc": state["acc"], "global": state["global"]}


def main() -> None:
    universe = Universe(
        Cluster(ClusterSpec(n_nodes=2)), MCAParams({"crs": "self"})
    )
    job = ompi_run(universe, "self_ckpt_demo", 2, wait=False)
    universe.run_job_to_completion(job)
    print(f"first life: {job.state.value} "
          f"(snapshot {job.snapshots[-1].path})")

    # Image sizes tell the SELF story: user state only, not a full
    # process image.
    stable = universe.cluster.stable_fs
    image = stable.stat(f"{job.snapshots[-1].path}/rank0/image.pkl")
    print(f"rank 0 image size under SELF: {image.size} bytes")

    new_job = ompi_restart(universe, job.snapshots[-1])
    print(f"second life: {new_job.state.value}")
    for rank in sorted(new_job.results):
        r = new_job.results[rank]
        print(f"  rank {rank}: acc={r['acc']:.6f} global={r['global']:.6f}")
    expected = sum((p + 1) ** 0.5 for p in range(PHASES))
    assert abs(new_job.results[0]["acc"] - expected) < 1e-9


if __name__ == "__main__":
    main()
