"""Fault recovery: periodic checkpoints + node crash + automatic restart.

Run:  python examples/fault_recovery.py

The scenario the paper's fault tolerance exists for:

1. a long-running Jacobi job checkpoints itself periodically (the
   synchronous in-application API);
2. a compute node dies mid-run (injected non-transient failure);
3. the error manager — configured with the paper's "automatic,
   transparent recovery" extension — aborts the damaged job and
   restarts it from the latest global snapshot on the surviving nodes;
4. the recovered run produces bit-identical results to an
   uninterrupted baseline.
"""

from repro.mca.params import MCAParams
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.tools.api import ompi_run

ARGS = {"n_global": 256, "iters": 60000, "checkpoint_every": 8000}


def main() -> None:
    # Baseline on a healthy cluster.
    healthy = Universe(Cluster(ClusterSpec(n_nodes=4)), MCAParams())
    baseline = ompi_run(healthy, "jacobi", 4, args=ARGS)
    print(f"baseline: {baseline.state.value}, "
          f"checksum={baseline.results[0]['checksum']:.9f}")

    # Same job with autorecovery armed and a node crash scheduled.
    universe = Universe(
        Cluster(ClusterSpec(n_nodes=4)),
        MCAParams({"orte_errmgr_autorecover": "1"}),
    )
    job = ompi_run(universe, "jacobi", 4, args=ARGS, wait=False)
    universe.cluster.failures.crash_node_at(0.35, "node02")
    universe.run_job_to_completion(job)
    print(f"\nfailed job {job.jobid}: {job.state.value} "
          f"(lost ranks: {sorted(job.failed_ranks)})")
    print(f"snapshots taken before the crash: "
          f"{[ref.path for ref in job.snapshots]}")

    # The error manager restarted the job automatically.
    recoveries = universe.hnp.errmgr.recoveries
    assert recoveries, "autorecovery did not trigger"
    recovered = universe.job(recoveries[0][1])
    universe.run_job_to_completion(recovered)
    print(f"\nrecovered as job {recovered.jobid}: {recovered.state.value}")
    print(f"new placements: {recovered.placements}")
    match = recovered.results[0] == baseline.results[0]
    print(f"results identical to the uninterrupted baseline: {match}")
    assert match


if __name__ == "__main__":
    main()
