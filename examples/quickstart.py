"""Quickstart: launch an MPI job on a simulated cluster and checkpoint it.

Run:  python examples/quickstart.py

Walks the paper's happy path end to end:

1. boot a 4-node simulated cluster and its runtime (mpirun + orteds);
2. launch a 4-rank Jacobi solver;
3. while it runs, checkpoint the job asynchronously (as a system
   administrator would with ``ompi-checkpoint``);
4. show the single *global snapshot reference* that names the whole
   distributed checkpoint (paper section 4);
5. verify the application finished unperturbed.
"""

from repro.mca.params import MCAParams
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.tools.api import checkpoint_ref, ompi_checkpoint, ompi_ps, ompi_run


def main() -> None:
    # 1. The machine room: 4 dual-CPU nodes, GigE + InfiniBand, one
    #    shared stable-storage filesystem.
    cluster = Cluster(ClusterSpec(n_nodes=4))
    universe = Universe(cluster, MCAParams())

    # 2. mpirun -np 4 jacobi
    job = ompi_run(
        universe, "jacobi", 4, args={"n_global": 256, "iters": 30000}, wait=False
    )

    # 3. ompi-checkpoint <jobid>, fired at t=80ms of simulated time.
    handle = ompi_checkpoint(universe, job.jobid, at=0.08, wait=False)

    # Drive the simulation until the job completes.
    universe.run_job_to_completion(job)

    # 4. One reference names the whole distributed checkpoint.
    ref = checkpoint_ref(handle)
    print(f"job {job.jobid} state: {job.state.value}")
    print(f"global snapshot reference: {ref.path}")
    meta_files = universe.cluster.stable_fs.list_tree(ref.path)
    print(f"files under the reference: {len(meta_files)}")
    for path in meta_files[:6]:
        print(f"  {path}")

    # 5. The checkpoint did not perturb the computation.
    print("\nper-rank results:")
    for rank in sorted(job.results):
        r = job.results[rank]
        print(f"  rank {rank}: iters={r['iters']} checksum={r['checksum']:.6f}")

    print("\nompi-ps:")
    for row in ompi_ps(universe):
        print(
            f"  job {row['jobid']}: {row['app']} np={row['np']} "
            f"{row['state']} snapshots={len(row['snapshots'])}"
        )


if __name__ == "__main__":
    main()
