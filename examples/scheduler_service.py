"""A checkpointing scheduler service + live process migration.

Run:  python examples/scheduler_service.py

The paper positions asynchronous checkpointing as something *support
services* drive ("e.g., schedulers", §1) and lists process migration
as an intended extension (§8).  This example plays the scheduler:

1. a CG solver job runs with a periodic checkpoint service attached
   (every 150 simulated ms);
2. mid-run, the scheduler decides node01 must be vacated and migrates
   the whole job onto the remaining nodes with ``ompi-migrate``
   (checkpoint-terminate + placed restart under the hood);
3. the migrated job finishes with exactly the baseline results.
"""

from repro.mca.params import MCAParams
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.tools.api import ompi_migrate, ompi_ps, ompi_run
from repro.tools.info import render_info
from repro.tools.scheduler import PeriodicCheckpointer

ARGS = {"n_global": 512, "max_iters": 600, "tol": 1e-12, "iter_compute_s": 0.002}


def main() -> None:
    print(render_info().splitlines()[0])  # what this build offers
    baseline = ompi_run(
        Universe(Cluster(ClusterSpec(n_nodes=4)), MCAParams()),
        "cg",
        4,
        args=ARGS,
    )
    print(f"baseline: iters={baseline.results[0]['iters']} "
          f"checksum={baseline.results[0]['checksum']:.6f}")

    universe = Universe(Cluster(ClusterSpec(n_nodes=4)), MCAParams())
    job = ompi_run(universe, "cg", 4, args=ARGS, wait=False)

    # 1. the scheduler's periodic checkpoint service
    service = PeriodicCheckpointer(universe, job.jobid, interval_s=0.15)
    service.start(first_at=0.1)

    # 2. vacate node01 mid-run: migrate every rank it hosts to node02
    handle = ompi_migrate(
        universe, job.jobid, {1: "node02", 3: "node02"}, at=0.3, wait=False
    )
    reply = handle.wait_stepped()
    assert reply["ok"], reply
    migrated = universe.job(reply["jobid"])
    universe.run_job_to_completion(migrated)

    print(f"\nperiodic snapshots taken before migration: {len(service.taken)}")
    print(f"old job {job.jobid}: {job.state.value}")
    print(f"migrated job {migrated.jobid}: {migrated.state.value}")
    print(f"placements: {migrated.placements}  (node01 vacated)")
    assert "node01" not in {migrated.placements[1], migrated.placements[3]}

    # 3. results unchanged
    match = migrated.results[0] == baseline.results[0]
    print(f"results identical to baseline: {match}")
    assert match

    print("\nompi-ps:")
    for row in ompi_ps(universe):
        print(f"  job {row['jobid']}: {row['app']} {row['state']} "
              f"snapshots={len(row['snapshots'])}")


if __name__ == "__main__":
    main()
