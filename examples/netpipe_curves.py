"""NetPIPE on the simulated testbed: latency/bandwidth vs message size.

Run:  python examples/netpipe_curves.py

Reproduces the measurement instrument of the paper's section 7 on both
of the testbed's interconnects (gigabit Ethernet and InfiniBand), and
demonstrates the headline result: enabling the checkpoint/restart
infrastructure leaves the modeled communication performance untouched.
"""

from repro.bench.harness import Row, format_table
from repro.bench.netpipe_bench import CONFIGS, _run_netpipe, netpipe_simtime_series

SIZES = [1 << i for i in range(0, 23, 2)]


def main() -> None:
    ib = netpipe_simtime_series(sizes=SIZES, reps=3)
    eth = netpipe_simtime_series(sizes=SIZES, reps=3, btl="tcp")

    rows = []
    for (size, ib_lat, ib_bw), (_s, eth_lat, eth_bw) in zip(ib, eth):
        rows.append(
            Row(
                f"{size} B",
                {
                    "IB lat us": ib_lat * 1e6,
                    "IB MB/s": ib_bw / 1e6,
                    "GigE lat us": eth_lat * 1e6,
                    "GigE MB/s": eth_bw / 1e6,
                },
            )
        )
    print(
        format_table(
            "NetPIPE curves (simulated testbed)",
            ["IB lat us", "IB MB/s", "GigE lat us", "GigE MB/s"],
            rows,
        )
    )

    # FT on vs off: modeled performance identical (paper: 0% overhead).
    print("\nC/R infrastructure impact on modeled latency:")
    for name, params in CONFIGS.items():
        _wall, series = _run_netpipe(params, [64, 1 << 20], 3)
        small, large = series[0][1] * 1e6, series[1][1] * 1e6
        print(f"  {name:9s}: 64 B -> {small:8.3f} us   1 MiB -> {large:9.3f} us")


if __name__ == "__main__":
    main()
