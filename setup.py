"""Legacy setup shim.

The reproduction environment is offline and has no ``wheel`` package,
so ``pip install -e .`` (PEP 660) cannot build an editable wheel.
``python setup.py develop`` installs the same editable mapping without
needing wheel.  Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
