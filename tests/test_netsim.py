"""Unit tests for the network substrate."""

import pytest

from repro.netsim.models import LinkModel, ethernet_1g, infiniband, loopback
from repro.netsim.transport import Endpoint
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.util.errors import NetworkError
from tests.conftest import run_gen


class TestLinkModels:
    def test_transfer_time_components(self):
        model = LinkModel("x", latency_s=1e-5, bandwidth_Bps=1e8, per_msg_overhead_s=1e-6)
        assert model.transmit_time(0) == pytest.approx(1e-6)
        assert model.transmit_time(1_000_000) == pytest.approx(1e-6 + 0.01)
        assert model.transfer_time(0) == pytest.approx(1.1e-5)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ethernet_1g().transmit_time(-1)

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            LinkModel("x", latency_s=-1, bandwidth_Bps=1)
        with pytest.raises(ValueError):
            LinkModel("x", latency_s=0, bandwidth_Bps=0)

    def test_paper_testbed_relationships(self):
        eth, ib = ethernet_1g(), infiniband()
        # IB: an order of magnitude lower latency, much higher bandwidth.
        assert ib.latency_s * 5 <= eth.latency_s
        assert ib.bandwidth_Bps >= 5 * eth.bandwidth_Bps
        assert eth.checkpointable and not ib.checkpointable
        assert loopback().checkpointable


class TestFabric:
    def _pair(self, cluster):
        eth = cluster.eth
        a = eth.bind("node00", "pA")
        b = eth.bind("node01", "pB")
        return eth, a, b

    def test_send_recv_roundtrip(self, cluster):
        eth, a, b = self._pair(cluster)

        def main():
            yield from eth.send(a, b, {"x": 1}, 100)
            dgram = yield from eth.recv(b)
            return dgram

        dgram = run_gen(cluster.kernel, main())
        assert dgram.payload == {"x": 1}
        assert dgram.src == a and dgram.dst == b
        assert cluster.kernel.now >= eth.model.transfer_time(100)

    def test_in_order_delivery(self, cluster):
        eth, a, b = self._pair(cluster)

        def sender():
            for i in range(10):
                yield from eth.send(a, b, i, 50)

        def receiver():
            got = []
            for _ in range(10):
                dgram = yield from eth.recv(b)
                got.append(dgram.payload)
            return got

        cluster.kernel.spawn(sender(), "s")
        thread = cluster.kernel.spawn(receiver(), "r")
        cluster.kernel.run()
        assert thread.result == list(range(10))

    def test_nic_serialization_spreads_transmissions(self, cluster):
        """Two concurrent large sends from one node serialize on the NIC."""
        eth = cluster.eth
        a = eth.bind("node00", "p")
        b = eth.bind("node01", "p")
        size = 1_000_000

        def send_two():
            # Two threads sending concurrently from the same NIC.
            done = []

            def one():
                yield from eth.send(a, b, "x", size)
                done.append(cluster.kernel.now)

            cluster.kernel.spawn(one(), "s1")
            cluster.kernel.spawn(one(), "s2")
            yield from eth.recv(b)
            yield from eth.recv(b)
            return done

        done = run_gen(cluster.kernel, send_two())
        one_tx = eth.model.transmit_time(size)
        assert max(done) >= 2 * one_tx * 0.99

    def test_unbound_destination_drops(self, cluster):
        eth = cluster.eth
        a = eth.bind("node00", "p")
        ghost = Endpoint("node01", "ghost")

        def main():
            yield from eth.send(a, ghost, "x", 10)

        run_gen(cluster.kernel, main())
        assert eth.dropped == 1
        assert eth.delivered == 0

    def test_down_node_drops(self, cluster):
        eth = cluster.eth
        a = eth.bind("node00", "p")
        b = eth.bind("node01", "p")

        def main():
            cluster.node("node01").crash()
            yield from eth.send(a, b, "x", 10)

        run_gen(cluster.kernel, main())
        assert eth.dropped == 1

    def test_send_from_down_node_raises(self, cluster):
        eth = cluster.eth
        a = eth.bind("node00", "p")
        b = eth.bind("node01", "p")
        cluster.node("node00").crash()

        def main():
            yield from eth.send(a, b, "x", 10)

        with pytest.raises(NetworkError):
            run_gen(cluster.kernel, main())

    def test_double_bind_rejected(self, cluster):
        cluster.eth.bind("node00", "p")
        with pytest.raises(NetworkError):
            cluster.eth.bind("node00", "p")

    def test_bind_unknown_node_rejected(self, cluster):
        with pytest.raises(NetworkError):
            cluster.eth.bind("nodeXX", "p")

    def test_unbind_then_recv_rejected(self, cluster):
        ep = cluster.eth.bind("node00", "p")
        cluster.eth.unbind(ep)

        def main():
            yield from cluster.eth.recv(ep)

        with pytest.raises(NetworkError):
            run_gen(cluster.kernel, main())

    def test_try_recv_and_pending(self, cluster):
        eth, a, b = self._pair(cluster)
        ok, _ = eth.try_recv(b)
        assert not ok

        def main():
            yield from eth.send(a, b, "z", 10)

        run_gen(cluster.kernel, main())
        assert eth.pending(b) == 1
        ok, dgram = eth.try_recv(b)
        assert ok and dgram.payload == "z"

    def test_in_flight_accounting_returns_to_zero(self, cluster):
        eth, a, b = self._pair(cluster)

        def main():
            for _ in range(5):
                yield from eth.send(a, b, "m", 1000)
            for _ in range(5):
                yield from eth.recv(b)

        run_gen(cluster.kernel, main())
        assert eth.in_flight == 0
        assert eth.delivered == 5

    def test_nic_counters(self, cluster):
        eth, a, b = self._pair(cluster)

        def main():
            yield from eth.send(a, b, "m", 123)
            yield from eth.recv(b)

        run_gen(cluster.kernel, main())
        nic_a = cluster.node("node00").nics["eth"]
        nic_b = cluster.node("node01").nics["eth"]
        assert nic_a.tx_msgs == 1 and nic_a.tx_bytes == 123
        assert nic_b.rx_msgs == 1 and nic_b.rx_bytes == 123


class TestClusterTopology:
    def test_default_fabrics(self, cluster):
        assert set(cluster.fabrics) == {"eth", "ib", "lo"}

    def test_no_infiniband_option(self):
        cluster = Cluster(ClusterSpec(n_nodes=2, with_infiniband=False))
        assert set(cluster.fabrics) == {"eth", "lo"}

    def test_every_node_on_every_fabric(self, cluster):
        for node in cluster.nodes:
            assert set(node.nics) == {"eth", "ib", "lo"}

    def test_node_lookup(self, cluster):
        assert cluster.node(0) is cluster.node("node00")
        with pytest.raises(KeyError):
            cluster.node("nodeXY")
        with pytest.raises(KeyError):
            cluster.fabric("myrinet")

    def test_rng_streams_deterministic(self, cluster):
        a1 = cluster.rng("s").uniform()
        a2 = Cluster(ClusterSpec(n_nodes=4)).rng("s").uniform()
        assert a1 == a2
        assert cluster.rng("other").uniform() != a1

    def test_rng_streams_persistent(self, cluster):
        """Repeated cluster.rng() calls return ONE stream that advances
        state — the Poisson-process fix: re-seeding per call would draw
        the identical first sample forever."""
        assert cluster.rng("s") is cluster.rng("s")
        draws = [cluster.rng("s").uniform() for _ in range(4)]
        assert len(set(draws)) == len(draws)
        # a fresh same-seed cluster reproduces the full sequence
        other = Cluster(ClusterSpec(n_nodes=4))
        assert [other.rng("s").uniform() for _ in range(4)] == draws
