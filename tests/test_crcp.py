"""Tests of the CRCP framework: wrapper interposition, bookmark
counting, gating, and drain behaviour."""

import numpy as np

from repro.mca.params import MCAParams
from repro.ompi.crcp.wrapper import CRCPWrapperPML
from repro.tools.api import ompi_checkpoint, ompi_restart, ompi_run
from tests.conftest import make_universe
from tests.test_pml import define_app


class TestWrapperInterposition:
    def test_wrapper_installed_when_ft_enabled(self):
        universe = make_universe(2)
        seen = {}

        def main(ctx):
            seen["pml_type"] = type(ctx._runner.ompi.pml).__name__
            seen["crcp_name"] = ctx._runner.ompi.crcp.name
            yield ctx.compute(seconds=0.0)

        define_app("t_wrap1", main)
        ompi_run(universe, "t_wrap1", 1)
        assert seen["pml_type"] == "CRCPWrapperPML"
        assert seen["crcp_name"] == "coord"

    def test_no_wrapper_when_ft_disabled(self):
        universe = make_universe(2)
        seen = {}

        def main(ctx):
            seen["pml_type"] = type(ctx._runner.ompi.pml).__name__
            seen["crcp"] = ctx._runner.ompi.crcp
            yield ctx.compute(seconds=0.0)

        define_app("t_wrap2", main)
        ompi_run(universe, "t_wrap2", 1, params=MCAParams({"ompi_cr_enabled": "0"}))
        assert seen["pml_type"] == "Ob1PML"
        assert seen["crcp"] is None

    def test_passthrough_component_selectable(self):
        universe = make_universe(2)
        seen = {}

        def main(ctx):
            seen["crcp_name"] = ctx._runner.ompi.crcp.name
            if ctx.rank == 0:
                yield from ctx.send(1, 1, 1)
            else:
                yield from ctx.recv(0, 1)

        define_app("t_wrap3", main)
        job = ompi_run(universe, "t_wrap3", 2, params=MCAParams({"crcp": "none"}))
        assert job.state.value == "finished"
        assert seen["crcp_name"] == "none"

    def test_passthrough_refuses_checkpoint(self):
        universe = make_universe(2)

        def main(ctx):
            yield ctx.compute(seconds=0.2)

        define_app("t_wrap4", main)
        job = ompi_run(
            universe, "t_wrap4", 2, params=MCAParams({"crcp": "none"}), wait=False
        )
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"  # unharmed (section 5.1)
        assert handle.result()["ok"] is False


class TestBookmarkCounting:
    def test_counts_match_traffic(self):
        universe = make_universe(2)
        counts = {}

        def main(ctx):
            crcp = ctx._runner.ompi.crcp
            if ctx.rank == 0:
                for _ in range(5):
                    yield from ctx.send("m", 1, 1)
                yield from ctx.barrier()
                counts["sent_by_0"] = dict(crcp.sent_count)
            else:
                yield from ctx.barrier()
                for _ in range(5):
                    yield from ctx.recv(0, 1)
                counts["recvd_by_1"] = dict(crcp.recvd_count)

        define_app("t_counts", main)
        ompi_run(universe, "t_counts", 2)
        # 5 app messages + barrier traffic toward peer 1
        assert counts["sent_by_0"][1] >= 5
        assert counts["recvd_by_1"][0] >= 5

    def test_counts_restored_after_restart(self):
        universe = make_universe(2)
        observed = []

        def main(ctx):
            crcp = ctx._runner.ompi.crcp
            for step in range(4):
                if ctx.rank == 0:
                    yield from ctx.send(step, 1, 1)
                else:
                    yield from ctx.recv(0, 1)
                yield from ctx.barrier()
                if step == 1 and ctx.rank == 0:
                    yield ctx.checkpoint(terminate=True)
            observed.append((ctx.rank, dict(crcp.sent_count), dict(crcp.recvd_count)))
            return "ok"

        define_app("t_counts_restart", main)
        job = ompi_run(universe, "t_counts_restart", 2, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        # Counts continued from the restored values: rank 0 sent 4 app
        # messages total across both lives.
        rank0 = next(o for o in observed if o[0] == 0)
        assert rank0[1][1] >= 4


class TestDrain:
    def test_inflight_burst_survives_checkpoint_restart(self):
        """Messages in flight at checkpoint time are drained into the
        receiver's image and delivered after restart."""
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                for i in range(20):
                    req = yield ctx.isend(np.full(10, i), 1, 7)
                    yield ctx.wait(req)
                result = yield ctx.checkpoint(terminate=True)
                assert result.get("restarted")  # only reached after restart
                return "sender done"
            # Receiver sleeps so the burst is unconsumed at checkpoint.
            yield ctx.compute(seconds=0.5)
            total = 0
            for _ in range(20):
                payload, _ = yield from ctx.recv(0, 7)
                total += int(payload[0])
            return total

        define_app("t_drain", main)
        job = ompi_run(universe, "t_drain", 2, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        assert new_job.results[1] == sum(range(20))

    def test_large_rendezvous_drained(self):
        """A rendezvous transfer whose RTS is unmatched at checkpoint
        time must be pulled in by the drain (forced CTS)."""
        universe = make_universe(2)

        def main(ctx):
            big = np.arange(100_000, dtype=np.int64)
            if ctx.rank == 0:
                # Checkpoint while the RTS is outstanding and unmatched:
                # the drain must force a CTS and pull the payload in.
                req = yield ctx.isend(big, 1, 9)
                result = yield ctx.checkpoint(terminate=True)
                assert result.get("restarted")
                yield ctx.wait(req)
                return "sent"
            yield ctx.compute(seconds=0.5)  # has not posted the recv yet
            payload, _ = yield from ctx.recv(0, 9)
            return int(payload.sum())

        define_app("t_drain_rndv", main)
        job = ompi_run(universe, "t_drain_rndv", 2, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        expected = int(np.arange(100_000, dtype=np.int64).sum())
        assert new_job.results[1] == expected

    def test_fabric_empty_after_coordination(self):
        """The data fabrics must hold no in-flight MPI traffic at
        capture time (the drain invariant)."""
        universe = make_universe(2)
        snapshot_state = {}

        def main(ctx):
            if ctx.rank == 0:
                for i in range(10):
                    yield from ctx.send(i, 1, 3)
                result = yield ctx.checkpoint()
                snapshot_state["ok"] = result["ok"]
            else:
                yield ctx.compute(seconds=0.3)
                for _ in range(10):
                    yield from ctx.recv(0, 3)

        define_app("t_drain_inv", main)
        job = ompi_run(universe, "t_drain_inv", 2)
        assert job.state.value == "finished"
        assert snapshot_state["ok"]


class TestTwoPhaseProtocol:
    """The alternative coordination protocol must pass the same
    scenarios as ``coord`` — the constant-environment comparison the
    framework exists for."""

    PARAMS = {"crcp": "twophase"}

    def test_selected_by_parameter(self):
        universe = make_universe(2, params=self.PARAMS)
        seen = {}

        def main(ctx):
            seen["crcp"] = ctx._runner.ompi.crcp.name
            yield ctx.compute(seconds=0.0)

        define_app("t_tp_sel", main)
        ompi_run(universe, "t_tp_sel", 1)
        assert seen["crcp"] == "twophase"

    def test_checkpoint_continue_exact(self):
        args = {"loops": 60, "compute_s": 0.01, "msgs_per_loop": 2}
        base = ompi_run(make_universe(2), "churn", 2, args=args).results
        universe = make_universe(2, params=self.PARAMS)
        job = ompi_run(universe, "churn", 2, args=args, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.15, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"
        assert handle.result()["ok"], handle.result()
        assert job.results == base

    def test_rendezvous_drain_and_restart(self):
        universe = make_universe(2, params=self.PARAMS)

        def main(ctx):
            big = np.arange(100_000, dtype=np.int64)
            if ctx.rank == 0:
                req = yield ctx.isend(big, 1, 9)
                result = yield ctx.checkpoint(terminate=True)
                assert result.get("restarted")
                yield ctx.wait(req)
                return "sent"
            yield ctx.compute(seconds=0.5)
            payload, _ = yield from ctx.recv(0, 9)
            return int(payload.sum())

        define_app("t_tp_drain", main)
        job = ompi_run(universe, "t_tp_drain", 2, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        expected = int(np.arange(100_000, dtype=np.int64).sum())
        assert new_job.results[1] == expected

    def test_abort_on_racing_finalize(self):
        universe = make_universe(2, params=self.PARAMS)

        def main(ctx):
            if ctx.rank == 0:
                yield ctx.compute(seconds=0.2)
                result = yield ctx.checkpoint(allow_fail=True)
                return result["ok"]
            yield ctx.compute(seconds=0.19999)
            return "early"

        define_app("t_tp_race", main)
        job = ompi_run(universe, "t_tp_race", 2)
        assert job.state.value == "finished"

    def test_multiple_rounds_recorded(self):
        universe = make_universe(4, params=self.PARAMS)
        stats = {}

        def main(ctx):
            if ctx.rank == 0:
                for _ in range(5):
                    yield from ctx.send("m", 1, 1)
                result = yield ctx.checkpoint()
                assert result["ok"]
                stats.update(ctx._runner.ompi.crcp.stats)
            else:
                yield ctx.compute(seconds=0.3)
                if ctx.rank == 1:
                    for _ in range(5):
                        yield from ctx.recv(0, 1)

        define_app("t_tp_rounds", main)
        job = ompi_run(universe, "t_tp_rounds", 4)
        assert job.state.value == "finished"
        assert stats["coordinations"] == 1
        assert stats["rounds"] >= 2  # settle needs two stable rounds


class TestGate:
    def test_sends_blocked_during_checkpoint_then_resume(self):
        """New sends initiated during a checkpoint wait for CONTINUE."""
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                # Interleave sends with a checkpoint; all must arrive.
                for i in range(3):
                    yield from ctx.send(i, 1, 2)
                result = yield ctx.checkpoint()
                assert result["ok"]
                for i in range(3, 6):
                    yield from ctx.send(i, 1, 2)
                return "done"
            got = []
            for _ in range(6):
                payload, _ = yield from ctx.recv(0, 2)
                got.append(payload)
            return got

        define_app("t_gate", main)
        job = ompi_run(universe, "t_gate", 2)
        assert job.state.value == "finished"
        assert job.results[1] == list(range(6))
