"""Content-addressed snapshot store: unit tests for the chunk store,
the offer/ship staging path, restart-time chunk verification, and
garbage collection across interval retirement.

Integration timings follow the churn conventions of
``test_errmgr_recovery``: a 4 MB-per-rank interval requested at ``t``
is committed well before ``t + 0.25`` sim-seconds (the CAS path ships
only unique chunks, so it commits even faster than plain staging).
"""

from __future__ import annotations

import pytest

from repro.opal.crs import chunks as chunkstore
from repro.snapshot import parse_global_dirname, read_global_meta
from repro.tools.api import (
    checkpoint_ref,
    ompi_checkpoint,
    ompi_restart,
    ompi_run,
)
from repro.util.errors import RestartError, SnapshotError
from repro.vfs.cas import ChunkStore, chunk_digest
from repro.vfs.fsbase import FS
from tests.conftest import make_universe, run_gen

CAS = {"snapc_full_cas": "1", "filem": "rsh"}
#: ~0.55 sim-seconds of runtime, 4 MB of (mostly zero) state per rank
CHURN = {"loops": 50, "compute_s": 0.01, "state_bytes": 4 << 20}
JACOBI = {"n_global": 256, "iters": 30000}


def _read_manifest(universe, ref, rank):
    stable = universe.cluster.stable_fs
    return run_gen(
        universe.kernel,
        chunkstore.read_manifest(stable, ref.local_dir(rank)),
    )


def _stager(universe):
    return universe.hnp.snapc.stager(universe.hnp)


class TestChunkStore:
    @pytest.fixture
    def fs(self, kernel):
        return FS(kernel, "stable", bandwidth_Bps=1e8, op_latency_s=0.001)

    @pytest.fixture
    def store(self, fs):
        return ChunkStore(fs, root="/cas")

    def test_put_get_roundtrip_and_dedup(self, kernel, store):
        data = b"chunk payload"
        digest = chunk_digest(data)

        def main():
            first = yield from store.put(digest, data)
            second = yield from store.put(digest, data)
            blob = yield from store.get(digest)
            return first, second, blob

        first, second, blob = run_gen(kernel, main())
        assert first == len(data)
        assert second == 0  # dedup hit: no bytes written
        assert blob == data
        assert store.has(digest)

    def test_put_rejects_mismatched_digest(self, kernel, store):
        def main():
            yield from store.put(chunk_digest(b"expected"), b"actual")

        with pytest.raises(SnapshotError, match="does not match"):
            run_gen(kernel, main())

    def test_get_absent_chunk_raises(self, kernel, store):
        def main():
            yield from store.get(chunk_digest(b"never stored"))

        with pytest.raises(SnapshotError, match="absent"):
            run_gen(kernel, main())

    def test_get_verifies_content(self, kernel, fs, store):
        data = b"to be corrupted"
        digest = chunk_digest(data)
        run_gen(kernel, store.put(digest, data))
        fs.poke(store.blob_path(digest), b"garbage")

        def main():
            yield from store.get(digest)

        with pytest.raises(SnapshotError, match="verification"):
            run_gen(kernel, main())

    def test_missing_answers_offer_in_order(self, kernel, store):
        held = b"already here"
        run_gen(kernel, store.put(chunk_digest(held), held))
        d_a, d_b = chunk_digest(b"aa"), chunk_digest(b"bb")
        offer = [d_a, chunk_digest(held), d_b, d_a]  # duplicates collapse
        assert store.missing(offer) == [d_a, d_b]
        assert store.missing([chunk_digest(held)]) == []

    def test_refcounts_and_gc(self, kernel, store):
        shared, only_a = b"shared", b"only-a"
        d_shared, d_only = chunk_digest(shared), chunk_digest(only_a)

        def setup():
            yield from store.put(d_shared, shared)
            yield from store.put(d_only, only_a)
            yield from store.add_refs("/snap/a", [d_shared, d_only])
            yield from store.add_refs("/snap/b", [d_shared])
            # idempotent merge: re-adding does not duplicate anything
            yield from store.add_refs("/snap/b", [d_shared])

        run_gen(kernel, setup())
        assert store.refcount(d_shared) == 2
        assert store.refcount(d_only) == 1
        assert store.owners() == ["/snap/a", "/snap/b"]

        removed, freed = run_gen(kernel, store.gc())
        assert (removed, freed) == (0, 0)  # everything still referenced

        run_gen(kernel, store.release("/snap/a"))
        removed, freed = run_gen(kernel, store.gc())
        assert removed == 1 and freed == len(only_a)
        assert store.has(d_shared) and not store.has(d_only)

        run_gen(kernel, store.release("/snap/b"))
        removed, _ = run_gen(kernel, store.gc())
        assert removed == 1
        assert store.stats()["blobs"] == 0

    def test_stats(self, kernel, store):
        data = b"x" * 100
        run_gen(kernel, store.put(chunk_digest(data), data))
        run_gen(kernel, store.add_refs("/snap/a", [chunk_digest(data)]))
        stats = store.stats()
        assert stats == {
            "blobs": 1, "stored_bytes": 100, "owners": 1, "referenced": 1
        }


class TestManifestEdgeCases:
    def test_split_chunks_empty_blob(self):
        # An empty image is one empty chunk, not zero chunks — the
        # manifest always has at least one hash to verify against.
        assert chunkstore.split_chunks(b"", 4) == [b""]
        assert chunkstore.split_chunks(b"", 1 << 20) == [b""]

    def test_empty_image_round_trips_through_chunks(self, kernel):
        fs = FS(kernel, "t", bandwidth_Bps=1e8, op_latency_s=0.001)
        chunks = chunkstore.split_chunks(b"", 64)
        hashes = [chunkstore.hash_chunk(c) for c in chunks]

        def main():
            yield from fs.write("/s/1/image.pkl", b"")
            manifest = yield from chunkstore.write_full_manifest(
                fs, "/s/1", 64, 0, hashes, 1
            )
            payloads = yield from chunkstore.load_chunks(
                fs, "/s/1", manifest, [0], "image.pkl"
            )
            blob, _ = yield from chunkstore.reconstruct_chain(
                fs, ["/s/1"], "image.pkl"
            )
            return payloads, blob

        payloads, blob = run_gen(kernel, main())
        assert payloads == {0: b""}
        assert blob == b""

    def test_manifest_unknown_keys_raise_snapshot_error(self):
        good = chunkstore.ChunkManifest(
            kind="full", chunk_bytes=4, total_bytes=8,
            hashes=["a", "b"], present=[0, 1], interval=1,
        )
        raw = good.to_json()
        assert chunkstore.ChunkManifest.from_json(raw).hashes == ["a", "b"]
        tampered = raw.replace(b'"kind"', b'"bogus_key": 1, "kind"')
        with pytest.raises(SnapshotError, match="bad chunk manifest"):
            chunkstore.ChunkManifest.from_json(tampered)

    def test_manifest_garbage_json_raises_snapshot_error(self):
        with pytest.raises(SnapshotError):
            chunkstore.ChunkManifest.from_json(b"not json at all")


class TestChunkSizeChangeAcrossChain:
    """Regression: ``reconstruct_chain`` used the *newest* manifest's
    chunk geometry to split the base image, corrupting any chain whose
    ``crs_base_chunk_bytes`` changed between intervals."""

    @staticmethod
    def _hashes(blob, chunk_bytes):
        return [
            chunkstore.hash_chunk(c)
            for c in chunkstore.split_chunks(blob, chunk_bytes)
        ]

    def test_delta_with_different_chunk_bytes_mid_chain(self, kernel):
        fs = FS(kernel, "t", bandwidth_Bps=1e8, op_latency_s=0.001)
        blob_a = bytes(range(20))
        blob_b = blob_a[:5] + b"\xff" + blob_a[6:]
        blob_c = blob_b[:17] + b"\xee" + blob_b[18:]

        def build():
            # interval 1: full image at 4-byte chunks
            yield from fs.write("/c/1/image.pkl", blob_a)
            yield from chunkstore.write_full_manifest(
                fs, "/c/1", 4, len(blob_a), self._hashes(blob_a, 4), 1
            )
            # interval 2: delta at the same geometry
            chunks_b = chunkstore.split_chunks(blob_b, 4)
            hashes_b = self._hashes(blob_b, 4)
            dirty = chunkstore.diff_chunks(hashes_b, self._hashes(blob_a, 4))
            yield from chunkstore.write_delta(
                fs, "/c/2", chunks_b, hashes_b, dirty, 4, 2, 1
            )
            # interval 3: the operator changed crs_base_chunk_bytes —
            # this delta's indices are relative to 3-byte chunks
            chunks_c = chunkstore.split_chunks(blob_c, 3)
            hashes_c = self._hashes(blob_c, 3)
            dirty = chunkstore.diff_chunks(hashes_c, self._hashes(blob_b, 3))
            yield from chunkstore.write_delta(
                fs, "/c/3", chunks_c, hashes_c, dirty, 3, 3, 2
            )
            blob, manifest = yield from chunkstore.reconstruct_chain(
                fs, ["/c/1", "/c/2", "/c/3"], "image.pkl"
            )
            return blob, manifest

        blob, manifest = run_gen(kernel, build())
        assert blob == blob_c
        assert manifest.chunk_bytes == 3

    def test_legacy_base_adopts_first_delta_geometry(self, kernel):
        fs = FS(kernel, "t", bandwidth_Bps=1e8, op_latency_s=0.001)
        blob_a = bytes(range(20))
        blob_b = blob_a[:5] + b"\xff" + blob_a[6:]

        def build():
            # pre-incremental layout: image only, no chunks.json
            yield from fs.write("/c/1/image.pkl", blob_a)
            chunks_b = chunkstore.split_chunks(blob_b, 3)
            hashes_b = self._hashes(blob_b, 3)
            dirty = chunkstore.diff_chunks(hashes_b, self._hashes(blob_a, 3))
            yield from chunkstore.write_delta(
                fs, "/c/2", chunks_b, hashes_b, dirty, 3, 2, 1
            )
            blob, _ = yield from chunkstore.reconstruct_chain(
                fs, ["/c/1", "/c/2"], "image.pkl"
            )
            return blob

        assert run_gen(kernel, build()) == blob_b


class TestCASStaging:
    def test_dedup_across_ranks_and_intervals(self):
        universe = make_universe(4, params=CAS)
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.35, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"

        stager = _stager(universe)
        records = stager.job_records(job.jobid)
        assert len(records) == 2
        assert all(r.cas and r.state == "committed" for r in records)
        r1, r2 = records
        # every rank's 4 MB image counts toward the logical size...
        assert r1.bytes_logical >= 4 * (4 << 20)
        # ...but the zero ballast collapses to a handful of unique
        # chunks: identical chunks across ranks ship exactly once
        assert r1.bytes_moved < r1.bytes_logical / 2
        # the second interval re-ships only chunks the store lacks
        assert r2.bytes_moved <= r1.bytes_moved
        assert r2.bytes_moved < r2.bytes_logical / 2

        # rank directories on stable storage hold metadata only — the
        # bytes live in the store, referenced per directory
        stable = universe.cluster.stable_fs
        store = stager.store
        for ref in job.snapshots:
            for rank in range(4):
                local = ref.local_dir(rank)
                assert stable.exists(f"{local}/chunks.json")
                assert stable.exists(f"{local}/metadata.json")
                assert not stable.exists(f"{local}/image.pkl")
                assert store.refcount(_read_manifest(
                    universe, ref, rank
                ).hashes[0]) >= 1
        stats = store.stats()
        assert stats["blobs"] > 0
        assert stats["owners"] == 8  # 2 intervals x 4 rank dirs
        # stored bytes stay well under the logical bytes (the dedup
        # contract E10 measures)
        assert stats["stored_bytes"] < (r1.bytes_logical + r2.bytes_logical) / 2

    def test_global_meta_marks_cas_interval(self):
        universe = make_universe(4, params=CAS)
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        universe.run_job_to_completion(job)
        ref = checkpoint_ref(handle)
        meta = run_gen(
            universe.kernel,
            read_global_meta(universe.cluster.stable_fs, ref),
        )
        assert meta.cas is True
        # CAS intervals are self-contained: restart never walks a chain
        assert meta.base_chain == []

    def test_shared_filem_falls_back_to_plain_staging(self):
        # The shared-FS FILEM writes directly to stable storage; it
        # cannot negotiate with the store, so CAS must quietly disable.
        universe = make_universe(
            4, params=dict(CAS, filem="shared")
        )
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        universe.run_job_to_completion(job)
        ref = checkpoint_ref(handle)
        records = _stager(universe).job_records(job.jobid)
        assert records and not any(r.cas for r in records)
        assert universe.cluster.stable_fs.exists(
            f"{ref.local_dir(0)}/image.pkl"
        )


class TestCASRestart:
    def test_restart_from_cas_snapshot_matches_baseline(self):
        baseline = ompi_run(
            make_universe(4), "jacobi", 4, args=JACOBI
        ).results
        universe = make_universe(4, params=CAS)
        job = ompi_run(universe, "jacobi", 4, args=JACOBI, wait=False)
        handle = ompi_checkpoint(
            universe, job.jobid, at=0.08, terminate=True, wait=False
        )
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, checkpoint_ref(handle))
        assert new_job.state.value == "finished"
        assert new_job.results == baseline

    def test_chunk_loss_is_retryable_and_repaired_by_restaging(self):
        """Losing a blob makes restart fail with a *retryable* error;
        any later checkpoint that ships the chunk repairs the store and
        the original snapshot restarts cleanly — nothing is ever
        permanently blacklisted."""
        universe = make_universe(4, params=CAS)
        job1 = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        h1 = ompi_checkpoint(universe, job1.jobid, at=0.1, wait=False)
        universe.run_job_to_completion(job1)
        ref1 = checkpoint_ref(h1)

        stable = universe.cluster.stable_fs
        store = _stager(universe).store
        # the most frequent digest is the all-zero ballast chunk, which
        # any later churn checkpoint is guaranteed to contain again
        hashes = _read_manifest(universe, ref1, 0).hashes
        victim = max(set(hashes), key=hashes.count)
        assert store.has(victim)
        run_gen(universe.kernel, stable.remove(store.blob_path(victim)))

        with pytest.raises(RestartError, match="absent from the store"):
            ompi_restart(universe, ref1)

        # repair by re-staging: a new job's checkpoint offers the same
        # digest, the store reports it missing, FILEM ships it again
        job2 = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        ompi_checkpoint(
            universe, job2.jobid, at=universe.kernel.now + 0.1, wait=False
        )
        universe.run_job_to_completion(job2)
        assert store.has(victim)

        new_job = ompi_restart(universe, ref1)
        assert new_job.state.value == "finished"

    def test_autorecover_walks_back_past_chunk_loss(self):
        """Recovery pre-verifies chunk presence: an interval with a
        missing blob is skipped for this episode (not blacklisted) and
        the walk-back lands on the older intact interval."""
        universe = make_universe(
            4, params=dict(CAS, orte_errmgr_autorecover="1")
        )
        args = dict(CHURN, loops=200)  # ~2 sim-seconds of runtime
        job = ompi_run(universe, "churn", 4, args=args, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.5, wait=False)

        def sabotage():
            stable = universe.cluster.stable_fs
            store = _stager(universe).store
            ref1, ref2 = job.snapshots
            held = set()
            for rank in range(4):
                manifest = yield from chunkstore.read_manifest(
                    stable, ref1.local_dir(rank)
                )
                held.update(manifest.hashes)
            manifest = yield from chunkstore.read_manifest(
                stable, ref2.local_dir(0)
            )
            unique = [d for d in manifest.hashes if d not in held]
            assert unique, "interval 2 shares every chunk with interval 1"
            yield from stable.remove(store.blob_path(unique[0]))

        universe.kernel.call_at(
            0.8,
            lambda: universe.hnp.proc.spawn_thread(
                sabotage(), name="sabotage", daemon=True
            ),
        )
        universe.cluster.failures.crash_node_at(0.9, "node03")
        universe.run_job_to_completion(job)

        errmgr = universe.hnp.errmgr
        [record] = errmgr.recovery_log
        assert record.recovered
        assert parse_global_dirname(record.snapshot) == (job.jobid, 1)
        final = universe.job(errmgr.recoveries[-1][1])
        assert final.state.value == "finished"


class TestSkipSetWalkBack:
    def test_pick_checks_delta_deps_against_skip_set(self):
        """A delta interval whose base failed a restart this episode
        must not be picked — its chain runs through a known-bad ref."""
        universe = make_universe(
            4, params={"snapc_full_interval_every": "3"}
        )
        job = ompi_run(
            universe, "churn", 4, args=dict(CHURN, loops=200), wait=False
        )
        ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.5, wait=False)
        universe.run_job_to_completion(job)
        ref1, ref2 = job.snapshots
        m2 = run_gen(
            universe.kernel,
            read_global_meta(universe.cluster.stable_fs, ref2),
        )
        assert m2.kind == "delta" and ref1.path in m2.base_chain

        errmgr = universe.hnp.errmgr
        picked = run_gen(universe.kernel, errmgr._pick_snapshot(job))
        assert picked is not None and picked[0].path == ref2.path
        # skipping the newest ref walks back to the base
        picked = run_gen(
            universe.kernel, errmgr._pick_snapshot(job, {ref2.path})
        )
        assert picked is not None and picked[0].path == ref1.path
        # skipping the *base* poisons every chain through it: the delta
        # interval is rejected even though its own ref is not skipped
        picked = run_gen(
            universe.kernel, errmgr._pick_snapshot(job, {ref1.path})
        )
        assert picked is None


class TestCASGarbageCollection:
    def test_purge_interval_keeps_shared_chunks(self):
        universe = make_universe(4, params=CAS)
        job = ompi_run(
            universe, "churn", 4, args=dict(CHURN, loops=80), wait=False
        )
        ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.35, wait=False)
        universe.run_job_to_completion(job)
        ref1, ref2 = job.snapshots

        stager = _stager(universe)
        store = stager.store
        stable = universe.cluster.stable_fs
        blobs_before = store.stats()["blobs"]
        shared = _read_manifest(universe, ref1, 0).hashes
        victim_digest = max(set(shared), key=shared.count)
        assert store.refcount(victim_digest) >= 2

        def purge(ref):
            meta = yield from read_global_meta(stable, ref)
            removed, freed = yield from stager.purge_interval(ref, meta)
            return removed, freed

        run_gen(universe.kernel, purge(ref2))
        # interval 1 still references the shared ballast chunk
        assert store.has(victim_digest)
        assert not stable.exists(ref2.path)
        assert store.stats()["owners"] == 4
        assert store.stats()["blobs"] <= blobs_before
        # interval 1 must still restart after its sibling's teardown
        new_job = ompi_restart(universe, ref1)
        assert new_job.state.value == "finished"

        removed, freed = run_gen(universe.kernel, purge(ref1))
        assert removed > 0 and freed > 0
        stats = store.stats()
        assert stats == {
            "blobs": 0, "stored_bytes": 0, "owners": 0, "referenced": 0
        }
