"""Hardened auto-recovery: cascading failures, walk-back, budgets.

These tests exercise the resilience subsystem around
:class:`repro.orte.errmgr.ErrMgr`: recovery that itself survives node
death, snapshot walk-back past unusable intervals, the seeded baseline
of recovered jobs, the recovery budget, and the periodic checkpoint
scheduler that keeps the baseline fresh.

Timings are pinned against the deterministic simulation: with the
churn app at 4 MB of state per rank an interval requested at ``t``
reaches stable storage roughly ``0.21`` sim-seconds later; at 16 MB the
restart broadcast alone spans ~0.5 sim-seconds, wide enough to land a
second crash mid-recovery.
"""

from __future__ import annotations

from repro.simenv.kernel import WaitEvent
from repro.snapshot import (
    STAGE_STAGING,
    parse_global_dirname,
    read_global_meta,
    write_global_meta,
)
from repro.tools.api import ompi_checkpoint, ompi_run
from repro.util.ids import ProcessName
from tests.conftest import make_universe, run_gen

#: ~2 sim-seconds of runtime, intervals commit ~0.21 s after request
CHURN_SMALL = {"loops": 200, "compute_s": 0.01, "state_bytes": 4 << 20}
#: big images: staging and restart broadcasts take ~0.4-0.5 sim-seconds
CHURN_BIG = {"loops": 100, "compute_s": 0.01, "state_bytes": 16 << 20}

RECOVER = {"orte_errmgr_autorecover": "1"}


def _final_job(universe):
    errmgr = universe.hnp.errmgr
    assert errmgr.recoveries, "no recovery happened"
    return universe.job(errmgr.recoveries[-1][1])


class TestCascadingFailures:
    def test_node_death_during_recovery_retries(self):
        """A node dying while the restart is in flight fails that
        attempt; the retry re-plans placement on surviving nodes."""
        universe = make_universe(4, params=RECOVER)
        job = ompi_run(universe, "churn", 4, args=CHURN_BIG, wait=False)
        # interval 1 commits ~0.58; crash after it, then again while
        # the ~0.5 s restart broadcast of the 16 MB images is in flight
        ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        universe.cluster.failures.crash_node_at(0.7, "node03")
        universe.cluster.failures.crash_node_at(0.9, "node02")
        universe.run_job_to_completion(job)

        errmgr = universe.hnp.errmgr
        # one episode, more than one attempt
        assert len(errmgr.recoveries) == 1
        [record] = errmgr.recovery_log
        assert record.attempts >= 2
        assert record.recovered
        final = _final_job(universe)
        assert final.state.value == "finished"
        # the successful attempt placed ranks only on surviving nodes
        up = {node.name for node in universe.cluster.up_nodes}
        assert set(final.placements.values()) <= up
        assert record.latency_s is not None and record.latency_s > 0
        assert record.work_lost_s is not None and record.work_lost_s > 0

    def test_refailure_recovers_from_seeded_baseline(self):
        """A recovered job that dies again before committing its own
        interval restarts from the baseline it was seeded with, and the
        periodic scheduler keeps checkpointing the final incarnation."""
        universe = make_universe(
            4, params=dict(RECOVER, snapc_full_checkpoint_every="0.25")
        )
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        universe.cluster.failures.crash_node_at(0.7, "node03")
        universe.cluster.failures.crash_node_at(1.3, "node02")
        universe.run_job_to_completion(job)

        errmgr = universe.hnp.errmgr
        assert len(errmgr.recoveries) == 2
        first, second = errmgr.recovery_log
        assert first.recovered and second.recovered
        # the chain is job -> first recovery -> second recovery
        assert errmgr.recoveries[0][0] == job.jobid
        assert errmgr.recoveries[1][0] == errmgr.recoveries[0][1]
        # the second episode fell back to the seeded baseline: the
        # re-failed incarnation had not committed an interval of its own
        assert second.snapshot == first.snapshot
        final = _final_job(universe)
        assert final.state.value == "finished"
        # scheduler kept the final incarnation checkpointing
        sched = universe.hnp.ckpt_scheduler
        assert any(jobid == final.jobid for jobid, _ in sched.taken)

    def test_recovery_budget_exhausted(self):
        """The lineage-wide attempt budget stops recovery storms."""
        universe = make_universe(
            4, params=dict(RECOVER, orte_errmgr_max_recoveries="1",
                           snapc_full_checkpoint_every="0.25")
        )
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        universe.cluster.failures.crash_node_at(0.7, "node03")
        universe.cluster.failures.crash_node_at(1.3, "node02")
        universe.run_job_to_completion(job)

        errmgr = universe.hnp.errmgr
        assert len(errmgr.recoveries) == 1
        first, second = errmgr.recovery_log
        assert first.recovered
        assert not second.recovered
        assert "budget exhausted" in (second.error or "")
        # the second incarnation stays failed
        assert universe.job(errmgr.recoveries[0][1]).state.value == "failed"


class TestSnapshotWalkBack:
    def test_walks_back_past_uncommitted_interval(self):
        """If the newest interval's persisted metadata says STAGING,
        recovery walks back to the previous committed interval."""
        universe = make_universe(4, params=RECOVER)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.3, wait=False)

        stable = universe.cluster.stable_fs

        def poison_interval_2():
            ref2 = job.snapshots[-1]
            assert parse_global_dirname(ref2.path) == (job.jobid, 2)
            meta = yield from read_global_meta(stable, ref2)
            meta.staging = dict(
                meta.staging, state=STAGE_STAGING, committed_sim_time=None
            )
            yield from write_global_meta(stable, ref2, meta)

        # both intervals are committed by ~0.51; at 0.55 rewrite the
        # newest one's persisted state back to STAGING, then crash
        universe.kernel.call_at(
            0.55,
            lambda: universe.hnp.proc.spawn_thread(
                poison_interval_2(), name="poison", daemon=True
            ),
        )
        universe.cluster.failures.crash_node_at(0.62, "node03")
        universe.run_job_to_completion(job)

        errmgr = universe.hnp.errmgr
        [record] = errmgr.recovery_log
        assert record.recovered
        assert record.snapshot is not None
        assert parse_global_dirname(record.snapshot) == (job.jobid, 1)
        assert _final_job(universe).state.value == "finished"

    def test_no_usable_snapshot_settles_without_recovery(self):
        """Failure before any committed interval: no recovery, the
        outcome event fires None so followers do not hang."""
        universe = make_universe(4, params=RECOVER)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        universe.cluster.failures.crash_node_at(0.05, "node03")
        universe.run_job_to_completion(job)

        errmgr = universe.hnp.errmgr
        assert errmgr.recoveries == []
        assert job.state.value == "failed"
        outcome = errmgr.recovery_outcome(job.jobid)
        assert outcome.fired

        def read_outcome():
            successor = yield WaitEvent(outcome)
            return successor

        assert run_gen(universe.kernel, read_outcome()) is None


class TestRestartCLIErrors:
    def test_main_restart_maps_restart_error(self, monkeypatch, capsys):
        """ompi-restart surfaces an unusable snapshot as one line, a
        hint toward an earlier interval, and a non-zero exit."""
        from repro.tools import cli
        from repro.util.errors import RestartError

        def refuse(universe, ref, **kwargs):
            raise RestartError(
                f"snapshot {ref.path} never reached stable storage"
            )

        monkeypatch.setattr(cli, "ompi_restart", refuse)
        assert cli.main_restart(["--np", "2", "--nodes", "2", "--at", "0.05"]) == 1
        out = capsys.readouterr().out
        assert "ompi-restart: snapshot" in out
        assert "earlier committed interval" in out


class TestRecoveryReport:
    def test_render_recovery_report(self):
        from repro.obs.report import render_recovery_report

        recovered = {
            "failed_jobid": 1, "new_jobid": 2, "attempts": 2,
            "latency_s": 0.225, "work_lost_s": 0.466,
            "snapshot": "/snapshots/ompi_global_snapshot_1.1",
            "error": None,
        }
        gave_up = {
            "failed_jobid": 2, "new_jobid": None, "attempts": 0,
            "latency_s": None, "work_lost_s": None, "snapshot": None,
            "error": "recovery budget exhausted (1/1 attempts)",
        }
        text = render_recovery_report([recovered, gave_up])
        assert "ompi_global_snapshot_1.1" in text
        assert "budget exhausted" in text
        assert render_recovery_report([]).endswith("(no recovery episodes)")


class TestProcessScopedFailures:
    def test_process_kill_triggers_recovery(self):
        """A single-process injection routes through the same
        rank-failure policy as node death."""
        universe = make_universe(4, params=RECOVER)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)

        def kill_rank_2():
            proc = universe.lookup(ProcessName(job.jobid, 2))
            if proc is not None and proc.alive:
                universe.cluster.failures.kill_process_now(proc)

        universe.kernel.call_at(0.6, kill_rank_2)
        universe.run_job_to_completion(job)

        errmgr = universe.hnp.errmgr
        assert len(errmgr.recoveries) == 1
        [record] = errmgr.recovery_log
        assert record.recovered
        # the injected rank is recorded (survivors aborted by the
        # errmgr land there too as their exits are observed)
        assert 2 in job.failed_ranks
        assert _final_job(universe).state.value == "finished"
