"""Unit tests for SimProcess, Node, failure injection, and the bench
harness utilities."""

import pytest

from repro.bench.harness import Row, format_table
from repro.simenv.failure import FailureSchedule
from repro.simenv.kernel import Delay, WaitEvent
from repro.simenv.node import Node
from repro.simenv.process import SimProcess, run_process_main
from repro.util.errors import ProcessFailedError
from repro.util.ids import ProcessName
from tests.conftest import run_gen


def make_proc(cluster, node_index=0, label="p"):
    return SimProcess(cluster.nodes[node_index], ProcessName(1, 0), label=label)


class TestNode:
    def test_compute_seconds_scales_with_cpu(self, cluster):
        node = cluster.nodes[0]
        assert node.compute_seconds(4.0) == pytest.approx(4.0 / node.cpu_ghz)
        with pytest.raises(ValueError):
            node.compute_seconds(-1)

    def test_crash_kills_processes_and_disk(self, cluster):
        node = cluster.nodes[1]
        proc = SimProcess(node, ProcessName(1, 0), label="victim")
        node.crash()
        assert not node.up
        assert not proc.alive
        assert not node.local_fs.reachable

    def test_attach_to_down_node_rejected(self, cluster):
        node = cluster.nodes[1]
        node.crash()
        with pytest.raises(ProcessFailedError):
            SimProcess(node, ProcessName(1, 1), label="late")

    def test_crash_idempotent(self, cluster):
        node = cluster.nodes[0]
        node.crash()
        node.crash()  # no error


class TestSimProcess:
    def test_clean_exit_fires_event(self, cluster):
        proc = make_proc(cluster)

        def main():
            yield Delay(0.1)
            return 42

        run_process_main(proc, main)

        def waiter():
            value = yield WaitEvent(proc.exit_event)
            return value

        assert run_gen(cluster.kernel, waiter()) == 42
        assert not proc.alive
        assert proc not in cluster.nodes[0].processes

    def test_crash_fails_exit_event(self, cluster):
        proc = make_proc(cluster)

        def main():
            yield Delay(0.1)
            raise RuntimeError("bug")

        run_process_main(proc, main)

        def waiter():
            try:
                yield WaitEvent(proc.exit_event)
            except RuntimeError as exc:
                return f"failed: {exc}"

        assert run_gen(cluster.kernel, waiter()) == "failed: bug"

    def test_kill_terminates_all_threads(self, cluster):
        proc = make_proc(cluster)

        def forever():
            yield WaitEvent(cluster.kernel.event("never"))

        t1 = proc.spawn_thread(forever(), "a", daemon=True)
        t2 = proc.spawn_thread(forever(), "b", daemon=True)
        cluster.kernel.call_later(0.1, proc.kill)
        cluster.kernel.run()
        assert not t1.alive and not t2.alive
        assert not proc.alive

    def test_spawn_on_dead_process_rejected(self, cluster):
        proc = make_proc(cluster)
        proc.kill()
        with pytest.raises(ProcessFailedError):
            proc.spawn_thread(iter(()), "x")

    def test_service_registry(self, cluster):
        proc = make_proc(cluster)
        proc.register_service("svc", 123)
        assert proc.service("svc") == 123
        assert proc.maybe_service("missing") is None
        with pytest.raises(ValueError):
            proc.register_service("svc", 456)
        with pytest.raises(KeyError):
            proc.service("missing")

    def test_pids_unique(self, cluster):
        a = make_proc(cluster, 0, "a")
        b = SimProcess(cluster.nodes[0], ProcessName(1, 1), label="b")
        assert a.pid != b.pid


class TestFailureInjector:
    def test_scheduled_node_crash(self, cluster):
        cluster.failures.crash_node_at(0.5, "node02")
        cluster.run()
        assert not cluster.node("node02").up
        assert cluster.failures.injected == [(0.5, "node:node02")]

    def test_observer_callback(self, cluster):
        seen = []
        cluster.failures.on_failure(seen.append)
        cluster.failures.crash_node_now("node01")
        assert seen == ["node:node01"]

    def test_kill_process_at_skips_dead(self, cluster):
        proc = make_proc(cluster)
        cluster.failures.kill_process_at(0.5, proc)
        proc.exit("early")
        cluster.run()
        # Already exited cleanly; the injector recorded nothing.
        assert cluster.failures.injected == []

    def test_schedule_object(self, cluster):
        proc = make_proc(cluster)
        schedule = FailureSchedule().crash_node(0.2, "node03")
        schedule.kill_pid(0.3, proc.pid)
        cluster.failures.arm(schedule)
        cluster.run()
        assert not cluster.node("node03").up
        assert not proc.alive

    def test_random_crash_deterministic(self):
        from repro.simenv.cluster import Cluster, ClusterSpec

        times = []
        for _ in range(2):
            cluster = Cluster(ClusterSpec(n_nodes=4, seed=7))
            times.append(cluster.failures.arm_random_node_crash(10.0))
        assert times[0] == times[1]


class TestBenchHarness:
    def test_format_table_alignment(self):
        rows = [
            Row("alpha", {"x": 1.23456, "y": "ok"}),
            Row("beta-long-label", {"x": 42, "y": "nope"}),
        ]
        text = format_table("T", ["x", "y"], rows)
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "alpha" in lines[2] or "alpha" in lines[3]
        # All data lines equal width (aligned columns).
        widths = {len(line) for line in lines[3:]}
        assert len(widths) == 1

    def test_format_table_empty_rows(self):
        text = format_table("empty", ["a"], [])
        assert "empty" in text

    def test_timed_returns_result_and_duration(self):
        from repro.bench.harness import timed

        value, seconds = timed(lambda: "out")
        assert value == "out"
        assert seconds >= 0
