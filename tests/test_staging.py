"""Asynchronous staged aggregation + incremental checkpoints.

Covers the background staging coordinator (Figure 1-F made true):
checkpoint replies return at D/E while the gather/cleanup/commit run in
a per-job worker; backpressure bounds the pipeline; restart waits for
commit; a node death mid-stage fails the interval without touching the
application; and delta intervals restart through their base-chain,
with compaction bounding chain length.
"""

import pytest

from repro.obs.report import filter_spans
from repro.snapshot import (
    STAGE_COMMITTED,
    STAGE_FAILED,
    read_global_meta,
)
from repro.tools.api import (
    checkpoint_ref,
    ompi_checkpoint,
    ompi_restart,
    ompi_run,
)
from repro.util.errors import RestartError
from tests.conftest import make_universe, run_gen

CHURN = {"loops": 80, "compute_s": 0.01, "state_bytes": 4 << 20}


def churn_baseline(np: int = 4, args: dict | None = None) -> dict:
    universe = make_universe(4)
    job = ompi_run(universe, "churn", np, args=dict(args or CHURN))
    assert job.state.value == "finished"
    return job.results


@pytest.fixture(scope="module")
def baseline():
    return churn_baseline()


def read_meta(universe, ref):
    def gen():
        meta = yield from read_global_meta(universe.cluster.stable_fs, ref)
        return meta

    return run_gen(universe.kernel, gen())


def stage_spans(universe) -> list[dict]:
    spans = filter_spans(
        universe.kernel.tracer.to_dict(), name="snapc.stage"
    )
    spans.sort(key=lambda s: s["attrs"]["interval"])
    return spans


class TestAsyncStaging:
    def test_reply_before_commit_and_job_resumes(self, baseline):
        """The checkpoint reply returns at D/E; the gather and the
        metadata commit happen in the background stage span."""
        universe = make_universe(4, params={"obs_trace_enabled": "1"})
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"
        assert job.results == baseline
        assert handle.result()["ok"]
        (stage,) = stage_spans(universe)
        ckpt = filter_spans(
            universe.kernel.tracer.to_dict(), name="snapc.checkpoint"
        )[0]
        # The request span (ends when the app resumes) closes before the
        # background stage does.
        assert ckpt["t0"] + ckpt["dur"] < stage["t0"] + stage["dur"]
        assert stage["attrs"]["ok"] is True
        assert stage["attrs"]["bytes"] > 0
        ref = checkpoint_ref(handle)
        meta = read_meta(universe, ref)
        assert meta.staging["state"] == STAGE_COMMITTED
        assert meta.staging["committed_sim_time"] is not None
        assert job.snapshots == [ref]

    def test_pipeline_overlap_with_depth_two(self):
        """With the default stage depth, a second interval fans out
        while the first is still staging."""
        universe = make_universe(4, params={"obs_trace_enabled": "1"})
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        h1 = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        h2 = ompi_checkpoint(universe, job.jobid, at=0.16, wait=False)
        universe.run_job_to_completion(job)
        assert h1.result()["ok"] and h2.result()["ok"]
        assert h1.result()["interval"] == 1
        assert h2.result()["interval"] == 2
        stages = stage_spans(universe)
        ckpts = sorted(
            filter_spans(
                universe.kernel.tracer.to_dict(), name="snapc.checkpoint"
            ),
            key=lambda s: s["attrs"]["interval"],
        )
        # Interval 2's request phase ran while interval 1 still staged...
        assert ckpts[1]["t0"] < stages[0]["t0"] + stages[0]["dur"]
        # ...but commits stay FIFO: stage 1 closed before stage 2.
        assert stages[0]["t0"] + stages[0]["dur"] <= stages[1]["t0"] + stages[1]["dur"]
        assert [r.path for r in job.snapshots] == [
            h1.result()["snapshot"],
            h2.result()["snapshot"],
        ]

    def test_backpressure_depth_one_serializes_stages(self):
        """depth=1: the next request blocks (before the app is touched)
        until the previous interval settles, so stages never overlap."""
        universe = make_universe(
            4,
            params={"obs_trace_enabled": "1", "snapc_full_stage_depth": "1"},
        )
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        h1 = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        # 0.2: the app has resumed but interval 1 is still staging.
        h2 = ompi_checkpoint(universe, job.jobid, at=0.2, wait=False)
        universe.run_job_to_completion(job)
        assert h1.result()["ok"] and h2.result()["ok"]
        stages = stage_spans(universe)
        ckpts = sorted(
            filter_spans(
                universe.kernel.tracer.to_dict(), name="snapc.checkpoint"
            ),
            key=lambda s: s["attrs"]["interval"],
        )
        # Interval 2's request phase only started once interval 1 had
        # fully settled (its slot freed at stage close).
        assert ckpts[1]["t0"] >= stages[0]["t0"] + stages[0]["dur"]
        assert stages[1]["t0"] >= stages[0]["t0"] + stages[0]["dur"]

    def test_wait_stable_restores_synchronous_reply(self):
        universe = make_universe(4, params={"obs_trace_enabled": "1"})
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        handle = ompi_checkpoint(
            universe, job.jobid, at=0.1, wait=False, wait_stable=True
        )
        reply_time = {}

        def watch():
            from repro.simenv.kernel import Delay, WaitEvent

            while handle.done is None:
                yield Delay(1e-4)
            yield WaitEvent(handle.done)
            reply_time["t"] = universe.kernel.now
            return None

        universe.kernel.spawn(watch(), name="watch", daemon=True)
        universe.run_job_to_completion(job)
        assert handle.result()["ok"]
        (stage,) = stage_spans(universe)
        # The reply only left after the background commit finished.
        assert reply_time["t"] >= stage["t0"] + stage["dur"]

    def test_terminate_halts_at_de_and_commits_in_background(self, baseline):
        universe = make_universe(4, params={"obs_trace_enabled": "1"})
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        handle = ompi_checkpoint(
            universe, job.jobid, at=0.1, terminate=True, wait=False
        )
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        assert handle.result()["ok"]
        ref = checkpoint_ref(handle)
        meta = read_meta(universe, ref)
        assert meta.staging["state"] == STAGE_COMMITTED
        assert job.snapshots == [ref]
        new_job = ompi_restart(universe, ref)
        assert new_job.state.value == "finished"
        assert new_job.results == baseline


class TestStageFailure:
    def test_node_death_mid_stage_fails_interval_only(self):
        """A source node dying mid-gather exhausts the retries and marks
        the interval FAILED; restart from it is refused."""
        universe = make_universe(4, params={"obs_trace_enabled": "1"})
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        # After the reply (~0.135) but before the gather finishes (~0.3).
        universe.cluster.failures.crash_node_at(0.17, "node03")
        universe.run_job_to_completion(job)
        # The reply had already returned OK; the app was never aborted —
        # it died because its own rank's node crashed, not because of
        # the staging machinery.
        assert handle.result()["ok"]
        ref = checkpoint_ref(handle)
        (stage,) = stage_spans(universe)
        assert stage["attrs"]["ok"] is False
        meta = read_meta(universe, ref)
        assert meta.staging["state"] == STAGE_FAILED
        assert meta.staging["error"]
        # Never committed: not in the job's usable snapshot list.
        assert job.snapshots == []
        with pytest.raises(RestartError):
            ompi_restart(universe, ref)

    def test_autorecover_uses_last_committed_interval(self):
        """With an earlier committed interval, recovery after a
        mid-stage node death restarts from the committed one."""
        args = dict(CHURN, loops=100)
        expected = churn_baseline(4, args)
        universe = make_universe(
            4,
            params={
                "obs_trace_enabled": "1",
                "orte_errmgr_autorecover": "1",
            },
        )
        job = ompi_run(universe, "churn", 4, args=args, wait=False)
        h1 = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        h2 = ompi_checkpoint(universe, job.jobid, at=0.5, wait=False)
        universe.cluster.failures.crash_node_at(0.57, "node03")
        universe.run_job_to_completion(job)
        assert job.state.value == "failed"
        assert h1.result()["ok"] and h2.result()["ok"]
        stages = stage_spans(universe)
        assert stages[0]["attrs"]["ok"] is True
        assert stages[1]["attrs"]["ok"] is False
        # Only the committed interval is recoverable, and it was used.
        assert job.snapshots == [checkpoint_ref(h1)]
        assert universe.hnp.errmgr.recoveries
        recovered = universe.job(universe.hnp.errmgr.recoveries[0][1])
        universe.run_job_to_completion(recovered)
        assert recovered.state.value == "finished"
        assert recovered.results == expected

    def test_restart_of_failed_metadata_refused(self):
        """Even without a live staging record (coordinator restarted),
        FAILED metadata on stable storage refuses the restart."""
        universe = make_universe(4, params={"obs_trace_enabled": "1"})
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        universe.cluster.failures.crash_node_at(0.17, "node03")
        universe.run_job_to_completion(job)
        ref = checkpoint_ref(handle)
        # Forget the in-memory record; the metadata alone must decide.
        universe.hnp.snapc._stager._jobs.clear()
        with pytest.raises(RestartError, match="stable storage"):
            ompi_restart(universe, ref)


class TestIncrementalChain:
    ARGS = dict(CHURN, loops=100)
    PARAMS = {
        "obs_trace_enabled": "1",
        "snapc_full_interval_every": "99",
        "snapc_full_max_chain": "3",
    }

    def take_four(self):
        universe = make_universe(4, params=dict(self.PARAMS))
        job = ompi_run(universe, "churn", 4, args=self.ARGS, wait=False)
        handles = [
            ompi_checkpoint(universe, job.jobid, at=at, wait=False)
            for at in (0.1, 0.3, 0.5, 0.7)
        ]
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"
        for handle in handles:
            assert handle.result()["ok"], handle.result()["error"]
        return universe, job, handles

    def test_chain_kinds_and_compaction(self):
        universe, job, handles = self.take_four()
        metas = [
            read_meta(universe, checkpoint_ref(h)) for h in handles
        ]
        # 1 full, 2-3 deltas; 4 would push the chain past max_chain=3,
        # so it was compacted back to a full image during its commit.
        assert [m.kind for m in metas] == ["full", "delta", "delta", "full"]
        assert metas[1].base_interval == 1
        assert metas[2].base_interval == 2
        assert len(metas[1].base_chain) == 1
        assert len(metas[2].base_chain) == 2
        assert metas[3].base_chain == []
        assert metas[3].base_interval is None
        # Compacted interval carries a standalone image per rank.
        stable = universe.cluster.stable_fs
        ref4 = checkpoint_ref(handles[3])
        for rank in range(4):
            assert stable.exists(f"{ref4.local_dir(rank)}/image.pkl")
        # Deltas move a small fraction of the full interval's bytes.
        stages = stage_spans(universe)
        full_bytes = stages[0]["attrs"]["bytes"]
        for delta in stages[1:3]:
            assert delta["attrs"]["bytes"] < 0.5 * full_bytes

    def test_restart_through_base_plus_two_deltas(self):
        expected = churn_baseline(4, self.ARGS)
        universe, job, handles = self.take_four()
        # Interval 3 = full base + 2 delta overlays.
        new_job = ompi_restart(universe, checkpoint_ref(handles[2]))
        assert new_job.state.value == "finished"
        assert new_job.results == expected

    def test_restart_of_compacted_interval(self):
        expected = churn_baseline(4, self.ARGS)
        universe, job, handles = self.take_four()
        new_job = ompi_restart(universe, checkpoint_ref(handles[3]))
        assert new_job.state.value == "finished"
        assert new_job.results == expected

    def test_shared_filem_incremental_restart(self):
        """Direct-to-stable snapshots restart through their chain too."""
        expected = churn_baseline(4, self.ARGS)
        params = dict(self.PARAMS, filem="shared")
        universe = make_universe(4, params=params)
        job = ompi_run(universe, "churn", 4, args=self.ARGS, wait=False)
        handles = [
            ompi_checkpoint(universe, job.jobid, at=at, wait=False)
            for at in (0.1, 0.4)
        ]
        universe.run_job_to_completion(job)
        for handle in handles:
            assert handle.result()["ok"], handle.result()["error"]
        meta = read_meta(universe, checkpoint_ref(handles[1]))
        assert meta.kind == "delta"
        new_job = ompi_restart(universe, checkpoint_ref(handles[1]))
        assert new_job.state.value == "finished"
        assert new_job.results == expected


class TestStagingAdmission:
    """Universe-level admission control over staging transfers.

    Unit tests drive the gate directly on a bare kernel; the
    integration test shows two jobs' transfers serializing under a
    one-token universe.
    """

    @staticmethod
    def _gate(kernel, tokens=1, bytes_per_s=0.0):
        from repro.orte.snapc.admission import StagingAdmission

        return StagingAdmission(kernel, tokens=tokens, bytes_per_s=bytes_per_s)

    @staticmethod
    def _holder(kernel, gate, jobid, hold_s, grants):
        """A thread that acquires, holds for hold_s, then releases."""
        from repro.simenv.kernel import Delay

        def gen():
            yield from gate.acquire(jobid)
            grants.append((kernel.now, jobid))
            yield Delay(hold_s)
            gate.release(jobid)
            return None

        return kernel.spawn(gen(), name=f"holder-job{jobid}")

    def test_unlimited_gate_never_blocks_or_posts_events(self, kernel):
        gate = self._gate(kernel, tokens=0)
        grants = []
        for jobid in (1, 2, 3):
            self._holder(kernel, gate, jobid, 0.5, grants)
        kernel.run()
        # All granted at t=0: no queueing, no token bookkeeping.
        assert [t for t, _ in grants] == [0.0, 0.0, 0.0]
        assert gate.queued == 0 and gate.admitted == 0

    def test_token_exhaustion_queues_staging(self, kernel):
        gate = self._gate(kernel, tokens=1)
        grants = []
        self._holder(kernel, gate, 1, 0.5, grants)
        self._holder(kernel, gate, 2, 0.5, grants)
        kernel.run()
        # Job 2's transfer was admitted only when job 1 released.
        assert grants == [(0.0, 1), (0.5, 2)]
        assert gate.queued == 1 and gate.admitted == 2
        assert gate.waiting == 0 and gate.held_by(1) == 0

    def test_release_wakes_waiters_fifo(self, kernel):
        from repro.simenv.kernel import Delay

        gate = self._gate(kernel, tokens=1)
        grants = []

        def staggered():
            # Queue jobs 2, 3, 4 in that order behind job 1's token.
            self._holder(kernel, gate, 1, 1.0, grants)
            yield Delay(0.01)
            self._holder(kernel, gate, 2, 1.0, grants)
            yield Delay(0.01)
            self._holder(kernel, gate, 3, 1.0, grants)
            yield Delay(0.01)
            self._holder(kernel, gate, 4, 1.0, grants)
            return None

        kernel.spawn(staggered(), name="staggered")
        kernel.run()
        # Strict FIFO: each release hands the token to the oldest waiter.
        assert [jobid for _, jobid in grants] == [1, 2, 3, 4]
        assert [t for t, _ in grants] == [0.0, 1.0, 2.0, 3.0]

    def test_job_death_releases_held_tokens(self, kernel):
        from repro.simenv.kernel import Delay

        gate = self._gate(kernel, tokens=2)
        grants = []

        def dead_job():
            # Job 1 takes both tokens and never releases (it "dies").
            yield from gate.acquire(1)
            yield from gate.acquire(1)
            return None

        def victim():
            yield from gate.acquire(2)
            grants.append(kernel.now)
            gate.release(2)
            return None

        def reaper():
            yield Delay(0.3)
            assert gate.held_by(1) == 2
            freed = gate.release_job(1)
            assert freed == 2
            return None

        kernel.spawn(dead_job(), name="dead-job")
        kernel.spawn(victim(), name="victim")
        kernel.spawn(reaper(), name="reaper")
        kernel.run()
        # The victim was unblocked by the force-release...
        assert grants == [0.3]
        assert gate.held_by(1) == 0
        # ...and the dead job's own late release is a no-op that cannot
        # inflate the pool past its capacity.
        gate.release(1)
        assert gate._available <= gate.tokens

    def test_byte_budget_serializes_concurrent_transfers(self, kernel):
        gate = self._gate(kernel, tokens=0, bytes_per_s=1e6)
        finished = []

        def mover(jobid):
            yield from gate.throttle(int(1e6))
            finished.append((kernel.now, jobid))
            return None

        kernel.spawn(mover(1), name="mover-1")
        kernel.spawn(mover(2), name="mover-2")
        kernel.run()
        # 1 MB each through a 1 MB/s shared pipe: second pays for the
        # first's bytes and lands at t=2.
        assert [t for t, _ in finished] == [1.0, 2.0]
        assert gate.throttled_s == 3.0

    def test_two_jobs_serialize_under_one_token(self):
        """Integration: tokens=1 forces the universe's two staging
        pipelines to take turns on the transfer phase."""
        universe = make_universe(
            4,
            params={
                "obs_trace_enabled": "1",
                "snapc_stage_admission_tokens": "1",
            },
        )
        job_a = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        job_b = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        h_a = ompi_checkpoint(universe, job_a.jobid, at=0.1, wait=False)
        h_b = ompi_checkpoint(universe, job_b.jobid, at=0.1, wait=False)
        universe.run_job_to_completion(job_a)
        universe.run_job_to_completion(job_b)
        assert h_a.result()["ok"] and h_b.result()["ok"]
        admission = universe.hnp.snapc.stager(universe.hnp).admission
        # One transfer queued behind the other's token and both settled.
        assert admission.queued >= 1
        assert admission.waiting == 0
        assert admission._held == {}
        # The gathers themselves never overlapped.
        gathers = filter_spans(
            universe.kernel.tracer.to_dict(), name="filem.stage_out"
        )
        assert len(gathers) >= 2
        gathers.sort(key=lambda s: s["t0"])
        for earlier, later in zip(gathers, gathers[1:]):
            assert earlier["t0"] + earlier["dur"] <= later["t0"] + 1e-12
        # The queued transfer's wait is visible as an admission span.
        waits = filter_spans(
            universe.kernel.tracer.to_dict(), name="snapc.admission"
        )
        assert waits and all(w["attrs"]["waited_s"] >= 0 for w in waits)
