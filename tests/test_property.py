"""Property-based tests (hypothesis) of the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mca.params import MCAParams
from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.pml.matching import MatchingEngine, MPIMsg, PostedRecv
from repro.util.seq import SeqWindow
from repro.vfs import path as vpath

# ---------------------------------------------------------------------------
# SeqWindow: delivery of any permutation of 0..n-1 ends fully contiguous
# ---------------------------------------------------------------------------


@given(st.permutations(list(range(30))))
def test_seq_window_any_permutation_converges(order):
    window = SeqWindow()
    for seq in order:
        window.deliver(seq)
    assert window.contiguous == 30
    assert window.total_delivered == 30
    assert window.missing_below(30) == []


@given(st.permutations(list(range(20))), st.integers(0, 19))
def test_seq_window_snapshot_restore_midway(order, cut):
    window = SeqWindow()
    for seq in order[:cut]:
        window.deliver(seq)
    restored = SeqWindow.restore(window.snapshot())
    for seq in order[cut:]:
        restored.deliver(seq)
    assert restored.contiguous == 20


# ---------------------------------------------------------------------------
# Matching engine vs a reference model
# ---------------------------------------------------------------------------


@st.composite
def arrivals(draw):
    n = draw(st.integers(1, 12))
    msgs = []
    for seq in range(n):
        msgs.append(
            MPIMsg(
                "eager",
                cid=0,
                src=draw(st.integers(0, 2)),
                dst=9,
                tag=draw(st.integers(0, 3)),
                seq=seq,
                nbytes=4,
                payload=seq,
            )
        )
    return msgs


@st.composite
def posts(draw):
    n = draw(st.integers(1, 12))
    out = []
    for i in range(n):
        out.append(
            PostedRecv(
                req_id=i + 1,
                cid=0,
                src=draw(st.sampled_from([ANY_SOURCE, 0, 1, 2])),
                tag=draw(st.sampled_from([ANY_TAG, 0, 1, 2, 3])),
            )
        )
    return out


@given(arrivals(), posts())
@settings(max_examples=200)
def test_matching_engine_agrees_with_oracle_arrive_first(msgs, recvs):
    """All messages arrive, then receives post: the engine must hand
    each post the earliest matching buffered message (MPI ordering)."""
    engine = MatchingEngine()
    # Per-sender seq must be increasing; reindex seq per src.
    per_src = {}
    for msg in msgs:
        msg.seq = per_src.get(msg.src, 0)
        per_src[msg.src] = msg.seq + 1
    for msg in msgs:
        assert engine.arrive(msg) is None
    got = []
    for recv in recvs:
        hit = engine.post(recv)
        got.append((hit.src, hit.seq) if hit is not None else None)
    expected = []
    remaining = list(msgs)
    for recv in recvs:
        hit = None
        for msg in remaining:
            if recv.matches(msg):
                hit = msg
                break
        if hit is not None:
            remaining.remove(hit)
            expected.append((hit.src, hit.seq))
        else:
            expected.append(None)
    assert got == expected


@given(arrivals())
@settings(max_examples=100)
def test_matching_capture_restore_transparent(msgs):
    """Capture+restore of the engine must not change future matching."""
    per_src = {}
    for msg in msgs:
        msg.seq = per_src.get(msg.src, 0)
        per_src[msg.src] = msg.seq + 1
    a, b = MatchingEngine(), MatchingEngine()
    for msg in msgs:
        a.arrive(msg)
        b.arrive(MPIMsg.from_state(msg.to_state()))
    b.restore(b.capture())
    for req_id in range(1, len(msgs) + 1):
        recv = PostedRecv(req_id, 0, ANY_SOURCE, ANY_TAG)
        ha = a.post(recv)
        hb = b.post(PostedRecv(req_id, 0, ANY_SOURCE, ANY_TAG))
        assert (ha is None) == (hb is None)
        if ha is not None:
            assert (ha.src, ha.seq) == (hb.src, hb.seq)


# ---------------------------------------------------------------------------
# MCAParams round trips
# ---------------------------------------------------------------------------

_keys = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="_"),
    min_size=1,
    max_size=20,
)


@given(st.dictionaries(_keys, st.integers(-10_000, 10_000), max_size=8))
def test_params_int_roundtrip(data):
    params = MCAParams(data)
    clone = MCAParams.from_dict(params.to_dict())
    for key, value in data.items():
        assert clone.get_int(key) == value


@given(st.dictionaries(_keys, st.booleans(), max_size=8))
def test_params_bool_roundtrip(data):
    params = MCAParams(data)
    for key, value in data.items():
        assert params.get_bool(key) is value


# ---------------------------------------------------------------------------
# VFS paths
# ---------------------------------------------------------------------------

_segments = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="-_"),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=6,
)


@given(_segments)
def test_path_normalize_idempotent(segments):
    path = "/" + "/".join(segments)
    once = vpath.normalize(path)
    assert vpath.normalize(once) == once


@given(_segments)
def test_path_join_split_roundtrip(segments):
    path = vpath.join("/", *segments)
    head, tail = vpath.split(path)
    assert vpath.join(head, tail) == path
    assert tail == segments[-1]


@given(_segments, _segments)
def test_path_is_under_prefix(prefix_segments, suffix_segments):
    prefix = vpath.join("/", *prefix_segments)
    full = vpath.join(prefix, *suffix_segments)
    assert vpath.is_under(full, prefix)
    assert vpath.is_under(full, "/")
