"""Unit tests for OMPI data objects: requests, groups, communicators,
datatypes, status."""

import numpy as np
import pytest

from repro.ompi.communicator import Communicator
from repro.ompi.datatype import copy_payload, nbytes_of
from repro.ompi.group import Group
from repro.ompi.request import RequestTable
from repro.ompi.status import Status
from repro.simenv.kernel import Kernel
from repro.util.errors import MPIError
from tests.conftest import run_gen


class TestRequest:
    def test_complete_then_wait_returns_immediately(self, kernel):
        table = RequestTable(kernel)
        req = table.new("recv")
        req.complete_ok(("payload", None))

        def main():
            result = yield from req.wait()
            return result

        assert run_gen(kernel, main()) == ("payload", None)

    def test_wait_blocks_until_complete(self, kernel):
        table = RequestTable(kernel)
        req = table.new("recv")

        def main():
            result = yield from req.wait()
            return result

        thread = kernel.spawn(main(), "w")
        kernel.call_later(0.5, lambda: req.complete_ok(7))
        kernel.run()
        assert thread.result == 7
        assert kernel.now == pytest.approx(0.5)

    def test_double_complete_rejected(self, kernel):
        req = RequestTable(kernel).new("send")
        req.complete_ok(None)
        with pytest.raises(MPIError):
            req.complete_ok(None)

    def test_error_completion_raises_in_wait(self, kernel):
        table = RequestTable(kernel)
        req = table.new("send")
        req.complete_error("link down")

        def main():
            yield from req.wait()

        with pytest.raises(MPIError, match="link down"):
            run_gen(kernel, main())

    def test_test_semantics(self, kernel):
        req = RequestTable(kernel).new("recv")
        assert req.test() == (False, None)
        req.complete_ok("x")
        assert req.test() == (True, "x")


class TestRequestTable:
    def test_ids_monotonic(self, kernel):
        table = RequestTable(kernel)
        ids = [table.new("send").id for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_get_unknown_raises(self, kernel):
        with pytest.raises(MPIError):
            RequestTable(kernel).get(42)

    def test_free_then_get_raises(self, kernel):
        table = RequestTable(kernel)
        req = table.new("send")
        table.free(req.id)
        with pytest.raises(MPIError):
            table.get(req.id)

    def test_pending_filters(self, kernel):
        table = RequestTable(kernel)
        send = table.new("send")
        recv = table.new("recv")
        send.complete_ok(None)
        assert table.pending == [recv]
        assert table.pending_of_kind("send") == []
        assert table.pending_of_kind("recv") == [recv]

    def test_capture_restore_roundtrip(self, kernel):
        table = RequestTable(kernel)
        done = table.new("recv")
        done.complete_ok(("data", (0, 1, 4)))
        pending = table.new("recv")
        pending.recv_params = (0, 2, 3)
        state = table.capture()

        restored = RequestTable(Kernel())
        restored.restore(state)
        assert restored.get(done.id).complete
        assert restored.get(done.id).result == ("data", (0, 1, 4))
        assert not restored.get(pending.id).complete
        assert restored.get(pending.id).recv_params == (0, 2, 3)
        assert restored.new("send").id == 3  # id counter continues


class TestGroup:
    def test_translation(self):
        group = Group([4, 2, 7])
        assert group.size == 3
        assert group.world_rank(1) == 2
        assert group.group_rank(7) == 2
        assert group.group_rank(99) == -1
        assert group.contains(4) and not group.contains(5)

    def test_out_of_range(self):
        with pytest.raises(MPIError):
            Group([0, 1]).world_rank(5)

    def test_duplicates_rejected(self):
        with pytest.raises(MPIError):
            Group([1, 1])

    def test_set_operations(self):
        a, b = Group([0, 1, 2]), Group([2, 3])
        assert a.union(b).ranks == (0, 1, 2, 3)
        assert a.intersection(b).ranks == (2,)
        assert a.difference(b).ranks == (0, 1)

    def test_incl_excl(self):
        group = Group([5, 6, 7, 8])
        assert group.incl([0, 2]).ranks == (5, 7)
        assert group.excl([1]).ranks == (5, 7, 8)

    def test_equality_and_hash(self):
        assert Group([1, 2]) == Group([1, 2])
        assert Group([1, 2]) != Group([2, 1])
        assert hash(Group([3])) == hash(Group([3]))


class TestCommunicator:
    def test_rank_resolution(self):
        comm = Communicator(0, Group([0, 1, 2, 3]), 2)
        assert comm.rank == 2 and comm.size == 4
        assert comm.world_rank(3) == 3
        assert comm.peer_ranks() == [0, 1, 3]

    def test_subgroup_rank_remapping(self):
        comm = Communicator(5, Group([6, 4]), 4)
        assert comm.rank == 1
        assert comm.world_rank(0) == 6
        assert comm.comm_rank(6) == 0

    def test_nonmember_rejected(self):
        with pytest.raises(MPIError):
            Communicator(0, Group([0, 1]), 5)


class TestDatatype:
    def test_nbytes_bytes(self):
        assert nbytes_of(b"abc") == 3
        assert nbytes_of(None) == 0

    def test_nbytes_numpy(self):
        arr = np.zeros(100, dtype=np.float64)
        assert nbytes_of(arr) == 800

    def test_nbytes_scalars_fixed(self):
        assert nbytes_of(7) == 16
        assert nbytes_of(3.14) == 16
        assert nbytes_of(True) == 16

    def test_nbytes_generic_via_pickle(self):
        assert nbytes_of({"a": [1, 2, 3]}) > 0

    def test_copy_payload_independence(self):
        arr = np.arange(4)
        copy = copy_payload(arr)
        arr[0] = 99
        assert copy[0] == 0
        data = {"k": [1]}
        copy2 = copy_payload(data)
        data["k"].append(2)
        assert copy2 == {"k": [1]}

    def test_copy_payload_immutable_fast_path(self):
        s = "immutable"
        assert copy_payload(s) is s
        assert copy_payload(None) is None


class TestStatus:
    def test_tuple_roundtrip(self):
        status = Status(2, 7, 128)
        assert Status.from_tuple(status.to_tuple()) == status
