"""Adaptive (Young/Daly) checkpoint cadence and scheduler hygiene.

The estimator is pure bookkeeping, so its convergence/clamping/cold
start behaviour is unit-tested directly; the scheduler integration
tests pin the attach-set pruning, the prompt loop exit on job settle,
and the closed loop actually re-tuning the cadence from observed
failures and measured checkpoint costs.
"""

from __future__ import annotations

import math

import pytest

from repro.orte.scheduler import DalyEstimator
from repro.simenv import CampaignSpec, run_campaign
from repro.tools.api import ompi_run
from tests.conftest import make_universe

CHURN_SMALL = {"loops": 200, "compute_s": 0.01, "state_bytes": 4 << 20}
RECOVER = {"orte_errmgr_autorecover": "1"}
ADAPTIVE = dict(
    RECOVER,
    snapc_full_checkpoint_every="0.25",
    snapc_sched_adaptive="1",
    snapc_sched_min_every="0.05",
    snapc_sched_max_every="0.6",
)


class TestDalyEstimator:
    def test_cold_start_returns_clamped_fallback(self):
        est = DalyEstimator(fallback=0.25, min_every=0.05, max_every=1.0)
        assert est.interval(None) == 0.25
        # no cost sample yet: mtbf alone is not enough
        assert est.interval(0.5) == 0.25
        # a fallback outside the clamp band is clamped too
        low = DalyEstimator(fallback=0.01, min_every=0.05, max_every=1.0)
        assert low.interval(None) == 0.05

    def test_daly_formula(self):
        est = DalyEstimator(fallback=0.25, min_every=0.001, max_every=0.0)
        est.observe_cost(0.02)
        assert est.interval(1.0) == pytest.approx(math.sqrt(2 * 1.0 * 0.02))

    def test_clamping_both_ends(self):
        est = DalyEstimator(fallback=0.25, min_every=0.05, max_every=1.0)
        est.observe_cost(0.02)
        # tiny MTBF -> tiny optimum -> min clamp
        assert est.interval(0.001) == 0.05
        # huge MTBF -> huge optimum -> max clamp
        assert est.interval(1000.0) == 1.0
        # max_every=0 means uncapped
        uncapped = DalyEstimator(fallback=0.25, min_every=0.05, max_every=0.0)
        uncapped.observe_cost(0.02)
        assert uncapped.interval(1000.0) == pytest.approx(
            math.sqrt(2 * 1000.0 * 0.02)
        )

    def test_cost_window_is_bounded_and_averaged(self):
        est = DalyEstimator(fallback=0.25, min_every=0.001, max_every=0.0)
        for cost in [10.0, 10.0, 10.0] + [0.02] * DalyEstimator.WINDOW:
            est.observe_cost(cost)
        # the early outliers aged out of the window entirely
        assert est.cost_s == pytest.approx(0.02)

    def test_non_positive_costs_ignored(self):
        est = DalyEstimator(fallback=0.25, min_every=0.001, max_every=0.0)
        est.observe_cost(0.0)
        est.observe_cost(-1.0)
        assert est.cost_s is None
        assert est.interval(1.0) == 0.25

    def test_converges_under_steady_observations(self):
        est = DalyEstimator(fallback=0.25, min_every=0.001, max_every=0.0)
        intervals = []
        for _ in range(12):
            est.observe_cost(0.03)
            intervals.append(est.interval(0.8))
        assert intervals[-1] == pytest.approx(math.sqrt(2 * 0.8 * 0.03))
        # once the window is full of identical samples, it is stable
        assert intervals[-1] == intervals[-4]


class TestSchedulerHygiene:
    def test_attach_set_pruned_and_loop_exits_promptly(self):
        """The loop waits on the job's done event, so it exits (and
        prunes the attach set) the moment the job settles — not one
        full period later, which with a long cadence would leak the
        jobid until deep in the drain."""
        universe = make_universe(
            4, params={"snapc_full_checkpoint_every": "10.0"}
        )
        sched = universe.hnp.ckpt_scheduler
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"
        # pruned at settle time, with the sim clock still at the finish
        assert sched._attached == set()
        assert universe.kernel.now < 10.0
        assert sched.taken == []  # cadence longer than the job

    def test_fixed_cadence_records_decisions(self):
        universe = make_universe(
            4, params={"snapc_full_checkpoint_every": "0.25"}
        )
        sched = universe.hnp.ckpt_scheduler
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL)
        assert job.state.value == "finished"
        assert any(jobid == job.jobid for jobid, _ in sched.taken)
        assert sched.decisions
        assert all(not d["adaptive"] for d in sched.decisions)
        assert all(d["interval_s"] == 0.25 for d in sched.decisions)


class TestAdaptiveCadence:
    def test_closed_loop_retunes_after_failures(self):
        """After a failure the adaptive path has an MTBF estimate and a
        measured cost, and the chosen interval obeys the clamp band."""
        universe = make_universe(4, params=ADAPTIVE)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        universe.cluster.failures.crash_node_at(0.7, "node03")
        universe.run_job_to_completion(job)

        errmgr = universe.hnp.errmgr
        assert errmgr.recoveries and errmgr.recovery_log[0].recovered
        final = universe.job(errmgr.recoveries[-1][1])
        assert final.state.value == "finished"

        sched = universe.hnp.ckpt_scheduler
        assert sched.taken  # checkpoints happened on both incarnations
        adaptive = [d for d in sched.decisions if d["adaptive"]]
        assert adaptive == sched.decisions
        tuned = [d for d in adaptive if d["mtbf_s"] is not None]
        assert tuned, "no decision saw the failure history"
        for d in tuned:
            assert d["cost_s"] is None or d["cost_s"] > 0
            assert 0.05 <= d["interval_s"] <= 0.6
        # cost was actually measured from real global_checkpoint calls
        assert any(d["cost_s"] for d in adaptive)
        # the recovered incarnation kept checkpointing on the loop
        assert any(jobid == final.jobid for jobid, _ in sched.taken)

    def test_adaptive_campaign_completes(self):
        """Full closed loop under a Poisson crash campaign."""
        universe = make_universe(6, params=ADAPTIVE)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        report = run_campaign(
            universe, job, CampaignSpec(mtbf_s=0.5, max_failures=2,
                                        start_at=0.35)
        )
        assert report.completed, report.to_dict()
        assert report.committed_checkpoints >= 1
        sched = universe.hnp.ckpt_scheduler
        assert any(d["mtbf_s"] for d in sched.decisions)

    def test_interval_shrinks_when_failures_are_frequent(self):
        """More observed failures per unit time -> shorter cadence than
        the MTBF-free cold start would pick (the point of the loop)."""
        universe = make_universe(4, params=ADAPTIVE)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        universe.cluster.failures.crash_node_at(0.6, "node03")
        universe.cluster.failures.crash_node_at(1.2, "node02")
        universe.run_job_to_completion(job)

        sched = universe.hnp.ckpt_scheduler
        tuned = [d for d in sched.decisions
                 if d["mtbf_s"] is not None and d["cost_s"] is not None]
        assert tuned
        expected = [
            sched._estimators[
                universe.hnp.errmgr.lineage_root(job)
            ].clamp(math.sqrt(2 * d["mtbf_s"] * d["cost_s"]))
            for d in tuned
        ]
        for decision, want in zip(tuned, expected):
            assert decision["interval_s"] == pytest.approx(want)
