"""Campaign RNG regression and the widened fault vocabulary.

The seed-era bug: ``Cluster.rng(stream)`` built a fresh ``RngStream``
per call, so every campaign inter-arrival was the *same* first
exponential sample — a fixed-period clock wearing a Poisson costume.
These tests pin the fix (non-constant, reproducible inter-arrivals)
and drive each new fault kind through an actual recovery, not just a
detection: stable-storage write failures and slowdowns, data-plane
partitions mid-stage, and truncated snapshot metadata.
"""

from __future__ import annotations

from repro.simenv import CampaignSpec, FaultCampaign, FaultSpec, run_campaign
from repro.simenv.kernel import DeadlockError
from repro.snapshot import STAGE_COMMITTED, STAGE_FAILED, parse_global_dirname
from repro.tools.api import ompi_checkpoint, ompi_run
from tests.conftest import make_universe

#: ~2 sim-seconds of runtime, intervals commit ~0.21 s after request
CHURN_SMALL = {"loops": 200, "compute_s": 0.01, "state_bytes": 4 << 20}
#: ~0.2 sim-seconds: finishes before a late-starting campaign fires
CHURN_TINY = {"loops": 20, "compute_s": 0.01, "state_bytes": 1 << 20}

RECOVER = {"orte_errmgr_autorecover": "1"}
SCHEDULED = dict(RECOVER, snapc_full_checkpoint_every="0.25")


def _records(universe, jobid):
    stager = universe.hnp.snapc.stager(universe.hnp)
    return stager.job_records(jobid)


class TestCampaignRngRegression:
    def _fire_times(self, seed: int) -> list[float]:
        universe = make_universe(6, seed=seed)
        campaign = FaultCampaign(
            universe, CampaignSpec(mtbf_s=0.1, max_failures=3)
        )
        campaign.arm()
        try:
            universe.kernel.run()
        except DeadlockError:
            pass
        assert len(campaign.failures) == 3
        return [f["at"] for f in campaign.failures]

    def test_inter_arrivals_non_constant_and_reproducible(self):
        """Poisson inter-arrivals are i.i.d. draws (the re-seeding bug
        made them all equal), yet identical across same-seed runs."""
        times = self._fire_times(seed=20070326)
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert len(set(round(d, 12) for d in deltas)) == len(deltas), deltas
        # same seed -> same schedule; different seed -> different one
        assert self._fire_times(seed=20070326) == times
        assert self._fire_times(seed=1234567) != times

    def test_victim_draws_advance_too(self):
        """crash_random_up_node_now shares the persistent stream, so
        successive victims are not forced onto one node."""
        universe = make_universe(8)
        injector = universe.cluster.failures
        victims = {
            injector.crash_random_up_node_now(exclude=("node00",))
            for _ in range(4)
        }
        assert len(victims) == 4  # dead nodes are never re-drawn anyway
        # a re-seeding rng would have produced the same *first* index
        # every call; with 7 eligible nodes at the first draw, four
        # draws landing on four distinct indices pins advancing state
        assert None not in victims


class TestStableStorageFaults:
    def test_write_fail_window_fails_interval_then_recovers(self):
        """Stable-storage writes bounce for a window: the staged
        interval FAILs (not the worker), later intervals commit, and a
        node crash still recovers from a committed snapshot."""
        universe = make_universe(4, params=SCHEDULED)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        universe.kernel.call_at(
            0.30, lambda: universe.cluster.failures.fail_stable_writes_now(0.3)
        )
        universe.cluster.failures.crash_node_at(1.1, "node03")
        universe.run_job_to_completion(job)

        records = _records(universe, job.jobid)
        failed = [r for r in records if r.state == STAGE_FAILED]
        committed = [r for r in records if r.state == STAGE_COMMITTED]
        assert failed, [r.state for r in records]
        assert any("write failed" in (r.error or "") for r in failed)
        assert committed  # the pipeline healed after the window
        errmgr = universe.hnp.errmgr
        assert errmgr.recoveries, "crash did not recover"
        assert errmgr.recovery_log[0].recovered
        final = universe.job(errmgr.recoveries[-1][1])
        assert final.state.value == "finished"

    def test_slowdown_window_stretches_commit_then_recovers(self):
        """A throughput slowdown stretches stable-commit latency but
        nothing fails; recovery from the slow-committed interval works."""

        def commit_latency(with_fault: bool) -> tuple[float, object]:
            universe = make_universe(4, params=SCHEDULED)
            job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
            if with_fault:
                universe.kernel.call_at(
                    0.30,
                    lambda: universe.cluster.failures.slow_stable_now(0.4, 25.0),
                )
                universe.cluster.failures.crash_node_at(1.3, "node03")
            universe.run_job_to_completion(job)
            record = _records(universe, job.jobid)[0]
            assert record.state == STAGE_COMMITTED
            assert record.committed_at is not None
            return record.committed_at - record.enqueued_at, universe

        baseline, _ = commit_latency(with_fault=False)
        slowed, universe = commit_latency(with_fault=True)
        assert slowed > 2 * baseline, (slowed, baseline)
        errmgr = universe.hnp.errmgr
        assert errmgr.recoveries and errmgr.recovery_log[0].recovered
        final = universe.job(errmgr.recoveries[-1][1])
        assert final.state.value == "finished"


class TestNetworkPartition:
    def test_partition_mid_stage_fails_gather_then_recovers(self):
        """A node partitioned from the storage network mid-stage fails
        the gather with NetworkError; staging retries, the interval
        FAILs, and a later crash still recovers from a later commit."""
        universe = make_universe(4, params=SCHEDULED)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        # interval 1 is requested at 0.25 and gathers until ~0.46;
        # partition one source node for the whole stage window
        universe.kernel.call_at(
            0.27,
            lambda: universe.cluster.failures.partition_node_now("node03", 0.25),
        )
        universe.cluster.failures.crash_node_at(1.1, "node02")
        universe.run_job_to_completion(job)

        records = _records(universe, job.jobid)
        failed = [r for r in records if r.state == STAGE_FAILED]
        assert failed, [r.state for r in records]
        assert any("partitioned" in (r.error or "") for r in failed)
        errmgr = universe.hnp.errmgr
        assert errmgr.recoveries and errmgr.recovery_log[0].recovered
        final = universe.job(errmgr.recoveries[-1][1])
        assert final.state.value == "finished"
        # the partition healed: the final incarnation kept committing
        assert any(
            r.state == STAGE_COMMITTED
            for r in _records(universe, final.jobid)
        ) or final.jobid == job.jobid


class TestMetadataCorruption:
    def test_corrupt_newest_meta_walks_back(self):
        """Truncating the newest committed metadata via the injector
        makes recovery walk back to the previous interval — the same
        path the hand-edited-metadata test exercised, now injected."""
        universe = make_universe(4, params=RECOVER)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.3, wait=False)
        # both intervals are committed by ~0.51; corrupt the newest
        corrupted: list[str] = []

        def corrupt():
            victim = (
                universe.cluster.failures.corrupt_newest_snapshot_meta_now()
            )
            if victim:
                corrupted.append(victim)

        universe.kernel.call_at(0.55, corrupt)
        universe.cluster.failures.crash_node_at(0.62, "node03")
        universe.run_job_to_completion(job)

        assert corrupted, "no snapshot metadata found to corrupt"
        victim_dir = corrupted[0].rsplit("/", 1)[0]
        assert parse_global_dirname(victim_dir) == (job.jobid, 2)
        errmgr = universe.hnp.errmgr
        [record] = errmgr.recovery_log
        assert record.recovered
        assert record.snapshot is not None
        assert parse_global_dirname(record.snapshot) == (job.jobid, 1)
        final = universe.job(errmgr.recoveries[-1][1])
        assert final.state.value == "finished"

    def test_corrupt_before_any_snapshot_is_a_noop(self):
        universe = make_universe(2)
        assert (
            universe.cluster.failures.corrupt_newest_snapshot_meta_now()
            is None
        )


class TestMixedFaultCampaign:
    HOSTILE = (
        FaultSpec("node_crash", weight=2.0),
        FaultSpec("stable_write_fail", weight=1.0, duration_s=0.15),
        FaultSpec("stable_slow", weight=1.0, duration_s=0.2, factor=10.0),
        FaultSpec("net_partition", weight=1.0, duration_s=0.15),
        FaultSpec("meta_corrupt", weight=1.0),
    )

    def test_mixed_campaign_completes_and_reports_kinds(self):
        universe = make_universe(6, params=SCHEDULED)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        spec = CampaignSpec(
            mtbf_s=0.25, max_failures=5, start_at=0.3, faults=self.HOSTILE
        )
        report = run_campaign(universe, job, spec)
        assert report.completed, report.to_dict()
        assert report.failures
        assert sum(report.fault_counts.values()) == len(report.failures)
        for entry in report.failures:
            assert entry["kind"] in {f.kind for f in self.HOSTILE}
        assert report.committed_checkpoints >= 1

    def test_unknown_fault_kind_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FaultSpec("cosmic_ray")


class TestCommittedCheckpointScoping:
    def test_committed_count_is_lineage_scoped(self):
        """A bystander job's committed intervals must not inflate the
        campaign report (the multi-job E12 topology)."""
        universe = make_universe(6, params=SCHEDULED)
        bystander = ompi_run(universe, "churn", 1, args=CHURN_TINY, wait=False)
        ompi_checkpoint(universe, bystander.jobid, at=0.05, wait=False)
        job = ompi_run(universe, "churn", 4, args=CHURN_SMALL, wait=False)
        spec = CampaignSpec(mtbf_s=0.4, max_failures=1, start_at=0.6)
        report = run_campaign(universe, job, spec)
        assert report.completed, report.to_dict()

        errmgr = universe.hnp.errmgr
        lineage = errmgr.lineage_jobids(job)
        assert bystander.jobid not in lineage
        stager = universe.hnp.snapc.stager(universe.hnp)
        total_committed = sum(
            1
            for st in stager._jobs.values()
            for rec in st.records.values()
            if rec.state == STAGE_COMMITTED
        )
        lineage_committed = sum(
            1
            for jobid in lineage
            for rec in stager.job_records(jobid)
            if rec.state == STAGE_COMMITTED
        )
        # the bystander committed at least one interval of its own
        assert total_committed > lineage_committed
        assert report.committed_checkpoints == lineage_committed
