"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simenv.kernel import (
    Delay,
    Kernel,
    WaitAll,
    WaitAny,
    WaitEvent,
    first_of,
    join_all,
)
from repro.util.errors import DeadlockError, SimError
from tests.conftest import run_gen


class TestClockAndScheduling:
    def test_time_starts_at_zero(self, kernel):
        assert kernel.now == 0.0

    def test_call_later_ordering(self, kernel):
        seen = []
        kernel.call_later(0.2, lambda: seen.append("b"))
        kernel.call_later(0.1, lambda: seen.append("a"))
        kernel.run()
        assert seen == ["a", "b"]
        assert kernel.now == pytest.approx(0.2)

    def test_ties_broken_fifo(self, kernel):
        seen = []
        for i in range(5):
            kernel.call_at(1.0, lambda i=i: seen.append(i))
        kernel.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_cannot_schedule_in_past(self, kernel):
        kernel.call_later(1.0, lambda: None)
        kernel.run()
        with pytest.raises(SimError):
            kernel.call_at(0.5, lambda: None)

    def test_run_until_pauses(self, kernel):
        seen = []
        kernel.call_at(1.0, lambda: seen.append(1))
        kernel.call_at(3.0, lambda: seen.append(3))
        kernel.run(until=2.0)
        assert seen == [1]
        assert kernel.now == 2.0
        kernel.run()
        assert seen == [1, 3]


class TestThreads:
    def test_delay_advances_clock(self, kernel):
        def main():
            yield Delay(0.5)
            return "done"

        assert run_gen(kernel, main()) == "done"
        assert kernel.now == pytest.approx(0.5)

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(ValueError):
            Delay(-1)

    def test_event_fire_value(self, kernel):
        event = kernel.event("e")

        def waiter():
            value = yield WaitEvent(event)
            return value

        thread = kernel.spawn(waiter(), "w")
        kernel.call_later(0.1, lambda: event.fire(42))
        kernel.run()
        assert thread.result == 42

    def test_event_fail_raises_in_waiter(self, kernel):
        event = kernel.event("e")

        def waiter():
            try:
                yield WaitEvent(event)
            except RuntimeError as exc:
                return f"caught {exc}"

        thread = kernel.spawn(waiter(), "w")
        kernel.call_later(0.1, lambda: event.fail(RuntimeError("boom")))
        kernel.run()
        assert thread.result == "caught boom"

    def test_wait_on_already_fired_event(self, kernel):
        event = kernel.event("e")
        event.fire("early")

        def waiter():
            value = yield WaitEvent(event)
            return value

        assert run_gen(kernel, waiter()) == "early"

    def test_event_fires_once(self, kernel):
        event = kernel.event("e")
        event.fire(1)
        with pytest.raises(SimError):
            event.fire(2)
        with pytest.raises(SimError):
            event.fail(RuntimeError())

    def test_non_syscall_yield_is_error(self, kernel):
        def bad():
            yield "not a syscall"

        thread = kernel.spawn(bad(), "bad")
        kernel.run()
        assert not thread.alive
        assert thread.done.fired

    def test_thread_exception_fails_done(self, kernel):
        def bad():
            yield Delay(0.1)
            raise ValueError("oops")

        thread = kernel.spawn(bad(), "bad")
        kernel.run()
        with pytest.raises(ValueError):
            run_gen(kernel, _reraise(thread))


def _reraise(thread):
    value = yield WaitEvent(thread.done)
    return value


class TestKill:
    def test_kill_blocked_thread(self, kernel):
        event = kernel.event("never")

        def waiter():
            yield WaitEvent(event)

        thread = kernel.spawn(waiter(), "w")
        kernel.call_later(0.1, thread.kill)
        kernel.run()
        assert not thread.alive
        assert thread.done.fired

    def test_kill_is_idempotent(self, kernel):
        def sleeper():
            yield Delay(10)

        thread = kernel.spawn(sleeper(), "s")
        kernel.call_later(0.1, thread.kill)
        kernel.call_later(0.2, thread.kill)
        kernel.run()
        assert not thread.alive

    def test_self_kill_allows_clean_return(self, kernel):
        """A thread may mark itself dead (process exit) and still return."""

        def main():
            yield Delay(0.1)
            thread.kill()
            return "clean"

        thread = kernel.spawn(main(), "m")
        kernel.run()
        assert thread.result == "clean"
        assert thread.done.fired


class TestDeadlockDetection:
    def test_blocked_nondaemon_is_deadlock(self, kernel):
        event = kernel.event("never")

        def waiter():
            yield WaitEvent(event)

        kernel.spawn(waiter(), "stuck")
        with pytest.raises(DeadlockError) as info:
            kernel.run()
        assert "stuck" in info.value.blocked

    def test_blocked_daemon_is_not_deadlock(self, kernel):
        event = kernel.event("never")

        def waiter():
            yield WaitEvent(event)

        kernel.spawn(waiter(), "service", daemon=True)
        kernel.run()  # must not raise


class TestQueue:
    def test_fifo(self, kernel):
        queue = kernel.queue("q")
        queue.put(1)
        queue.put(2)

        def getter():
            a = yield from queue.get()
            b = yield from queue.get()
            return (a, b)

        assert run_gen(kernel, getter()) == (1, 2)

    def test_blocking_get(self, kernel):
        queue = kernel.queue("q")

        def getter():
            value = yield from queue.get()
            return value

        thread = kernel.spawn(getter(), "g")
        kernel.call_later(0.3, lambda: queue.put("late"))
        kernel.run()
        assert thread.result == "late"
        assert kernel.now == pytest.approx(0.3)

    def test_try_get(self, kernel):
        queue = kernel.queue("q")
        assert queue.try_get() == (False, None)
        queue.put(9)
        assert queue.try_get() == (True, 9)
        assert len(queue) == 0

    def test_killed_getter_does_not_swallow_items(self, kernel):
        """Regression: a stale getter left by a killed thread must not
        consume a later put (this lost MPI frames at BTL pump pause)."""
        queue = kernel.queue("q")

        def getter():
            value = yield from queue.get()
            return value

        doomed = kernel.spawn(getter(), "doomed")
        kernel.call_later(0.1, doomed.kill)
        kernel.call_later(0.2, lambda: queue.put("precious"))
        survivor = kernel.spawn(getter(), "survivor")
        kernel.call_later(0.15, lambda: None)  # keep ordering explicit
        kernel.run()
        assert survivor.result == "precious"

    def test_kill_racing_fired_getter_requeues_item(self, kernel):
        """If the item was already routed to a getter whose thread is
        killed before it runs, the item goes back to the queue front."""
        queue = kernel.queue("q")

        def getter():
            value = yield from queue.get()
            return value

        doomed = kernel.spawn(getter(), "doomed")

        def put_and_kill():
            queue.put("survivor-item")  # fires doomed's getter event
            doomed.kill()  # killed before its resume step runs

        kernel.call_later(0.1, put_and_kill)
        kernel.run()
        assert len(queue) == 1
        late = kernel.spawn(getter(), "late")
        kernel.run()
        assert late.result == "survivor-item"

    def test_multiple_getters_fifo(self, kernel):
        queue = kernel.queue("q")
        results = []

        def getter(tag):
            value = yield from queue.get()
            results.append((tag, value))

        kernel.spawn(getter("first"), "g1")
        kernel.spawn(getter("second"), "g2")
        kernel.call_later(0.1, lambda: queue.put("a"))
        kernel.call_later(0.2, lambda: queue.put("b"))
        kernel.run()
        assert results == [("first", "a"), ("second", "b")]


class TestCombinators:
    def test_join_all_collects_results(self, kernel):
        events = [kernel.event(f"e{i}") for i in range(3)]
        joined = join_all(events, kernel)
        for i, event in enumerate(events):
            kernel.call_later(0.1 * (i + 1), lambda e=event, i=i: e.fire(i * 10))

        def waiter():
            values = yield WaitEvent(joined)
            return values

        assert run_gen(kernel, waiter()) == [0, 10, 20]

    def test_join_all_empty_fires_immediately(self, kernel):
        joined = join_all([], kernel)
        assert joined.fired

    def test_join_all_propagates_failure(self, kernel):
        events = [kernel.event("a"), kernel.event("b")]
        joined = join_all(events, kernel)
        kernel.call_later(0.1, lambda: events[0].fail(RuntimeError("x")))
        kernel.call_later(0.2, lambda: events[1].fire(1))

        def waiter():
            try:
                yield WaitEvent(joined)
            except RuntimeError:
                return "failed"

        assert run_gen(kernel, waiter()) == "failed"

    def test_first_of_reports_winner(self, kernel):
        events = [kernel.event("slow"), kernel.event("fast")]
        race = first_of(kernel, events)
        kernel.call_later(0.2, lambda: events[0].fire("s"))
        kernel.call_later(0.1, lambda: events[1].fire("f"))

        def waiter():
            outcome = yield WaitEvent(race)
            return outcome

        index, value, exc = run_gen(kernel, waiter())
        assert (index, value, exc) == (1, "f", None)

    def test_first_of_captures_failure(self, kernel):
        events = [kernel.event("a")]
        race = first_of(kernel, events)
        kernel.call_later(0.1, lambda: events[0].fail(ValueError("v")))

        def waiter():
            outcome = yield WaitEvent(race)
            return outcome

        index, value, exc = run_gen(kernel, waiter())
        assert index == 0 and value is None and isinstance(exc, ValueError)


class TestDeterminism:
    def test_identical_runs_schedule_identically(self):
        def build_and_run():
            kernel = Kernel()
            trace = []
            kernel.trace = lambda t, name, ev: trace.append((round(t, 9), name, ev))

            def worker(tag, delay):
                yield Delay(delay)
                return tag

            for i in range(10):
                kernel.spawn(worker(i, 0.01 * (i % 3 + 1)), f"w{i}")
            kernel.run()
            return trace

        assert build_and_run() == build_and_run()


class TestWaitSyscalls:
    """Native WaitAny/WaitAll: thread-less multi-event blocking."""

    def test_waitany_reports_winner(self, kernel):
        events = [kernel.event("slow"), kernel.event("fast")]
        kernel.call_later(0.2, lambda: events[0].fire("s"))
        kernel.call_later(0.1, lambda: events[1].fire("f"))

        def waiter():
            outcome = yield WaitAny(events)
            return outcome

        assert run_gen(kernel, waiter()) == (1, "f", None)

    def test_waitany_captures_failure(self, kernel):
        events = [kernel.event("a"), kernel.event("b")]
        kernel.call_later(0.1, lambda: events[0].fail(ValueError("v")))

        def waiter():
            outcome = yield WaitAny(events)
            return outcome

        index, value, exc = run_gen(kernel, waiter())
        assert index == 0 and value is None and isinstance(exc, ValueError)

    def test_waitany_already_fired(self, kernel):
        events = [kernel.event("a"), kernel.event("b")]
        events[1].fire("early")

        def waiter():
            outcome = yield WaitAny(events)
            return outcome

        assert run_gen(kernel, waiter()) == (1, "early", None)

    def test_waitall_collects_in_order(self, kernel):
        events = [kernel.event(f"e{i}") for i in range(3)]
        # fire out of order; results must come back in event order
        kernel.call_later(0.3, lambda: events[0].fire(0))
        kernel.call_later(0.1, lambda: events[1].fire(10))
        kernel.call_later(0.2, lambda: events[2].fire(20))

        def waiter():
            values = yield WaitAll(events)
            return values

        assert run_gen(kernel, waiter()) == [0, 10, 20]

    def test_waitall_empty_completes_immediately(self, kernel):
        def waiter():
            values = yield WaitAll([])
            return values

        assert run_gen(kernel, waiter()) == []

    def test_waitall_raises_first_failure(self, kernel):
        events = [kernel.event("a"), kernel.event("b")]
        kernel.call_later(0.1, lambda: events[0].fail(RuntimeError("x")))
        kernel.call_later(0.2, lambda: events[1].fire(1))

        def waiter():
            try:
                yield WaitAll(events)
            except RuntimeError:
                return "failed"

        assert run_gen(kernel, waiter()) == "failed"

    def test_waitall_duplicate_events(self, kernel):
        event = kernel.event("dup")
        kernel.call_later(0.1, lambda: event.fire(7))

        def waiter():
            values = yield WaitAll([event, event])
            return values

        assert run_gen(kernel, waiter()) == [7, 7]

    def test_kill_detaches_multiwait(self, kernel):
        events = [kernel.event("a"), kernel.event("b")]

        def waiter():
            yield WaitAny(events)

        thread = kernel.spawn(waiter(), "w")
        kernel.call_later(0.1, thread.kill)
        kernel.run()
        assert not thread.alive
        assert events[0]._waiters == [] and events[1]._waiters == []

    def test_no_watcher_threads_spawned(self, kernel):
        """Acceptance: first_of/join_all must not spawn threads."""
        events = [kernel.event(f"e{i}") for i in range(8)]
        joined = join_all(events, kernel)
        race = first_of(kernel, events)

        def waiter():
            yield WaitAny(events)
            yield WaitAll(events)
            yield WaitEvent(race)
            yield WaitEvent(joined)
            return "ok"

        thread = kernel.spawn(waiter(), "w")
        for i, event in enumerate(events):
            kernel.call_later(0.1 * (i + 1), lambda e=event, i=i: e.fire(i))
        kernel.run()
        assert thread.result == "ok"
        # only the one waiter thread exists; no per-event watchers
        assert kernel.stats.threads_spawned == 1
        assert kernel.stats.waits_any == 1 and kernel.stats.waits_all == 1

    def test_legacy_mode_spawns_watchers(self):
        """fast_paths=False keeps the pre-change watcher combinators."""
        kernel = Kernel(fast_paths=False)
        events = [kernel.event(f"e{i}") for i in range(4)]
        joined = join_all(events, kernel)

        def waiter():
            values = yield WaitEvent(joined)
            return values

        thread = kernel.spawn(waiter(), "w")
        for i, event in enumerate(events):
            kernel.call_later(0.1, lambda e=event, i=i: e.fire(i))
        kernel.run()
        assert thread.result == [0, 1, 2, 3]
        # one watcher per event, plus the waiter
        assert kernel.stats.threads_spawned == 1 + len(events)

    def test_legacy_waitany_translates(self):
        kernel = Kernel(fast_paths=False)
        events = [kernel.event("a"), kernel.event("b")]
        kernel.call_later(0.1, lambda: events[1].fire("f"))

        def waiter():
            outcome = yield WaitAny(events)
            return outcome

        assert run_gen(kernel, waiter()) == (1, "f", None)

    def test_legacy_waitall_translates(self):
        kernel = Kernel(fast_paths=False)
        events = [kernel.event("a"), kernel.event("b")]
        kernel.call_later(0.1, lambda: events[0].fire(1))
        kernel.call_later(0.2, lambda: events[1].fire(2))

        def waiter():
            values = yield WaitAll(events)
            return values

        assert run_gen(kernel, waiter()) == [1, 2]


class TestKernelStats:
    def test_ready_path_bypasses_heap(self, kernel):
        def chatty():
            for _ in range(50):
                yield Delay(0)
            return "done"

        run_gen(kernel, chatty())
        assert kernel.stats.ready_hits >= 50
        # zero-delay wakeups must not touch the heap
        assert kernel.stats.heap_pushes < 10

    def test_legacy_mode_uses_heap(self):
        kernel = Kernel(fast_paths=False)

        def chatty():
            for _ in range(50):
                yield Delay(0)
            return "done"

        thread = kernel.spawn(chatty(), "c")
        kernel.run_until_complete(thread)
        assert kernel.stats.ready_hits == 0
        assert kernel.stats.heap_pushes >= 50

    def test_snapshot_shape(self, kernel):
        def main():
            yield Delay(0.1)

        run_gen(kernel, main())
        snap = kernel.stats_snapshot()
        for key in (
            "events", "ready_hits", "heap_pushes", "heap_pops",
            "peak_heap", "peak_ready", "threads_spawned",
            "threads_reaped", "threads_live", "threads_dead",
            "waits_any", "waits_all", "run_wall_s", "events_per_sec",
        ):
            assert key in snap, key
        assert snap["events"] > 0
        assert snap["threads_live"] == 0


class TestThreadReaping:
    def test_dead_threads_are_compacted(self, kernel):
        def short():
            yield Delay(0.001)

        for i in range(1000):
            kernel.spawn(short(), f"s{i}")
        kernel.run()
        assert kernel.stats.threads_spawned == 1000
        assert kernel.stats.threads_reaped > 0
        # the registry must not retain every thread ever spawned
        assert len(kernel._threads) < 200

    def test_live_threads_survive_compaction(self, kernel):
        gate = kernel.event("gate")

        def short():
            yield Delay(0.001)

        def long_lived():
            yield WaitEvent(gate)
            return "kept"

        keeper = kernel.spawn(long_lived(), "keeper")
        for i in range(500):
            kernel.spawn(short(), f"s{i}")
        kernel.call_later(1.0, lambda: gate.fire(None))
        kernel.run()
        assert keeper.result == "kept"


class TestPerKernelIds:
    def test_tids_deterministic_across_kernels(self):
        """Satellite: ids must restart per kernel, not share a global
        iterator across every kernel the test session creates."""

        def collect():
            kernel = Kernel()

            def noop():
                yield Delay(0)

            return [kernel.spawn(noop(), "t").tid for _ in range(3)]

        assert collect() == [1, 2, 3]
        assert collect() == [1, 2, 3]


class TestRunUntilSeqPreserved:
    def test_truncated_entry_keeps_original_seq(self, kernel):
        kernel.call_later(1.0, lambda: None)  # seq 0, executes
        kernel.call_later(3.0, lambda: None)  # seq 1, truncated
        kernel.call_later(3.0, lambda: None)  # seq 2
        kernel.run(until=2.0)
        seqs = sorted(entry[1] for entry in kernel._pq)
        assert seqs == [1, 2]
