"""Unit tests for the storage substrate."""

import pytest

from repro.vfs import path as vpath
from repro.vfs.fsbase import FS
from repro.vfs.sharedfs import SharedFS
from repro.vfs.transfer import copy_file, copy_tree
from repro.util.errors import VFSError
from tests.conftest import run_gen


class TestPath:
    def test_normalize(self):
        assert vpath.normalize("/a/b/c") == "/a/b/c"
        assert vpath.normalize("a/b") == "/a/b"
        assert vpath.normalize("/a//b/./c") == "/a/b/c"
        assert vpath.normalize("/a/b/../c") == "/a/c"
        assert vpath.normalize("/") == "/"

    def test_escape_rejected(self):
        with pytest.raises(VFSError):
            vpath.normalize("/../x")
        with pytest.raises(VFSError):
            vpath.normalize("")

    def test_join(self):
        assert vpath.join("/a", "b", "c") == "/a/b/c"
        assert vpath.join("/a/", "/b/") == "/a/b"

    def test_split_dirname_basename(self):
        assert vpath.split("/a/b/c") == ("/a/b", "c")
        assert vpath.dirname("/a/b") == "/a"
        assert vpath.basename("/a/b") == "b"
        assert vpath.split("/") == ("/", "")
        assert vpath.dirname("/x") == "/"

    def test_is_under(self):
        assert vpath.is_under("/a/b/c", "/a/b")
        assert vpath.is_under("/a/b", "/a/b")
        assert not vpath.is_under("/a/bc", "/a/b")
        assert not vpath.is_under("/a", "/a/b")


class TestFS:
    @pytest.fixture
    def fs(self, kernel):
        return FS(kernel, "test", bandwidth_Bps=1e6, op_latency_s=0.001)

    def test_write_read_roundtrip(self, kernel, fs):
        def main():
            n = yield from fs.write("/d/f", b"hello")
            data = yield from fs.read("/d/f")
            return n, data

        n, data = run_gen(kernel, main())
        assert (n, data) == (5, b"hello")
        assert fs.bytes_written == 5 and fs.bytes_read == 5

    def test_io_is_timed(self, kernel, fs):
        def main():
            yield from fs.write("/f", b"x" * 1_000_000)

        run_gen(kernel, main())
        assert kernel.now == pytest.approx(0.001 + 1.0)

    def test_read_missing_raises(self, kernel, fs):
        def main():
            yield from fs.read("/nope")

        with pytest.raises(VFSError):
            run_gen(kernel, main())

    def test_non_bytes_write_rejected(self, kernel, fs):
        def main():
            yield from fs.write("/f", "not bytes")

        with pytest.raises(VFSError):
            run_gen(kernel, main())

    def test_remove(self, kernel, fs):
        fs.poke("/f", b"x")

        def main():
            yield from fs.remove("/f")

        run_gen(kernel, main())
        assert not fs.exists("/f")

    def test_remove_tree(self, kernel, fs):
        for name in ("a", "b", "c"):
            fs.poke(f"/dir/{name}", b"1")
        fs.poke("/other", b"2")

        def main():
            count = yield from fs.remove_tree("/dir")
            return count

        assert run_gen(kernel, main()) == 3
        assert fs.list_tree("/") == ["/other"]
        assert not fs.isdir("/dir")

    def test_dirs_implicit_and_explicit(self, kernel, fs):
        fs.poke("/a/b/file", b"x")
        assert fs.isdir("/a/b")
        assert fs.exists("/a/b")
        assert not fs.isdir("/a/c")
        fs.mkdir("/a/c")
        assert fs.isdir("/a/c")

    def test_stat(self, kernel, fs):
        fs.poke("/f", b"abc")
        stat = fs.stat("/f")
        assert stat.size == 3 and stat.path == "/f"
        with pytest.raises(VFSError):
            fs.stat("/missing")

    def test_list_and_size_tree(self, kernel, fs):
        fs.poke("/d/x", b"12")
        fs.poke("/d/sub/y", b"345")
        fs.poke("/e", b"6")
        assert fs.list_tree("/d") == ["/d/sub/y", "/d/x"]
        assert fs.size_tree("/d") == 5

    def test_unreachable_fs_rejects_everything(self, kernel, fs):
        fs.poke("/f", b"x")
        fs.mark_unreachable()
        with pytest.raises(VFSError):
            fs.exists("/f")
        with pytest.raises(VFSError):
            fs.peek("/f")

        def main():
            yield from fs.read("/f")

        with pytest.raises(VFSError):
            run_gen(kernel, main())

    def test_crash_mid_write_loses_data(self, kernel, fs):
        def main():
            yield from fs.write("/f", b"x" * 500_000)

        thread = kernel.spawn(main(), "w")
        kernel.call_later(0.1, fs.mark_unreachable)
        kernel.run()
        assert thread.done.fired
        assert not thread.alive


class TestSharedFS:
    def test_survives_forever(self, kernel):
        fs = SharedFS(kernel)
        with pytest.raises(AssertionError):
            fs.mark_unreachable()

    def test_network_hop_cost(self, kernel):
        fs = SharedFS(kernel, bandwidth_Bps=1e6, op_latency_s=0.001, net_hop_s=0.01)

        def main():
            yield from fs.write("/f", b"x")
            data = yield from fs.read("/f")
            return data

        assert run_gen(kernel, main()) == b"x"
        assert kernel.now >= 2 * 0.01


class TestTransfer:
    def test_copy_file(self, kernel):
        src = FS(kernel, "src")
        dst = FS(kernel, "dst")
        src.poke("/a/f", b"data!")

        def main():
            n = yield from copy_file(src, "/a/f", dst, "/b/g")
            return n

        assert run_gen(kernel, main()) == 5
        assert dst.peek("/b/g") == b"data!"

    def test_copy_file_extra_network_cost(self, kernel):
        src = FS(kernel, "src", bandwidth_Bps=1e9, op_latency_s=0)
        dst = FS(kernel, "dst", bandwidth_Bps=1e9, op_latency_s=0)
        src.poke("/f", b"x" * 1_000_000)

        def main():
            yield from copy_file(src, "/f", dst, "/f", extra_net_Bps=1e6, extra_latency_s=0.5)

        run_gen(kernel, main())
        assert kernel.now >= 0.5 + 1.0

    def test_copy_tree_preserves_layout(self, kernel):
        src = FS(kernel, "src")
        dst = FS(kernel, "dst")
        src.poke("/snap/meta", b"m")
        src.poke("/snap/img/data", b"d")

        def main():
            n = yield from copy_tree(src, "/snap", dst, "/out")
            return n

        assert run_gen(kernel, main()) == 2
        assert dst.peek("/out/meta") == b"m"
        assert dst.peek("/out/img/data") == b"d"
