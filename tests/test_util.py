"""Unit tests for repro.util: ids, seq, errors."""

import pytest

from repro.util.errors import (
    CheckpointError,
    ComponentNotFoundError,
    DeadlockError,
    NotCheckpointableError,
    ReproError,
)
from repro.util.ids import (
    DAEMON_JOBID,
    VPID_WILDCARD,
    ProcessName,
    app_name,
    daemon_name,
    hnp_name,
)
from repro.util.seq import SeqCounter, SeqWindow


class TestProcessName:
    def test_hnp_identity(self):
        name = hnp_name()
        assert name.is_hnp
        assert name.is_daemon
        assert name.jobid == DAEMON_JOBID

    def test_daemon_names_start_at_vpid_one(self):
        assert daemon_name(0).vpid == 1
        assert daemon_name(3).vpid == 4
        assert not daemon_name(0).is_hnp
        assert daemon_name(0).is_daemon

    def test_daemon_negative_index_rejected(self):
        with pytest.raises(ValueError):
            daemon_name(-1)

    def test_app_names(self):
        name = app_name(2, 5)
        assert name.jobid == 2 and name.vpid == 5
        assert not name.is_daemon

    def test_app_name_validation(self):
        with pytest.raises(ValueError):
            app_name(0, 1)
        with pytest.raises(ValueError):
            app_name(1, -1)

    def test_ordering_and_hash(self):
        a, b = ProcessName(1, 0), ProcessName(1, 1)
        assert a < b
        assert len({a, b, ProcessName(1, 0)}) == 2

    def test_wildcard_matching(self):
        wild = ProcessName(3, VPID_WILDCARD)
        assert wild.matches(ProcessName(3, 7))
        assert ProcessName(3, 7).matches(wild)
        assert not wild.matches(ProcessName(4, 7))
        assert not ProcessName(3, 1).matches(ProcessName(3, 2))

    def test_str_format(self):
        assert str(ProcessName(1, 2)) == "[1,2]"


class TestSeqCounter:
    def test_monotonic(self):
        counter = SeqCounter()
        assert [counter.next() for _ in range(3)] == [0, 1, 2]
        assert counter.peek() == 3

    def test_snapshot_restore(self):
        counter = SeqCounter()
        for _ in range(5):
            counter.next()
        restored = SeqCounter.restore(counter.snapshot())
        assert restored.next() == 5


class TestSeqWindow:
    def test_in_order_delivery(self):
        window = SeqWindow()
        for seq in range(4):
            window.deliver(seq)
        assert window.contiguous == 4
        assert window.total_delivered == 4

    def test_out_of_order_delivery(self):
        window = SeqWindow()
        window.deliver(2)
        window.deliver(0)
        assert window.contiguous == 1
        assert window.total_delivered == 2
        assert window.missing_below(3) == [1]
        window.deliver(1)
        assert window.contiguous == 3

    def test_duplicate_rejected(self):
        window = SeqWindow()
        window.deliver(0)
        with pytest.raises(ValueError):
            window.deliver(0)
        window.deliver(5)
        with pytest.raises(ValueError):
            window.deliver(5)

    def test_snapshot_restore_roundtrip(self):
        window = SeqWindow()
        for seq in (0, 1, 5, 7):
            window.deliver(seq)
        restored = SeqWindow.restore(window.snapshot())
        assert restored.contiguous == window.contiguous
        assert restored.total_delivered == window.total_delivered
        restored.deliver(2)
        assert restored.contiguous == 3


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(CheckpointError, ReproError)
        assert issubclass(NotCheckpointableError, CheckpointError)
        assert issubclass(DeadlockError, ReproError)

    def test_not_checkpointable_carries_names(self):
        err = NotCheckpointableError(["[1,0]", "[1,2]"])
        assert err.names == ["[1,0]", "[1,2]"]
        assert "[1,2]" in str(err)

    def test_component_not_found_fields(self):
        err = ComponentNotFoundError("crs", "bogus")
        assert err.framework == "crs"
        assert err.component == "bogus"
        assert "bogus" in str(err)

    def test_deadlock_lists_threads(self):
        err = DeadlockError(["a", "b"])
        assert err.blocked == ["a", "b"]
