"""Integration tests of the full checkpoint/restart life cycle —
the paper's system end to end."""

import pytest

from repro.mca.params import MCAParams
from repro.snapshot import GlobalSnapshotRef, read_global_meta
from repro.tools.api import (
    checkpoint_ref,
    ompi_checkpoint,
    ompi_ps,
    ompi_restart,
    ompi_run,
)
from repro.util.errors import CheckpointError, RestartError
from tests.conftest import make_universe, run_gen
from tests.test_pml import define_app

JACOBI = {"n_global": 256, "iters": 30000}


def baseline_jacobi():
    universe = make_universe(4)
    job = ompi_run(universe, "jacobi", 4, args=JACOBI)
    assert job.state.value == "finished"
    return job.results


@pytest.fixture(scope="module")
def jacobi_baseline():
    return baseline_jacobi()


class TestCheckpointContinue:
    def test_async_checkpoint_does_not_perturb_results(self, jacobi_baseline):
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args=JACOBI, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.08, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"
        assert handle.result()["ok"]
        assert job.results == jacobi_baseline

    def test_snapshot_reference_structure(self):
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args=JACOBI, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        ref = checkpoint_ref(handle)
        stable = universe.cluster.stable_fs
        # Global metadata + one local snapshot dir per rank (section 4).
        assert stable.exists(ref.meta_path)
        for rank in range(4):
            assert stable.exists(f"{ref.local_dir(rank)}/metadata.json")
            assert stable.exists(f"{ref.local_dir(rank)}/image.pkl")

    def test_global_metadata_contents(self):
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args=JACOBI, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        ref = checkpoint_ref(handle)

        def read():
            meta = yield from read_global_meta(universe.cluster.stable_fs, ref)
            return meta

        meta = run_gen(universe.kernel, read())
        assert meta.app_name == "jacobi"
        assert meta.app_args == JACOBI
        assert meta.n_procs == 4
        assert meta.interval == 1
        assert set(meta.locals) == {0, 1, 2, 3}
        assert all(entry["crs"] == "simcr" for entry in meta.locals.values())

    def test_multiple_intervals_numbered(self):
        universe = make_universe(4)
        args = {"n_global": 256, "iters": 80000}
        job = ompi_run(universe, "jacobi", 4, args=args, wait=False)
        h1 = ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        h2 = ompi_checkpoint(universe, job.jobid, at=0.30, wait=False)
        universe.run_job_to_completion(job)
        assert h1.result()["interval"] == 1
        assert h2.result()["interval"] == 2
        assert len(job.snapshots) == 2
        assert job.snapshots[0].path != job.snapshots[1].path

    def test_staged_local_snapshots_cleaned_after_gather(self):
        universe = make_universe(2)
        job = ompi_run(
            universe, "jacobi", 2, args={"n_global": 128, "iters": 40000}, wait=False
        )
        ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        for node in universe.cluster.nodes:
            assert node.local_fs.list_tree("/ckpt") == []


class TestCheckpointTerminate:
    def test_halt_and_restart_matches_baseline(self, jacobi_baseline):
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args=JACOBI, wait=False)
        handle = ompi_checkpoint(
            universe, job.jobid, at=0.08, terminate=True, wait=False
        )
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, checkpoint_ref(handle))
        assert new_job.state.value == "finished"
        assert new_job.results == jacobi_baseline

    def test_restart_allocates_new_jobid(self):
        universe = make_universe(2)
        job = ompi_run(
            universe, "jacobi", 2, args={"n_global": 128, "iters": 40000}, wait=False
        )
        handle = ompi_checkpoint(
            universe, job.jobid, at=0.05, terminate=True, wait=False
        )
        universe.run_job_to_completion(job)
        new_job = ompi_restart(universe, checkpoint_ref(handle))
        assert new_job.jobid != job.jobid
        assert new_job.restarted_from is not None

    def test_restart_preserves_mca_params(self):
        """Restart must not require the user to remember the original
        runtime parameters (paper section 4)."""
        universe = make_universe(2)
        params = MCAParams({"pml_ob1_eager_limit": "1234", "coll_basic_bcast_algorithm": "linear"})
        job = ompi_run(
            universe,
            "jacobi",
            2,
            args={"n_global": 128, "iters": 40000},
            params=params,
            wait=False,
        )
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, terminate=True, wait=False)
        universe.run_job_to_completion(job)
        new_job = ompi_restart(universe, checkpoint_ref(handle))
        assert new_job.params.get("pml_ob1_eager_limit") == "1234"
        assert new_job.params.get("coll_basic_bcast_algorithm") == "linear"


class TestRestartTopologies:
    def test_restart_after_node_crash_relocates_ranks(self, jacobi_baseline):
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args=JACOBI, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.04, wait=False)
        universe.cluster.failures.crash_node_at(0.15, "node02")
        universe.run_job_to_completion(job)
        assert job.state.value == "failed"
        new_job = ompi_restart(universe, checkpoint_ref(handle))
        assert new_job.state.value == "finished"
        assert new_job.results == jacobi_baseline
        assert new_job.placements[2] != "node02"

    def test_restart_all_on_one_node(self, jacobi_baseline):
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args=JACOBI, wait=False)
        handle = ompi_checkpoint(
            universe, job.jobid, at=0.08, terminate=True, wait=False
        )
        universe.run_job_to_completion(job)
        ref = checkpoint_ref(handle)
        for name in ("node01", "node02", "node03"):
            universe.cluster.failures.crash_node_now(name)
        new_job = ompi_restart(universe, ref)
        assert new_job.state.value == "finished"
        assert set(new_job.placements.values()) == {"node00"}
        assert new_job.results == jacobi_baseline

    def test_restart_unknown_snapshot_fails_cleanly(self):
        universe = make_universe(2)
        with pytest.raises(RestartError):
            ompi_restart(universe, GlobalSnapshotRef("/snapshots/ghost"))


class TestVetoRule:
    def test_crs_none_vetoes_whole_request(self):
        universe = make_universe(2, params={"crs": "none", "ompi_cr_enabled": "0"})
        job = ompi_run(
            universe, "jacobi", 2, args={"n_global": 128, "iters": 60000}, wait=False
        )
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"  # no process affected
        reply = handle.result()
        assert reply["ok"] is False
        assert "not checkpointable" in reply["error"]

    def test_unknown_job_rejected(self):
        universe = make_universe(2)
        with pytest.raises(CheckpointError):
            ompi_checkpoint(universe, 999)

    def test_finished_job_rejected(self):
        universe = make_universe(2)
        job = ompi_run(universe, "ring", 2, args={"laps": 1})
        with pytest.raises(CheckpointError, match="finished"):
            ompi_checkpoint(universe, job.jobid)

    def test_racing_finalize_aborts_cleanly(self):
        """A checkpoint racing a rank's MPI_FINALIZE must fail without
        hanging the remaining ranks (coordination abort path)."""
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                yield ctx.compute(seconds=0.2)
                result = yield ctx.checkpoint(allow_fail=True)
                return result["ok"]
            # rank 1 finishes almost immediately
            yield ctx.compute(seconds=0.19999)
            return "early"

        define_app("t_race_fin", main)
        job = ompi_run(universe, "t_race_fin", 2)
        assert job.state.value == "finished"


class TestAutorecovery:
    def test_node_crash_triggers_recovery(self, jacobi_baseline):
        universe = make_universe(4, params={"orte_errmgr_autorecover": "1"})
        args = {"n_global": 256, "iters": 50000}
        expected = ompi_run(make_universe(4), "jacobi", 4, args=args).results
        job = ompi_run(universe, "jacobi", 4, args=args, wait=False)
        ompi_checkpoint(universe, job.jobid, at=0.04, wait=False)
        universe.cluster.failures.crash_node_at(0.25, "node03")
        universe.run_job_to_completion(job)
        assert job.state.value == "failed"
        assert universe.hnp.errmgr.recoveries
        recovered = universe.job(universe.hnp.errmgr.recoveries[0][1])
        universe.run_job_to_completion(recovered)
        assert recovered.state.value == "finished"
        assert recovered.results == expected

    def test_no_recovery_without_snapshot(self):
        universe = make_universe(4, params={"orte_errmgr_autorecover": "1"})
        job = ompi_run(
            universe, "jacobi", 4, args={"n_global": 256, "iters": 50000}, wait=False
        )
        universe.cluster.failures.crash_node_at(0.1, "node01")
        universe.run_job_to_completion(job)
        assert job.state.value == "failed"
        assert universe.hnp.errmgr.recoveries == []

    def test_no_recovery_when_disabled(self):
        universe = make_universe(4)
        job = ompi_run(
            universe, "jacobi", 4, args={"n_global": 256, "iters": 50000}, wait=False
        )
        ompi_checkpoint(universe, job.jobid, at=0.04, wait=False)
        universe.cluster.failures.crash_node_at(0.25, "node03")
        universe.run_job_to_completion(job)
        assert job.state.value == "failed"
        assert universe.hnp.errmgr.recoveries == []


class TestSynchronousAPI:
    def test_app_requested_checkpoint(self):
        universe = make_universe(4)
        job = ompi_run(
            universe, "ring", 4, args={"laps": 6, "checkpoint_at_lap": 2}
        )
        assert job.state.value == "finished"
        assert len(job.snapshots) == 1

    def test_restart_resumes_out_of_checkpoint_call(self):
        """The synchronous checkpoint call returns (with restarted=True)
        in the restarted process instead of re-requesting."""
        universe = make_universe(2)
        observed = []

        def main(ctx):
            yield ctx.compute(seconds=0.001)
            yield from ctx.barrier()
            if ctx.rank == 0:
                result = yield ctx.checkpoint(terminate=True)
                observed.append(result)
            yield from ctx.barrier()
            return "completed"

        define_app("t_sync_restart", main)
        job = ompi_run(universe, "t_sync_restart", 2, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        assert all(v == "completed" for v in new_job.results.values())
        assert observed[-1]["restarted"] is True


class TestRestartINCOrdering:
    def test_figure2_traversal_on_restart(self):
        """INC(RESTART) in the restarted process must traverse the full
        stack in Figure-2 order, including a re-registered app INC."""
        from repro.core.ft_event import FTState

        traces = {}

        def main(ctx):
            stack = ctx._runner.opal.inc_stack
            stack.record_trace = True

            def app_inc(state, down):
                result = yield from down(state)
                return result

            ctx.register_inc(app_inc)
            yield ctx.compute(seconds=0.002)
            yield from ctx.barrier()
            if ctx.rank == 0:
                yield ctx.checkpoint(terminate=True)
            yield from ctx.barrier()
            traces[ctx.rank] = list(stack.trace)
            return "done"

        define_app("t_restart_inc", main)
        universe = make_universe(2)
        job = ompi_run(universe, "t_restart_inc", 2, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        traces.clear()
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        restart_steps = [
            (layer, step)
            for layer, step, state in traces[0]
            if state == FTState.RESTART
        ]
        assert restart_steps == [
            ("app", "enter"),
            ("ompi", "enter"),
            ("orte", "enter"),
            ("opal", "enter"),
            ("opal", "exit"),
            ("orte", "exit"),
            ("ompi", "exit"),
            ("app", "exit"),
        ]


class TestSelfCRS:
    def test_self_checkpoint_restart_cycle(self):
        universe = make_universe(2, params={"crs": "self"})
        calls = {"continue": 0}

        def main(ctx):
            state = {"phase": 0, "acc": 0}
            if ctx.restored_state is not None:
                state = dict(ctx.restored_state)
            ctx.register_self_callbacks(
                checkpoint=lambda: dict(state),
                continue_=lambda: calls.__setitem__("continue", calls["continue"] + 1),
            )
            while state["phase"] < 6:
                yield ctx.compute(seconds=0.002)
                state["acc"] += state["phase"]
                state["phase"] += 1
                total = yield from ctx.allreduce(state["acc"])
                state["total"] = total
                if state["phase"] == 3 and ctx.rank == 0:
                    yield ctx.checkpoint(terminate=True)
            return state

        define_app("t_self_cycle", main)
        job = ompi_run(universe, "t_self_cycle", 2, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        # 0+1+2+3+4+5 = 15 per rank; allreduce doubles it.
        assert all(r["acc"] == 15 for r in new_job.results.values())
        assert all(r["total"] == 30 for r in new_job.results.values())

    def test_self_without_callback_vetoed(self):
        universe = make_universe(2, params={"crs": "self"})

        def main(ctx):
            # never registers a checkpoint callback
            yield ctx.compute(seconds=0.3)
            return "done"

        define_app("t_self_nocb", main)
        job = ompi_run(universe, "t_self_nocb", 2, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"
        assert handle.result()["ok"] is False


class TestToolVisibility:
    def test_ps_shows_snapshots_and_states(self):
        universe = make_universe(2)
        job = ompi_run(
            universe, "jacobi", 2, args={"n_global": 128, "iters": 40000}, wait=False
        )
        ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        rows = ompi_ps(universe)
        row = next(r for r in rows if r["jobid"] == job.jobid)
        assert row["state"] == "finished"
        assert len(row["snapshots"]) == 1
        assert row["app"] == "jacobi"
