"""Durable control plane: state store + HNP failover/re-election.

Covers the write-ahead state store (ordered appends, torn-record
cutoff, WAL gaps from dropped appends, compaction), the deterministic
lowest-vpid election among surviving orteds, and the rehydration
contract: an HNP-node crash mid-checkpoint, mid-stage, or mid-recovery
ends with the lineage finished and every interval the store calls
COMMITTED intact on stable storage — never re-shipped, never lost.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.report import filter_spans
from repro.orte.snapc.admission import StagingAdmission
from repro.orte.statestore import StateStore
from repro.simenv.campaign import (
    FAULT_HNP_CRASH,
    CampaignSpec,
    FaultSpec,
    _drain_background,
    follow_lineage,
    run_campaign,
)
from repro.snapshot import STAGE_COMMITTED, GlobalSnapshotRef, read_global_meta
from repro.tools.api import ompi_restart, ompi_run
from tests.conftest import make_universe, run_gen

CHURN = {"loops": 150, "compute_s": 0.01, "state_bytes": 1 << 20}

FAILOVER_PARAMS = {
    "orte_errmgr_autorecover": "1",
    "orte_hnp_failover": "1",
    "snapc_full_checkpoint_every": "0.15",
}


def failover_universe(n_nodes: int = 6, **extra):
    params = dict(FAILOVER_PARAMS)
    params.update(extra)
    return make_universe(n_nodes, params)


def crash_hnp_at(universe, at: float) -> None:
    universe.kernel.call_at(
        at,
        lambda: universe.cluster.failures.crash_hnp_node_now(universe),
    )


def settle_lineage(universe, job):
    """Follow *job*'s lineage to its end, then drain background work."""
    final = run_gen(
        universe.kernel, follow_lineage(universe, job), name="follow"
    )
    _drain_background(universe)
    return final


def assert_committed_consistent(universe) -> int:
    """Every interval the store calls COMMITTED is intact on disk.

    Returns how many committed intervals were checked — the zero-lost
    guarantee is only meaningful when there was something to lose.
    """
    stable = universe.cluster.stable_fs
    table = universe.statestore.tables.get("staging", {})
    committed = [
        v for v in table.values() if v["state"] == STAGE_COMMITTED
    ]
    for value in committed:
        ref = GlobalSnapshotRef(value["path"])
        meta = run_gen(
            universe.kernel,
            read_global_meta(stable, ref),
            name="verify-meta",
        )
        assert meta.staging["state"] == STAGE_COMMITTED, value["path"]
        assert meta.jobid == value["jobid"]
        assert meta.interval == value["interval"]
    return len(committed)


# ---------------------------------------------------------------------------
# the state store itself
# ---------------------------------------------------------------------------


class TestStateStore:
    def _store(self, universe, **kwargs) -> StateStore:
        store = StateStore(universe, root="/test/statestore", **kwargs)
        store.attach(universe.hnp.proc)
        return store

    def _fill(self, universe, store, n: int) -> None:
        for i in range(n):
            store.put("t", f"k{i}", {"i": i})
        run_gen(universe.kernel, store.flush(), name="flush")

    def _replay(self, universe, **kwargs) -> StateStore:
        fresh = StateStore(universe, root="/test/statestore", **kwargs)
        run_gen(universe.kernel, fresh.replay(), name="replay")
        return fresh

    def test_default_config_store_is_null(self):
        universe = make_universe(2)
        assert universe.statestore.enabled is False

    def test_failover_config_store_is_real(self):
        universe = make_universe(2, {"orte_hnp_failover": "1"})
        assert universe.statestore.enabled is True

    def test_roundtrip_replay(self):
        universe = make_universe(2)
        store = self._store(universe)
        self._fill(universe, store, 5)
        assert store.appended == 5
        fresh = self._replay(universe)
        assert fresh.tables == store.tables
        assert fresh.tables["t"]["k3"] == {"i": 3}
        # new appends continue past the replayed sequence
        assert fresh._next_seq == 5

    def test_torn_record_ends_replay_at_cutoff(self):
        universe = make_universe(2)
        store = self._store(universe)
        self._fill(universe, store, 5)
        stable = universe.cluster.stable_fs
        victim = store._wal_path(2)
        data = stable.peek(victim)
        stable.poke(victim, data[: len(data) // 2])
        fresh = self._replay(universe)
        # records 0 and 1 survive; the torn record and the suffix after
        # it are untrusted even though 3 and 4 are physically intact
        assert sorted(fresh.tables["t"]) == ["k0", "k1"]

    def test_corrupt_record_hash_mismatch_ends_replay(self):
        universe = make_universe(2)
        store = self._store(universe)
        self._fill(universe, store, 3)
        stable = universe.cluster.stable_fs
        victim = store._wal_path(1)
        doc = json.loads(stable.peek(victim).decode())
        doc["value"] = {"i": 999}  # valid JSON, wrong content hash
        stable.poke(victim, json.dumps(doc, sort_keys=True).encode())
        fresh = self._replay(universe)
        assert sorted(fresh.tables["t"]) == ["k0"]

    def test_dropped_appends_leave_legal_gaps(self):
        universe = make_universe(2)
        store = self._store(universe)
        self._fill(universe, store, 2)  # seqs 0, 1 durable
        store.put("t", "k2", {"i": 2})
        store.put("t", "k3", {"i": 3})
        assert store.drop_pending() == 2  # seqs 2, 3 never written
        store.put("t", "k4", {"i": 4})  # seq 4
        run_gen(universe.kernel, store.flush(), name="flush2")
        fresh = self._replay(universe)
        # the gap does not stop replay, and the dropped records are gone
        assert sorted(fresh.tables["t"]) == ["k0", "k1", "k4"]
        assert fresh._next_seq == 5

    def test_compaction_folds_wal_into_base(self):
        universe = make_universe(2)
        store = self._store(universe, wal_max_records=3)
        self._fill(universe, store, 6)
        universe.kernel.run()  # let the compaction finish
        assert store.compactions >= 1
        stable = universe.cluster.stable_fs
        assert stable.exists("/test/statestore/base.json")
        fresh = self._replay(universe)
        assert fresh.tables == store.tables
        assert len(fresh.tables["t"]) == 6

    def test_later_put_does_not_alias_queued_value(self):
        universe = make_universe(2)
        store = self._store(universe)
        value = {"i": 0}
        store.put("t", "k", value)
        value["i"] = 77  # mutation after put must not reach the disk
        run_gen(universe.kernel, store.flush(), name="flush")
        fresh = self._replay(universe)
        assert fresh.tables["t"]["k"] == {"i": 0}


def test_reclaim_all_returns_tokens_and_clears_dead_waiters():
    universe = make_universe(2)
    admission = StagingAdmission(universe.kernel, tokens=1)
    run_gen(universe.kernel, admission.acquire(7), name="acquire-7")
    universe.kernel.spawn(admission.acquire(8), name="acquire-8", daemon=True)
    universe.kernel.run()  # parks the second acquire in the FIFO
    assert admission.held_by(7) == 1
    assert admission.waiting == 1
    assert admission.reclaim_all() == 1
    assert admission.holders() == []
    assert admission.waiting == 0
    # the pool is whole again: a fresh acquire is immediate, instead of
    # the freed token having been handed to the dead queued waiter
    run_gen(universe.kernel, admission.acquire(9), name="acquire-9")
    assert admission.held_by(9) == 1


# ---------------------------------------------------------------------------
# election
# ---------------------------------------------------------------------------


class TestElection:
    def test_lowest_vpid_survivor_wins(self):
        universe = failover_universe()
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        # the first interval commits at ~0.32; crash after it so the
        # re-elected HNP has something to recover from
        crash_hnp_at(universe, 0.35)
        final = settle_lineage(universe, job)
        assert final.state.value == "finished"
        assert universe.failovers == 1
        assert universe.hnp.recovered is True
        # node00 hosted the HNP; node01's orted has the lowest
        # surviving daemon vpid
        assert universe.hnp.proc.node.name == "node01"

    def test_cascading_failovers_walk_the_vpid_order(self):
        universe = failover_universe()
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        crash_hnp_at(universe, 0.35)
        crash_hnp_at(universe, 1.0)
        final = settle_lineage(universe, job)
        assert final.state.value == "finished"
        assert universe.failovers == 2
        assert universe.hnp.proc.node.name == "node02"
        assert_committed_consistent(universe)

    def test_failover_disabled_means_no_election(self):
        universe = make_universe(
            4,
            {
                "orte_errmgr_autorecover": "1",
                "snapc_full_checkpoint_every": "0.15",
            },
        )
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        crash_hnp_at(universe, 0.3)
        universe.kernel.run()
        assert universe.failovers == 0
        assert not universe.hnp.proc.alive
        assert job.state.value != "finished"


# ---------------------------------------------------------------------------
# crash-timing scenarios: each must end COMMITTED-consistent
# ---------------------------------------------------------------------------


class TestFailoverScenarios:
    def test_hnp_crash_mid_checkpoint(self):
        """The crash lands inside the scheduled checkpoint window; the
        orted-side local phase settles on its own and the re-elected
        HNP resumes the cadence."""
        universe = failover_universe(obs_trace_enabled="1")
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        # cadence is 0.15: 0.46 is inside the third tick's fan-out,
        # after interval 1 committed (~0.32) and with interval 2 still
        # staging — the crash interrupts a live checkpoint window
        crash_hnp_at(universe, 0.46)
        final = settle_lineage(universe, job)
        assert final.state.value == "finished"
        assert universe.failovers == 1
        assert_committed_consistent(universe)
        (span,) = filter_spans(
            universe.kernel.tracer.to_dict(), name="hnp.failover"
        )
        assert span["attrs"]["lost"] == 0

    def test_hnp_crash_mid_stage(self):
        """The crash lands while an interval is in the staging
        pipeline: committed intervals are adopted without re-shipping
        and the in-flight one is restaged or failed durably."""
        universe = failover_universe(obs_trace_enabled="1")
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        spec = CampaignSpec(
            mtbf_s=0.3,
            max_failures=1,
            start_at=0.3,
            faults=(FaultSpec(kind=FAULT_HNP_CRASH),),
        )
        report = run_campaign(universe, job, spec)
        assert report.completed, report.to_dict()
        assert report.fault_counts == {"hnp_crash": 1}
        assert universe.failovers == 1
        checked = assert_committed_consistent(universe)
        assert checked >= 1
        (span,) = filter_spans(
            universe.kernel.tracer.to_dict(), name="hnp.failover"
        )
        # the crash interrupted live staging: settled intervals were
        # adopted, and the in-flight interval was accounted for —
        # restaged, or durably failed (its source died with the node),
        # never silently dropped
        assert span["attrs"]["committed_adopted"] >= 1
        assert span["attrs"]["restaged"] + span["attrs"]["lost"] >= 1

    def test_hnp_crash_mid_recovery(self):
        """A compute node dies, and the HNP dies while recovering from
        it: the successor resumes the unsettled episode from the
        persisted error-manager state."""
        universe = failover_universe(obs_trace_enabled="1")
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        failures = universe.cluster.failures
        universe.kernel.call_at(
            0.4, lambda: failures.crash_node_now("node03")
        )
        # detection fires immediately (interval 1 is committed by 0.4);
        # the restart is still in flight when the control plane dies
        crash_hnp_at(universe, 0.43)
        final = settle_lineage(universe, job)
        assert final.state.value == "finished"
        assert final.jobid != job.jobid  # the lineage really restarted
        assert universe.failovers == 1
        assert_committed_consistent(universe)
        new_errmgr = universe.hnp.errmgr
        assert any(r.recovered for r in new_errmgr.recovery_log)

    def test_orphaned_rank_failure_hands_off(self):
        """The HNP's node also hosts rank 0: its failure notification
        arrives while no HNP is alive and must be buffered for the
        successor, not silently dropped (the errmgr.py:158 fix)."""
        universe = failover_universe(obs_trace_enabled="1")
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        crash_hnp_at(universe, 0.35)
        final = settle_lineage(universe, job)
        assert final.state.value == "finished"
        (span,) = filter_spans(
            universe.kernel.tracer.to_dict(), name="hnp.failover"
        )
        assert span["attrs"]["orphaned"] >= 1
        # the handed-off failure drove a real recovery
        assert final.jobid != job.jobid

    def test_admission_tokens_reclaimed_across_failover(self):
        """With a one-token universe gate, the token an in-flight
        transfer held when the HNP died must return to the pool — the
        gate object itself survives on the universe."""
        universe = failover_universe(snapc_stage_admission_tokens="1")
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        # building the stager installs the universe-wide gate
        gate = universe.hnp.snapc.stager(universe.hnp).admission
        assert universe.staging_admission is gate
        assert gate.tokens == 1
        crash_hnp_at(universe, 0.35)
        final = settle_lineage(universe, job)
        assert final.state.value == "finished"
        # same gate, alive across the failover, and nothing leaked
        assert universe.staging_admission is gate
        assert gate.holders() == []
        assert gate.waiting == 0
        stager = universe.hnp.snapc.stager(universe.hnp)
        assert stager.admission is gate
        assert_committed_consistent(universe)

    def test_restart_from_newest_committed_after_failover(self):
        """An explicit ompi-restart after a failover-laden run picks
        the newest COMMITTED interval and finishes."""
        universe = failover_universe()
        job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
        crash_hnp_at(universe, 0.35)
        final = settle_lineage(universe, job)
        assert final.state.value == "finished"
        assert_committed_consistent(universe)
        assert final.snapshots, "no committed snapshot to restart from"
        restarted = ompi_restart(universe, final.snapshots[-1])
        assert restarted.state.value == "finished"
        assert restarted.results == final.results


def test_hnp_crash_not_applicable_without_failover():
    """The campaign vocabulary accepts hnp_crash but never fires it
    when failover is off — the fault is legal only when an election
    could win."""
    universe = make_universe(
        4,
        {
            "orte_errmgr_autorecover": "1",
            "snapc_full_checkpoint_every": "0.15",
        },
    )
    job = ompi_run(universe, "churn", 4, args=CHURN, wait=False)
    spec = CampaignSpec(
        mtbf_s=0.2,
        max_failures=1,
        start_at=0.2,
        faults=(FaultSpec(kind=FAULT_HNP_CRASH),),
    )
    report = run_campaign(universe, job, spec)
    assert report.completed
    assert report.failures == []
    assert universe.failovers == 0


def test_unknown_fault_kind_still_rejected():
    with pytest.raises(ValueError):
        FaultSpec(kind="hnp_meltdown")
