"""In-simulation tests of the ob1 PML: protocols, wildcards, BTL
selection, pre-init buffering."""

import numpy as np

from repro.apps.registry import _APPS
from repro.mca.params import MCAParams
from repro.tools.api import ompi_run
from tests.conftest import make_universe


def define_app(name, fn):
    """Register (or replace) a test application."""
    _APPS[name] = fn
    return name


class TestEagerAndRendezvous:
    def test_small_message_uses_eager(self):
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(b"x" * 100, 1, 1)
            else:
                payload, status = yield from ctx.recv(0, 1)
                assert status.nbytes == 100
                return len(payload)

        define_app("t_eager", main)
        job = ompi_run(universe, "t_eager", 2)
        assert job.results[1] == 100

    def test_large_message_uses_rendezvous(self):
        universe = make_universe(2)
        stats = {}

        def main(ctx):
            big = np.zeros(200_000, dtype=np.uint8)
            if ctx.rank == 0:
                yield from ctx.send(big, 1, 1)
                stats.update(ctx._runner.ompi.pml_base.stats)
            else:
                payload, status = yield from ctx.recv(0, 1)
                assert status.nbytes == 200_000
                return int(payload.sum())

        define_app("t_rndv", main)
        job = ompi_run(universe, "t_rndv", 2)
        assert job.results[1] == 0
        assert stats["rndv_sent"] == 1
        assert stats["eager_sent"] == 0

    def test_eager_limit_parameter(self):
        universe = make_universe(2)
        stats = {}

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(b"y" * 2000, 1, 1)
                stats.update(ctx._runner.ompi.pml_base.stats)
            else:
                yield from ctx.recv(0, 1)

        define_app("t_limit", main)
        ompi_run(universe, "t_limit", 2, params=MCAParams({"pml_ob1_eager_limit": "1000"}))
        assert stats["rndv_sent"] == 1

    def test_eager_payload_is_copied(self):
        """Sender buffer reuse after eager send must not corrupt the
        receiver's data (MPI semantics)."""
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                buf = np.arange(10)
                req = yield ctx.isend(buf, 1, 1)
                yield ctx.wait(req)
                buf[:] = -1  # reuse after completion
                yield from ctx.barrier()
            else:
                yield from ctx.barrier()
                payload, _ = yield from ctx.recv(0, 1)
                return payload.tolist()

        define_app("t_copy", main)
        job = ompi_run(universe, "t_copy", 2)
        assert job.results[1] == list(range(10))


class TestWildcardsAndProbe:
    def test_any_source(self):
        universe = make_universe(4)

        def main(ctx):
            if ctx.rank == 0:
                sources = []
                for _ in range(3):
                    _payload, status = yield from ctx.recv(ctx.ANY_SOURCE, 5)
                    sources.append(status.source)
                return sorted(sources)
            yield ctx.compute(seconds=0.001 * ctx.rank)
            yield from ctx.send(ctx.rank, 0, 5)

        define_app("t_anysrc", main)
        job = ompi_run(universe, "t_anysrc", 4)
        assert job.results[0] == [1, 2, 3]

    def test_any_tag_preserves_order(self):
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                for tag in (3, 7, 5):
                    yield from ctx.send(tag, 1, tag)
            else:
                got = []
                for _ in range(3):
                    payload, status = yield from ctx.recv(0, ctx.ANY_TAG)
                    got.append((payload, status.tag))
                return got

        define_app("t_anytag", main)
        job = ompi_run(universe, "t_anytag", 2)
        assert job.results[1] == [(3, 3), (7, 7), (5, 5)]

    def test_iprobe(self):
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send("hello", 1, 9)
                yield from ctx.barrier()
            else:
                yield from ctx.barrier()  # ensures the message arrived
                status = yield ctx.iprobe(0, 9)
                missing = yield ctx.iprobe(0, 10)
                payload, _ = yield from ctx.recv(0, 9)
                return (status is not None, missing is None, payload)

        define_app("t_iprobe", main)
        job = ompi_run(universe, "t_iprobe", 2)
        assert job.results[1] == (True, True, "hello")

    def test_test_op(self):
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                yield ctx.compute(seconds=0.01)
                yield from ctx.send(1, 1, 2)
            else:
                req = yield ctx.irecv(0, 2)
                done_early, _ = yield ctx.test(req)
                while True:
                    done, result = yield ctx.test(req)
                    if done:
                        return (done_early, result[0])
                    yield ctx.compute(seconds=0.002)

        define_app("t_test", main)
        job = ompi_run(universe, "t_test", 2)
        assert job.results[1] == (False, 1)


class TestValidation:
    def test_bad_destination_rank(self):
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 5, 0)  # rank 5 does not exist

        define_app("t_badrank", main)
        job = ompi_run(universe, "t_badrank", 2)
        assert job.state.value == "failed"

    def test_reserved_tag_rejected(self):
        universe = make_universe(2)

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 1, 2**29 + 5)

        define_app("t_badtag", main)
        job = ompi_run(universe, "t_badtag", 2)
        assert job.state.value == "failed"


class TestBTLSelection:
    def _stats_app(self, record):
        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(b"z" * 100, 1, 1)
                for btl in ctx._runner.ompi.btls:
                    record[btl.name] = btl.sent_msgs
            else:
                yield from ctx.recv(0, 1)

        return main

    def test_ib_preferred_between_nodes(self):
        universe = make_universe(2)
        record = {}
        define_app("t_btl1", self._stats_app(record))
        ompi_run(universe, "t_btl1", 2)
        assert record["ib"] >= 1
        assert record.get("sm", 0) == 0

    def test_tcp_when_ib_disabled(self):
        universe = make_universe(2)
        record = {}
        define_app("t_btl2", self._stats_app(record))
        ompi_run(universe, "t_btl2", 2, params=MCAParams({"btl_ib_disable": "1"}))
        assert "ib" not in record
        assert record["tcp"] >= 1

    def test_sm_for_same_node(self):
        universe = make_universe(1)  # both ranks on the single node
        record = {}
        define_app("t_btl3", self._stats_app(record))
        ompi_run(universe, "t_btl3", 2)
        assert record["sm"] >= 1

    def test_btl_include_list(self):
        universe = make_universe(2)
        record = {}
        define_app("t_btl4", self._stats_app(record))
        ompi_run(universe, "t_btl4", 2, params=MCAParams({"btl": "tcp"}))
        assert set(record) == {"tcp"}


class TestPreInitBuffering:
    def test_fast_sender_does_not_lose_messages(self):
        """A rank can leave MPI_INIT and send while peers are still
        initializing; traffic must be buffered, not dropped."""
        universe = make_universe(4)

        def main(ctx):
            if ctx.rank == 0:
                for peer in range(1, ctx.size):
                    yield from ctx.send(peer * 11, peer, 4)
            else:
                payload, _ = yield from ctx.recv(0, 4)
                return payload

        define_app("t_preinit", main)
        job = ompi_run(universe, "t_preinit", 4)
        assert [job.results[r] for r in (1, 2, 3)] == [11, 22, 33]
