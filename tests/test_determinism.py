"""Same-seed determinism regression for the fast-path kernel work.

Runs an E9-style fault-injection campaign (periodic checkpoints,
autorecovery, MTBF-driven node crashes) twice from identical seeds and
asserts the two runs are indistinguishable: identical kernel event
sequences, identical final clocks, identical campaign reports.

Parametrized over both scheduling disciplines, so the test guards the
old API surface (heap-only resumes, watcher-thread ``first_of``/
``join_all`` over Delay/WaitEvent) *and* the new one (ready deque,
native WaitAny/WaitAll, batched transfers).
"""

from __future__ import annotations

import pytest

from repro.simenv import CampaignSpec, FaultSpec, run_campaign
from repro.tools.api import ompi_run
from tests.conftest import make_universe

CHURN = {"loops": 150, "compute_s": 0.01, "state_bytes": 1 << 20}
N_NODES = 6
NP = 4


def _campaign_run(fast_paths: bool) -> tuple[list, float, dict]:
    universe = make_universe(
        N_NODES,
        {
            "orte_errmgr_autorecover": "1",
            "snapc_full_checkpoint_every": "0.15",
        },
        fast_paths=fast_paths,
    )
    kernel = universe.kernel
    events: list = []
    kernel.trace = lambda t, name, ev: events.append((round(t, 12), name, ev))
    job = ompi_run(universe, "churn", NP, args=CHURN, wait=False)
    spec = CampaignSpec(mtbf_s=0.3, max_failures=1, start_at=0.3)
    report = run_campaign(universe, job, spec)
    return events, kernel.now, report.to_dict()


@pytest.mark.parametrize("fast_paths", [True, False], ids=["fast", "legacy"])
def test_same_seed_campaign_runs_identically(fast_paths):
    events_a, clock_a, report_a = _campaign_run(fast_paths)
    events_b, clock_b, report_b = _campaign_run(fast_paths)

    assert report_a["completed"], report_a
    assert report_a["restarts"] >= 1
    # the campaign exercised real work: thousands of kernel events
    assert len(events_a) > 100

    assert clock_a == clock_b
    assert events_a == events_b
    assert report_a == report_b


def test_fast_and_legacy_agree_on_outcome():
    """The two disciplines schedule differently but must agree on what
    happened: same failures, same restarts, same completion."""
    _, _, fast = _campaign_run(True)
    _, _, legacy = _campaign_run(False)
    for key in ("completed", "restarts", "failures", "final_state"):
        assert fast[key] == legacy[key], key


def _mixed_fault_run() -> tuple[list, float, dict]:
    """An adaptive-cadence run under the full fault vocabulary — every
    new RNG consumer (weighted fault draw, partition victim choice,
    persistent campaign stream) is in the replayed path."""
    universe = make_universe(
        N_NODES,
        {
            "orte_errmgr_autorecover": "1",
            "snapc_full_checkpoint_every": "0.15",
            "snapc_sched_adaptive": "1",
        },
    )
    kernel = universe.kernel
    events: list = []
    kernel.trace = lambda t, name, ev: events.append((round(t, 12), name, ev))
    job = ompi_run(universe, "churn", NP, args=CHURN, wait=False)
    spec = CampaignSpec(
        mtbf_s=0.25,
        max_failures=3,
        start_at=0.3,
        faults=(
            FaultSpec("node_crash", weight=2.0),
            FaultSpec("stable_write_fail", duration_s=0.1),
            FaultSpec("stable_slow", duration_s=0.15, factor=6.0),
            FaultSpec("net_partition", duration_s=0.1),
            FaultSpec("meta_corrupt"),
        ),
    )
    report = run_campaign(universe, job, spec)
    return events, kernel.now, report.to_dict()


def test_same_seed_mixed_fault_campaign_runs_identically():
    """Persistent RNG streams stay deterministic: the stream is seeded
    by (cluster seed, stream name) and advanced only by draws, so a
    same-seed replay of a hostile mixed-fault campaign is bitwise
    identical — while its inter-arrivals are NOT a fixed-period clock."""
    events_a, clock_a, report_a = _mixed_fault_run()
    events_b, clock_b, report_b = _mixed_fault_run()

    assert report_a["completed"], report_a
    assert len(report_a["failures"]) == 3
    fire_times = [f["at"] for f in report_a["failures"]]
    deltas = [b - a for a, b in zip(fire_times, fire_times[1:])]
    assert len(set(round(d, 12) for d in deltas)) == len(deltas), deltas

    assert clock_a == clock_b
    assert events_a == events_b
    assert report_a == report_b


def _failover_campaign_run() -> tuple[list, float, dict, int]:
    """An HNP-crash campaign under the durable control plane — the
    election, store replay, and rehydration paths are all replayed."""
    universe = make_universe(
        N_NODES,
        {
            "orte_errmgr_autorecover": "1",
            "orte_hnp_failover": "1",
            "snapc_full_checkpoint_every": "0.15",
        },
    )
    kernel = universe.kernel
    events: list = []
    kernel.trace = lambda t, name, ev: events.append((round(t, 12), name, ev))
    job = ompi_run(universe, "churn", NP, args=CHURN, wait=False)
    spec = CampaignSpec(
        mtbf_s=0.3,
        max_failures=1,
        start_at=0.3,
        faults=(FaultSpec("hnp_crash"),),
    )
    report = run_campaign(universe, job, spec)
    return events, kernel.now, report.to_dict(), universe.failovers


def test_same_seed_failover_campaign_runs_identically():
    """HNP failover is deterministic end to end: same seed, same crash
    instant, same election winner, same rehydration — two runs are
    bitwise identical down to the kernel event sequence."""
    events_a, clock_a, report_a, failovers_a = _failover_campaign_run()
    events_b, clock_b, report_b, failovers_b = _failover_campaign_run()

    assert report_a["completed"], report_a
    assert failovers_a == 1
    assert len(events_a) > 100

    assert clock_a == clock_b
    assert events_a == events_b
    assert report_a == report_b
    assert failovers_a == failovers_b


def test_fleet_parallel_run_is_byte_identical_to_serial():
    """Sharding a fleet grid across worker processes must not change a
    single simulation outcome: per-cell seeds are a pure function of
    the fleet seed and grid coordinates, and cells share nothing, so
    the per-cell campaign reports of an N-worker run serialize to the
    exact same JSON as a serial run of the same spec."""
    import json

    from repro.fleet import FleetRunner
    from repro.fleet.presets import demo_fleet

    spec = demo_fleet()
    quiet = lambda line: None  # noqa: E731
    serial = FleetRunner(spec, progress=quiet).run(workers=1)
    parallel = FleetRunner(spec, progress=quiet).run(workers=2)

    assert [c.key for c in serial.cells] == [c.key for c in parallel.cells]
    blob_serial = json.dumps(serial.reports_by_key(), sort_keys=True)
    blob_parallel = json.dumps(parallel.reports_by_key(), sort_keys=True)
    assert blob_serial == blob_parallel
    assert (
        serial.kernel_stats()["events"] == parallel.kernel_stats()["events"]
    )
