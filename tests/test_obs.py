"""Tests for the observability layer (repro.obs).

Unit-level: the recorder's disabled fast path, span timing against the
DES clock, the report helpers, and the JSON round-trip.  Integration:
a traced end-to-end checkpoint must produce spans from every framework
the paper's Figure 2 walks through (SNAPC, CRCP, CRS, FILEM, INC).
"""

from repro.obs import (
    NULL_SPAN,
    TraceRecorder,
    filter_spans,
    load_json,
    phase_rows,
    render_phase_report,
    summarize,
)
from repro.simenv.kernel import Delay
from repro.tools.api import ompi_checkpoint, ompi_run
from tests.conftest import make_universe, run_gen


class TestRecorder:
    def test_disabled_by_default(self, kernel):
        tracer = TraceRecorder(kernel)
        assert not tracer.enabled
        span = tracer.begin("crcp.drain", rank=0)
        assert span is NULL_SPAN
        span.end(drained=3)  # no-op, must not raise
        tracer.count("crcp.drained_msgs", 5)
        out = tracer.to_dict()
        assert out["spans"] == []
        assert out["counters"] == {}

    def test_universe_default_is_disabled(self):
        universe = make_universe(2)
        assert not universe.kernel.tracer.enabled

    def test_span_measures_sim_time(self, kernel):
        tracer = TraceRecorder(kernel, enabled=True)

        def main():
            span = tracer.begin("crs.write", fs="central")
            yield Delay(0.25)
            span.end(bytes=100)
            return None

        run_gen(kernel, main())
        (span,) = tracer.to_dict()["spans"]
        assert span["name"] == "crs.write"
        assert span["cat"] == "crs"
        assert span["dur"] == 0.25
        assert span["attrs"] == {"fs": "central", "bytes": 100}
        assert span["wall"] >= 0.0

    def test_end_is_idempotent(self, kernel):
        tracer = TraceRecorder(kernel, enabled=True)
        span = tracer.begin("snapc.fanout")
        span.end(nodes=2)
        span.end(nodes=99)  # ignored
        (out,) = tracer.to_dict()["spans"]
        assert out["attrs"] == {"nodes": 2}

    def test_counters_accumulate(self, kernel):
        tracer = TraceRecorder(kernel, enabled=True)
        tracer.count("crcp.drained_msgs", 2)
        tracer.count("crcp.drained_msgs")
        assert tracer.to_dict()["counters"] == {"crcp.drained_msgs": 3}

    def test_clear_resets(self, kernel):
        tracer = TraceRecorder(kernel, enabled=True)
        tracer.begin("crcp.drain").end()
        tracer.count("x")
        tracer.clear()
        out = tracer.to_dict()
        assert out["spans"] == [] and out["counters"] == {}

    def test_json_round_trip(self, kernel, tmp_path):
        tracer = TraceRecorder(kernel, enabled=True)
        tracer.begin("filem.transfer", node="node01").end(bytes=42)
        path = tmp_path / "trace.json"
        tracer.write_json(str(path))
        loaded = load_json(str(path))
        assert loaded == tracer.to_dict()


class TestReport:
    def _trace(self, kernel):
        tracer = TraceRecorder(kernel, enabled=True)
        tracer.begin("crcp.drain", rank=0).end()
        tracer.begin("crcp.drain", rank=1).end()
        tracer.begin("crs.write", fs="central").end()
        tracer.count("crcp.drained_msgs", 7)
        return tracer.to_dict()

    def test_summarize_groups_by_name(self, kernel):
        summary = summarize(self._trace(kernel))
        assert summary["crcp.drain"]["count"] == 2
        assert summary["crs.write"]["count"] == 1

    def test_filter_spans_by_attr(self, kernel):
        spans = filter_spans(self._trace(kernel), name="crcp.drain", rank=1)
        assert len(spans) == 1
        assert spans[0]["attrs"]["rank"] == 1

    def test_phase_rows_zero_fill(self, kernel):
        rows = phase_rows(self._trace(kernel), ["crcp.drain", "crcp.quiesce"])
        as_dict = {phase: count for phase, count, _, _ in rows}
        assert as_dict == {"crcp.drain": 2, "crcp.quiesce": 0}

    def test_render_phase_report(self, kernel):
        text = render_phase_report(self._trace(kernel), title="demo")
        assert "demo" in text
        assert "crcp.drain" in text
        assert "crcp.drained_msgs" in text


class TestTracedCheckpoint:
    def test_full_checkpoint_emits_all_framework_spans(self):
        universe = make_universe(
            2, params={"obs_trace_enabled": "1", "filem": "rsh"}
        )
        assert universe.kernel.tracer.enabled
        job = ompi_run(
            universe,
            "jacobi",
            2,
            args={"n_global": 64, "iters": 4000},
            wait=False,
        )
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        assert handle.result()["ok"] is True
        trace = universe.kernel.tracer.to_dict()
        names = {span["name"] for span in trace["spans"]}
        # Figure 2's descent, as data: every framework leaves spans.
        for expected in (
            "snapc.checkpoint",
            "snapc.fanout",
            "snapc.local",
            "snapc.meta",
            "crcp.coordinate",
            "crcp.bookmark",
            "crcp.drain",
            "crcp.quiesce",
            "crs.capture",
            "crs.serialize",
            "crs.write",
            "filem.stage_out",
            "filem.transfer",
        ):
            assert expected in names, f"missing span {expected!r}"
        assert any(name.startswith("inc.") for name in names)
        # Staging runs a stage-out, not a bare gather: the transfers it
        # issues are labelled with the stage_out op and the old
        # "filem.gather" wrapper never appears on this path.
        assert "filem.gather" not in names
        stage_out = filter_spans(trace, name="filem.stage_out")
        assert stage_out and all(s["attrs"]["entries"] >= 1 for s in stage_out)
        transfers = filter_spans(trace, name="filem.transfer")
        assert transfers
        assert {s["attrs"]["op"] for s in transfers} == {"stage_out"}
        # One coordination span per rank, tagged with the epoch.
        coords = filter_spans(trace, name="crcp.coordinate")
        assert len(coords) == 2
        assert {span["attrs"]["rank"] for span in coords} == {0, 1}
        assert all(span["attrs"]["epoch"] == 1 for span in coords)
        # Spans are closed: every recorded span has an end time.
        assert all(span["t1"] >= span["t0"] for span in trace["spans"])

    def test_inc_spans_nest_by_layer(self):
        universe = make_universe(2, params={"obs_trace_enabled": "1"})
        job = ompi_run(
            universe,
            "jacobi",
            2,
            args={"n_global": 64, "iters": 4000},
            wait=False,
        )
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        assert handle.result()["ok"] is True
        trace = universe.kernel.tracer.to_dict()
        ckpt = [
            span
            for span in trace["spans"]
            if span["cat"] == "inc" and span["attrs"].get("state") == "CHECKPOINT"
        ]
        # Each rank ran one CHECKPOINT descent over the stack; outer
        # layers fully enclose inner ones (inclusive timing).
        by_owner: dict[str, list[dict]] = {}
        for span in ckpt:
            by_owner.setdefault(span["attrs"]["owner"], []).append(span)
        assert len(by_owner) == 2
        for spans in by_owner.values():
            # Higher depth = outer layer (the stack is registered
            # bottom-up); sort outermost first.
            spans.sort(key=lambda span: -span["attrs"]["depth"])
            names = [span["name"] for span in spans]
            assert names[-3:] == ["inc.ompi", "inc.orte", "inc.opal"]
            for outer, inner in zip(spans, spans[1:]):
                assert outer["t0"] <= inner["t0"]
                assert outer["t1"] >= inner["t1"]
                assert outer["dur"] >= inner["dur"]
