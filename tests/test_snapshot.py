"""Unit tests for snapshot references and metadata (paper section 4)."""

import pytest

from repro.snapshot import (
    GlobalSnapshotMeta,
    GlobalSnapshotRef,
    LocalSnapshotMeta,
    LocalSnapshotRef,
    global_snapshot_dirname,
    read_global_meta,
    read_local_meta,
    write_global_meta,
    write_local_meta,
)
from repro.util.errors import SnapshotError
from repro.vfs.fsbase import FS
from tests.conftest import run_gen


def _local_meta(**overrides) -> LocalSnapshotMeta:
    base = dict(
        rank=3,
        jobid=1,
        crs_component="simcr",
        origin_node="node02",
        os_tag="linux-x86_64",
        interval=2,
        sim_time=1.25,
    )
    base.update(overrides)
    return LocalSnapshotMeta(**base)


class TestLocalMeta:
    def test_json_roundtrip(self):
        meta = _local_meta(app_params={"opt": "1"}, files=["image.pkl"])
        clone = LocalSnapshotMeta.from_json(meta.to_json())
        assert clone == meta

    def test_bad_json_raises(self):
        with pytest.raises(SnapshotError):
            LocalSnapshotMeta.from_json(b"not json")
        with pytest.raises(SnapshotError):
            LocalSnapshotMeta.from_json(b'{"rank": 1}')

    def test_ref_paths(self):
        ref = LocalSnapshotRef(fs_name="local:node00", path="/ckpt/r0")
        assert ref.meta_path == "/ckpt/r0/metadata.json"
        assert ref.image_path == "/ckpt/r0/image.pkl"


class TestGlobalMeta:
    def test_json_roundtrip_with_int_rank_keys(self):
        meta = GlobalSnapshotMeta(
            jobid=4,
            interval=1,
            n_procs=2,
            sim_time=0.5,
            app_name="jacobi",
            app_args={"iters": 10},
            mca_params={"crs": "simcr"},
            locals={
                0: {"path": "/s/rank0", "node": "node00", "crs": "simcr",
                    "os_tag": "linux-x86_64", "portable": True, "last_rank": 0},
                1: {"path": "/s/rank1", "node": "node01", "crs": "simcr",
                    "os_tag": "linux-x86_64", "portable": True, "last_rank": 1},
            },
        )
        clone = GlobalSnapshotMeta.from_json(meta.to_json())
        assert clone == meta
        assert set(clone.locals) == {0, 1}  # keys back to ints

    def test_dirname_has_job_and_interval(self):
        assert global_snapshot_dirname(7, 3) == "ompi_global_snapshot_7.3"

    def test_ref_local_dirs(self):
        ref = GlobalSnapshotRef("/snapshots/g")
        assert ref.local_dir(2) == "/snapshots/g/rank2"
        assert ref.meta_path == "/snapshots/g/metadata.json"


class TestTimedIO:
    def test_local_meta_fs_roundtrip(self, kernel):
        fs = FS(kernel, "t")
        ref = LocalSnapshotRef(fs_name="t", path="/snap")
        meta = _local_meta()

        def main():
            yield from write_local_meta(fs, ref, meta)
            loaded = yield from read_local_meta(fs, ref)
            return loaded

        assert run_gen(kernel, main()) == meta

    def test_global_meta_fs_roundtrip(self, kernel):
        fs = FS(kernel, "t")
        ref = GlobalSnapshotRef("/snapshots/g")
        meta = GlobalSnapshotMeta(
            jobid=1, interval=1, n_procs=1, sim_time=0.0, app_name="ring"
        )

        def main():
            yield from write_global_meta(fs, ref, meta)
            loaded = yield from read_global_meta(fs, ref)
            return loaded

        assert run_gen(kernel, main()) == meta

    def test_read_missing_global_snapshot(self, kernel):
        fs = FS(kernel, "t")

        def main():
            yield from read_global_meta(fs, GlobalSnapshotRef("/nope"))

        with pytest.raises(SnapshotError):
            run_gen(kernel, main())
