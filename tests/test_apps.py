"""Tests of the shipped workloads and the application kit."""

import pytest

from repro.apps.registry import get_app, has_app, registered_apps
from repro.tools.api import ompi_run
from repro.util.errors import RestartError
from tests.conftest import make_universe
from tests.test_pml import define_app


class TestRegistry:
    def test_shipped_apps_registered(self):
        for name in ("ring", "pi", "jacobi", "master_worker", "netpipe"):
            assert has_app(name)
            assert name in registered_apps()

    def test_unknown_app_raises(self):
        with pytest.raises(RestartError):
            get_app("no-such-app")


class TestRing:
    @pytest.mark.parametrize("np_procs", [1, 2, 4, 7])
    def test_token_makes_laps(self, np_procs):
        universe = make_universe(4)
        job = ompi_run(universe, "ring", np_procs, args={"laps": 2})
        assert job.state.value == "finished"
        if np_procs > 1:
            assert all(
                job.results[r]["hops"] == 2 * np_procs for r in range(np_procs)
            )

    def test_payload_size_respected(self):
        universe = make_universe(2)
        job = ompi_run(universe, "ring", 2, args={"laps": 1, "payload_bytes": 4096})
        assert job.state.value == "finished"


class TestPi:
    def test_estimate_converges(self):
        universe = make_universe(4)
        job = ompi_run(universe, "pi", 4, args={"samples_per_rank": 20000})
        estimate = job.results[0]["pi"]
        assert abs(estimate - 3.14159) < 0.05

    def test_all_ranks_agree(self):
        universe = make_universe(4)
        job = ompi_run(universe, "pi", 3, args={"samples_per_rank": 3000})
        values = {r["pi"] for r in job.results.values()}
        assert len(values) == 1

    def test_deterministic_across_universes(self):
        results = []
        for _ in range(2):
            universe = make_universe(4)
            job = ompi_run(universe, "pi", 4, args={"samples_per_rank": 5000})
            results.append(job.results[0]["pi"])
        assert results[0] == results[1]


class TestJacobi:
    def test_residual_decreases(self):
        universe = make_universe(4)
        short = ompi_run(universe, "jacobi", 4, args={"n_global": 128, "iters": 10})
        long = ompi_run(universe, "jacobi", 4, args={"n_global": 128, "iters": 200})
        assert long.results[0]["residual"] < short.results[0]["residual"]

    def test_checksum_independent_of_np(self):
        sums = []
        for np_procs in (1, 2, 4):
            universe = make_universe(4)
            job = ompi_run(
                universe, "jacobi", np_procs, args={"n_global": 64, "iters": 50}
            )
            sums.append(round(job.results[0]["checksum"], 9))
        assert len(set(sums)) == 1

    def test_early_stop_on_tolerance(self):
        universe = make_universe(2)
        job = ompi_run(
            universe,
            "jacobi",
            2,
            args={"n_global": 64, "iters": 100000, "tol": 1e-3},
        )
        assert job.results[0]["iters"] < 100000


class TestMasterWorker:
    @pytest.mark.parametrize("np_procs", [1, 2, 4])
    def test_all_tasks_done(self, np_procs):
        universe = make_universe(4)
        job = ompi_run(universe, "master_worker", np_procs, args={"n_tasks": 12})
        assert job.results[0]["tasks_done"] == 12
        assert job.results[0]["total"] == sum(t * t for t in range(12))

    def test_work_spread_across_workers(self):
        universe = make_universe(4)
        job = ompi_run(
            universe,
            "master_worker",
            4,
            args={"n_tasks": 30, "task_seconds": 1e-3},
        )
        worker_counts = [job.results[r]["tasks_done"] for r in (1, 2, 3)]
        assert sum(worker_counts) == 30
        assert all(count > 0 for count in worker_counts)


class TestNetpipe:
    def test_latency_increases_with_size(self):
        universe = make_universe(2)
        job = ompi_run(
            universe,
            "netpipe",
            2,
            args={"sizes": [64, 65536, 1 << 20], "reps_per_size": 3},
        )
        series = job.results[0]["series"]
        latencies = [lat for _size, lat, _bw in series]
        assert latencies == sorted(latencies)

    def test_bandwidth_approaches_link_rate(self):
        universe = make_universe(2)
        job = ompi_run(
            universe, "netpipe", 2, args={"sizes": [1 << 22], "reps_per_size": 2}
        )
        _size, _lat, bandwidth = job.results[0]["series"][0]
        ib_rate = universe.cluster.fabric("ib").model.bandwidth_Bps
        assert bandwidth > 0.4 * ib_rate

    def test_needs_two_ranks(self):
        universe = make_universe(2)
        job = ompi_run(universe, "netpipe", 1)
        assert job.state.value == "failed"


class TestAppContext:
    def test_rng_keyed_by_app_and_rank(self):
        def main(ctx):
            yield ctx.compute(seconds=0.0)
            return ctx.rng.uniform()

        define_app("t_rng", main)
        universe = make_universe(2)
        job = ompi_run(universe, "t_rng", 2)
        assert job.results[0] != job.results[1]
        universe2 = make_universe(2)
        job2 = ompi_run(universe2, "t_rng", 2)
        assert job2.results[0] == job.results[0]

    def test_sendrecv(self):
        def main(ctx):
            partner = (ctx.rank + 1) % ctx.size
            got, status = yield from ctx.sendrecv(ctx.rank, partner, src=ctx.ANY_SOURCE)
            return (got, status.source)

        define_app("t_sendrecv", main)
        universe = make_universe(2)
        job = ompi_run(universe, "t_sendrecv", 2)
        assert job.results[0] == (1, 1)
        assert job.results[1] == (0, 0)

    def test_now_monotonic(self):
        def main(ctx):
            t1 = yield ctx.now()
            yield ctx.compute(seconds=0.01)
            t2 = yield ctx.now()
            return t2 - t1

        define_app("t_now", main)
        universe = make_universe(1)
        job = ompi_run(universe, "t_now", 1)
        assert job.results[0] == pytest.approx(0.01)

    def test_compute_work_units_scale_with_cpu(self):
        def main(ctx):
            t1 = yield ctx.now()
            yield ctx.compute(work=4.0)  # 4 Gcycles
            t2 = yield ctx.now()
            return t2 - t1

        define_app("t_work", main)
        universe = make_universe(1, cpu_ghz=2.0)
        job = ompi_run(universe, "t_work", 1)
        assert job.results[0] == pytest.approx(2.0)

    def test_app_exception_fails_job(self):
        def main(ctx):
            yield ctx.compute(seconds=0.001)
            raise RuntimeError("app bug")

        define_app("t_crash", main)
        universe = make_universe(2)
        job = ompi_run(universe, "t_crash", 2)
        assert job.state.value == "failed"
