"""Tests for the process-migration extension (paper section 8) and for
checkpoints landing inside collectives."""

import pytest

from repro.tools.api import ompi_checkpoint, ompi_migrate, ompi_restart, ompi_run
from tests.conftest import make_universe
from tests.test_pml import define_app

JARGS = {"n_global": 256, "iters": 30000}


class TestMigration:
    def test_migrate_preserves_results(self):
        base = ompi_run(make_universe(4), "jacobi", 4, args=JARGS).results
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args=JARGS, wait=False)
        migrated = ompi_migrate(
            universe,
            job.jobid,
            {0: "node03", 1: "node03", 2: "node03", 3: "node03"},
            at=0.08,
        )
        assert job.state.value == "halted"
        assert migrated.state.value == "finished"
        assert set(migrated.placements.values()) == {"node03"}
        assert migrated.results == base

    def test_partial_placement_keeps_other_ranks(self):
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args=JARGS, wait=False)
        migrated = ompi_migrate(universe, job.jobid, {2: "node00"}, at=0.08)
        assert migrated.placements[2] == "node00"
        assert migrated.placements[0] == "node00"  # origin preference
        assert migrated.placements[1] == "node01"

    def test_migrate_to_down_node_fails_cleanly(self):
        universe = make_universe(4)
        # np=2 leaves node03 unused, so its crash does not hurt the job.
        job = ompi_run(universe, "jacobi", 2, args=JARGS, wait=False)
        universe.cluster.failures.crash_node_at(0.05, "node03")
        handle = ompi_migrate(
            universe, job.jobid, {0: "node03"}, at=0.08, wait=False
        )
        universe.run_job_to_completion(job)
        reply = handle.wait()
        assert reply["ok"] is False
        assert "not up" in reply["error"]

    def test_migrate_unknown_job(self):
        universe = make_universe(2)
        handle = ompi_migrate(universe, 777, {}, wait=False)
        reply = handle.wait()
        assert reply["ok"] is False

    def test_nonportable_migration_gated(self):
        from repro.mca.params import MCAParams
        from repro.orte.universe import Universe
        from repro.simenv.cluster import Cluster, ClusterSpec

        spec = ClusterSpec(
            n_nodes=2, os_tags=["linux-x86_64", "bsd-ppc64"]
        )
        universe = Universe(
            Cluster(spec), MCAParams({"crs_simcr_portable": "0"})
        )
        job = ompi_run(
            universe,
            "churn",
            1,
            args={"loops": 60, "compute_s": 0.01},
            wait=False,
        )
        handle = ompi_migrate(
            universe, job.jobid, {0: "node01"}, at=0.08, wait=False
        )
        universe.run_job_to_completion(job)
        reply = handle.wait()
        assert reply["ok"] is False
        assert "portable" in reply["error"]


class TestCheckpointDuringCollectives:
    """Checkpoints landing inside multi-step collective algorithms —
    the case the paper's 'collectives layered over point-to-point'
    foundation makes checkpointable."""

    def _collective_loop_app(self):
        def main(ctx):
            import numpy as np

            value = np.full(64, float(ctx.rank))
            total = None
            for _step in range(400):
                total = yield from ctx.allreduce(value)
                gathered = yield from ctx.allgather(ctx.rank)
                assert gathered == list(range(ctx.size))
                yield ctx.compute(seconds=5e-4)
            return float(total.sum())

        return main

    def test_checkpoint_terminate_mid_collective_restart_exact(self):
        define_app("t_coll_ckpt", self._collective_loop_app())
        base_universe = make_universe(4)
        base = ompi_run(base_universe, "t_coll_ckpt", 4)
        assert base.state.value == "finished"

        universe = make_universe(4)
        job = ompi_run(universe, "t_coll_ckpt", 4, wait=False)
        handle = ompi_checkpoint(
            universe, job.jobid, at=0.15, terminate=True, wait=False
        )
        universe.run_job_to_completion(job)
        assert job.state.value == "halted", handle.reply
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        assert new_job.results == base.results

    def test_checkpoint_continue_mid_collective(self):
        define_app("t_coll_cont", self._collective_loop_app())
        base = ompi_run(make_universe(4), "t_coll_cont", 4).results
        universe = make_universe(4)
        job = ompi_run(universe, "t_coll_cont", 4, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.15, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"
        assert handle.result()["ok"], handle.result()
        assert job.results == base

    @pytest.mark.parametrize("at", [0.05, 0.09, 0.13])
    def test_checkpoint_at_various_phases(self, at):
        """Different request times land in different collective phases;
        all must restart exactly."""
        define_app("t_coll_phase", self._collective_loop_app())
        base = ompi_run(make_universe(4), "t_coll_phase", 4).results
        universe = make_universe(4)
        job = ompi_run(universe, "t_coll_phase", 4, wait=False)
        ompi_checkpoint(universe, job.jobid, at=at, terminate=True, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.results == base
