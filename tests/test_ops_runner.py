"""Tests for the op layer and the application runner's record-replay
semantics (the simcr process-image substitution, DESIGN.md decision 1)."""

import pytest

from repro.ompi import errors_map
from repro.ompi.ops import OpCompute
from repro.tools.api import ompi_restart, ompi_run
from repro.util.errors import (
    MPIError,
    NotCheckpointableError,
    ReproError,
)
from tests.conftest import make_universe
from tests.test_pml import define_app


class TestOpValidation:
    def test_compute_requires_exactly_one_arg(self):
        with pytest.raises(ValueError):
            OpCompute()
        with pytest.raises(ValueError):
            OpCompute(seconds=1, work=1)
        OpCompute(seconds=1)
        OpCompute(work=1)

    def test_wait_requires_integer_handle(self):
        from repro.ompi.ops import OpWait

        with pytest.raises(MPIError):
            OpWait("not-a-handle")

    def test_yielding_non_op_fails_job(self):
        def main(ctx):
            yield "garbage"

        define_app("t_non_op", main)
        job = ompi_run(make_universe(2), "t_non_op", 1)
        assert job.state.value == "failed"


class TestErrorsMap:
    def test_known_type_reconstructed(self):
        exc = errors_map.rebuild("MPIError", "boom")
        assert isinstance(exc, MPIError)
        assert str(exc) == "boom"

    def test_unknown_type_falls_back(self):
        exc = errors_map.rebuild("WeirdError", "x")
        assert isinstance(exc, ReproError)

    def test_exotic_constructor_falls_back(self):
        exc = errors_map.rebuild("NotCheckpointableError", "[1,0]")
        assert isinstance(exc, (NotCheckpointableError, ReproError))


class TestRecordReplay:
    def test_op_failures_replay_identically(self):
        """An application that catches an op error and continues must
        restart through the same error path."""
        universe = make_universe(2)

        def main(ctx):
            events = []
            yield ctx.compute(seconds=0.001)
            try:
                # Deliberate failure: checkpoint with crcp fine but a
                # bad destination rank raises inside the op.
                yield ctx.isend("x", 99, 1)
            except MPIError:
                events.append("caught")
            yield from ctx.barrier()
            if ctx.rank == 0:
                result = yield ctx.checkpoint(terminate=True)
                assert result.get("restarted")
            yield from ctx.barrier()
            events.append("done")
            return events

        define_app("t_err_replay", main)
        job = ompi_run(universe, "t_err_replay", 2, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.state.value == "finished"
        assert all(v == ["caught", "done"] for v in new_job.results.values())

    def test_now_is_replayed_not_reread(self):
        """Timestamps observed before a checkpoint replay exactly, even
        though the restarted process runs at a later simulated time."""
        universe = make_universe(2)

        def main(ctx):
            early = yield ctx.now()
            yield from ctx.barrier()
            if ctx.rank == 0:
                yield ctx.checkpoint(terminate=True)
            yield from ctx.barrier()
            late = yield ctx.now()
            return (early, late)

        define_app("t_now_replay", main)
        job = ompi_run(universe, "t_now_replay", 2, wait=False)
        universe.run_job_to_completion(job)

        new_job = ompi_restart(universe, job.snapshots[-1])
        for rank, (early, late) in new_job.results.items():
            # `early` predates the checkpoint; `late` postdates restart.
            assert early < 0.1
            assert late > early

    def test_rng_draws_identical_across_restart(self):
        universe = make_universe(2)

        def main(ctx):
            pre = ctx.rng.uniform()
            yield from ctx.barrier()
            if ctx.rank == 0:
                yield ctx.checkpoint(terminate=True)
            yield from ctx.barrier()
            post = ctx.rng.uniform()
            return (pre, post)

        define_app("t_rng_replay", main)
        job = ompi_run(universe, "t_rng_replay", 2, wait=False)
        universe.run_job_to_completion(job)
        new_job = ompi_restart(universe, job.snapshots[-1])
        # Same seed + same stream + same draw sequence = same values as
        # an undisturbed run.
        ompi_run(make_universe(2), "t_rng_replay", 2, wait=False)
        # (the undisturbed job halts too — compare against another
        # restarted run instead for exactness)
        universe2 = make_universe(2)
        job2 = ompi_run(universe2, "t_rng_replay", 2, wait=False)
        universe2.run_job_to_completion(job2)
        new_job2 = ompi_restart(universe2, job2.snapshots[-1])
        assert new_job.results == new_job2.results

    def test_log_suppressed_on_replay(self):
        """OpLog side effects do not repeat during replay (the log op's
        outcome is read from the record instead)."""
        import logging

        records = []
        handler = logging.Handler()
        handler.emit = lambda record: records.append(record.getMessage())
        logger = logging.getLogger("repro.ompi.ops")
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.INFO)
        try:
            universe = make_universe(2)

            def main(ctx):
                yield ctx.log("ONCE-ONLY")
                yield from ctx.barrier()
                if ctx.rank == 0:
                    yield ctx.checkpoint(terminate=True)
                yield from ctx.barrier()
                return "ok"

            define_app("t_log_replay", main)
            job = ompi_run(universe, "t_log_replay", 2, wait=False)
            universe.run_job_to_completion(job)
            before = sum("ONCE-ONLY" in m for m in records)
            new_job = ompi_restart(universe, job.snapshots[-1])
            after = sum("ONCE-ONLY" in m for m in records)
            assert new_job.state.value == "finished"
            assert before == 2  # one per rank, first life
            assert after == before  # replay emitted nothing new
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)


class TestLaunchFailure:
    def test_dead_node_at_launch_fails_job_and_kills_orphans(self):
        """Regression: a launch that dies half-way must not leave the
        already-created ranks waiting for INIT_GO forever."""
        universe = make_universe(4)
        job = ompi_run(universe, "jacobi", 4, args={"n_global": 128, "iters": 1000}, wait=False)
        universe.cluster.failures.crash_node_now("node03")
        universe.run_job_to_completion(job)
        assert job.state.value == "failed"
        # No live application processes remain.
        from repro.util.ids import ProcessName

        for rank in range(4):
            assert universe.lookup(ProcessName(job.jobid, rank)) is None
