"""Unit tests for the INC stack, ft_event protocol, and CRS components."""

import pytest

from repro.core.ft_event import FTState, drive_ft_event
from repro.core.inc import INCStack
from repro.mca.params import MCAParams
from repro.mca.registry import default_registry
from repro.opal.crs.none_crs import NoneCRS
from repro.opal.crs.self_cb import SELF_STATE_KEY, SelfCRS
from repro.opal.crs.simcr import SimCR
from repro.opal.layer import CheckpointRequest, OpalLayer
from repro.simenv.process import SimProcess
from repro.util.errors import CheckpointError, NotCheckpointableError
from repro.util.ids import ProcessName
from tests.conftest import run_gen


class TestINCStack:
    def test_stack_like_ordering(self, kernel):
        """Registration returns the previous INC; calls nest LIFO
        (paper section 5.5)."""
        stack = INCStack()
        order = []

        def make(name):
            def inc(state, down):
                order.append(f"{name}:pre")
                yield from down(state)
                order.append(f"{name}:post")

            return inc

        stack.register("opal", make("opal"))
        stack.register("orte", make("orte"))
        stack.register("ompi", make("ompi"))
        run_gen(kernel, stack.invoke(FTState.CHECKPOINT))
        assert order == [
            "ompi:pre",
            "orte:pre",
            "opal:pre",
            "opal:post",
            "orte:post",
            "ompi:post",
        ]

    def test_register_returns_previous(self, kernel):
        stack = INCStack()
        called = []

        def bottom(state, down):
            called.append("bottom")
            yield from down(state)

        stack.register("bottom", bottom)

        def top(state, down):
            called.append("top")
            # The new INC is responsible for calling the previous one.
            yield from down(state)

        down = stack.register("top", top)
        run_gen(kernel, down(FTState.CONTINUE))  # call just the old stack
        assert called == ["bottom"]

    def test_layers_listing(self):
        stack = INCStack()
        stack.register("a", lambda s, d: d(s))
        stack.register("b", lambda s, d: d(s))
        assert stack.layers == ["a", "b"]

    def test_trace_recording(self, kernel):
        stack = INCStack()
        stack.register("opal", lambda s, d: d(s))
        stack.record_trace = True
        run_gen(kernel, stack.invoke(FTState.RESTART))
        assert ("opal", "enter", FTState.RESTART) in stack.trace
        assert ("opal", "exit", FTState.RESTART) in stack.trace

    def test_empty_stack_invocable(self, kernel):
        assert run_gen(kernel, INCStack().invoke(FTState.CHECKPOINT)) is None


class TestDriveFtEvent:
    def test_plain_function(self, kernel):
        class Sub:
            def __init__(self):
                self.seen = []

            def ft_event(self, state):
                self.seen.append(state)
                return "plain"

        sub = Sub()
        assert run_gen(kernel, drive_ft_event(sub, FTState.CHECKPOINT)) == "plain"
        assert sub.seen == [FTState.CHECKPOINT]

    def test_generator_function(self, kernel):
        from repro.simenv.kernel import Delay

        class Sub:
            def ft_event(self, state):
                yield Delay(0.25)
                return "gen"

        assert run_gen(kernel, drive_ft_event(Sub(), FTState.CHECKPOINT)) == "gen"
        assert kernel.now == pytest.approx(0.25)

    def test_missing_ft_event_is_noop(self, kernel):
        assert run_gen(kernel, drive_ft_event(object(), FTState.HALT)) is None


def _opal_on(cluster, crs="simcr"):
    proc = SimProcess(cluster.nodes[0], ProcessName(1, 0), label="t")
    params = MCAParams({"crs": crs})
    return OpalLayer(proc, default_registry(), params), proc


class FakeContributor:
    def __init__(self, key, state):
        self.image_key = key
        self.state = state
        self.restored = None

    def capture_image_state(self, crs_name):
        return self.state

    def restore_image_state(self, state):
        self.restored = state


class TestOpalLayer:
    def test_crs_selection_defaults_to_simcr(self, cluster):
        opal, _ = _opal_on(cluster, crs="simcr")
        assert isinstance(opal.crs, SimCR)

    def test_enable_disable(self, cluster):
        opal, _ = _opal_on(cluster)
        assert not opal.checkpoint_enabled
        opal.enable_checkpoint()
        assert opal.checkpoint_enabled
        opal.disable_checkpoint()
        assert not opal.checkpoint_enabled

    def test_entry_point_requires_enabled(self, cluster):
        opal, _ = _opal_on(cluster)
        request = CheckpointRequest(1, cluster.stable_fs, "/snap/r0")

        def main():
            yield from opal.entry_point(request)

        with pytest.raises(NotCheckpointableError):
            run_gen(cluster.kernel, main())

    def test_entry_point_writes_local_snapshot(self, cluster):
        opal, proc = _opal_on(cluster)
        opal.register_contributor(FakeContributor("sub.a", {"x": 1}))
        opal.enable_checkpoint()
        request = CheckpointRequest(3, cluster.stable_fs, "/snap/r0")

        def main():
            ref, meta = yield from opal.entry_point(request)
            return ref, meta

        ref, meta = run_gen(cluster.kernel, main())
        assert cluster.stable_fs.exists(ref.image_path)
        assert cluster.stable_fs.exists(ref.meta_path)
        assert meta.interval == 3
        assert meta.crs_component == "simcr"
        assert meta.origin_node == proc.node.name

    def test_duplicate_contributor_rejected(self, cluster):
        opal, _ = _opal_on(cluster)
        opal.register_contributor(FakeContributor("k", 1))
        with pytest.raises(ValueError):
            opal.register_contributor(FakeContributor("k", 2))

    def test_restore_unknown_contributor_rejected(self, cluster):
        opal, _ = _opal_on(cluster)
        with pytest.raises(CheckpointError):
            opal.restore_contributors({"ghost": 1})

    def test_capture_restore_roundtrip(self, cluster):
        opal, _ = _opal_on(cluster)
        contributor = FakeContributor("sub.a", {"n": 42})
        opal.register_contributor(contributor)
        opal.enable_checkpoint()
        request = CheckpointRequest(1, cluster.stable_fs, "/snap/r1")

        def do_ckpt():
            ref, _ = yield from opal.entry_point(request)
            return ref

        ref = run_gen(cluster.kernel, do_ckpt())

        opal2, _ = _opal_on(cluster)
        target = FakeContributor("sub.a", None)
        opal2.register_contributor(target)

        def do_restore():
            meta, image = yield from opal2.crs.restart_extract(
                cluster.stable_fs, ref
            )
            opal2.crs.restore(opal2, image)
            return meta

        meta = run_gen(cluster.kernel, do_restore())
        assert target.restored == {"n": 42}
        assert meta.rank == 0


class TestCRSComponents:
    def test_none_declines(self, cluster):
        opal, _ = _opal_on(cluster, crs="none")
        assert isinstance(opal.crs, NoneCRS)
        assert not opal.crs.can_checkpoint(opal)
        with pytest.raises(CheckpointError):
            opal.crs.capture(opal, None)

    def test_self_requires_callback(self, cluster):
        opal, _ = _opal_on(cluster, crs="self")
        assert isinstance(opal.crs, SelfCRS)
        assert not opal.crs.can_checkpoint(opal)
        opal.self_callbacks["checkpoint"] = lambda: {"phase": 1}
        assert opal.crs.can_checkpoint(opal)

    def test_self_capture_includes_user_state(self, cluster):
        opal, _ = _opal_on(cluster, crs="self")
        opal.self_callbacks["checkpoint"] = lambda: {"phase": 7}
        request = CheckpointRequest(1, cluster.stable_fs, "/s")
        image = opal.crs.capture(opal, request)
        assert image[SELF_STATE_KEY] == {"phase": 7}

    def test_self_restore_stashes_state_and_restart_cb(self, cluster):
        opal, _ = _opal_on(cluster, crs="self")
        seen = []
        opal.self_callbacks["restart"] = lambda state: seen.append(state)
        opal.crs.restore(opal, {SELF_STATE_KEY: {"phase": 3}})
        opal.crs.ft_event(FTState.RESTART)
        assert seen == [{"phase": 3}]

    def test_self_continue_callback(self, cluster):
        opal, _ = _opal_on(cluster, crs="self")
        seen = []
        opal.self_callbacks["continue"] = lambda: seen.append("cont")
        opal.crs.ft_event(FTState.CONTINUE)
        assert seen == ["cont"]

    def test_simcr_restart_extract_wrong_component(self, cluster):
        from repro.util.errors import RestartError

        opal, _ = _opal_on(cluster, crs="simcr")
        opal.enable_checkpoint()
        request = CheckpointRequest(1, cluster.stable_fs, "/s2")

        def do_ckpt():
            ref, _ = yield from opal.entry_point(request)
            return ref

        ref = run_gen(cluster.kernel, do_ckpt())
        other = SelfCRS(MCAParams())

        def do_extract():
            yield from other.restart_extract(cluster.stable_fs, ref)

        with pytest.raises(RestartError):
            run_gen(cluster.kernel, do_extract())

    def test_unpicklable_image_rejected(self, cluster):
        opal, _ = _opal_on(cluster)
        opal.register_contributor(FakeContributor("bad", lambda: None))
        opal.enable_checkpoint()
        request = CheckpointRequest(1, cluster.stable_fs, "/s3")

        def main():
            yield from opal.entry_point(request)

        with pytest.raises(CheckpointError, match="not picklable"):
            run_gen(cluster.kernel, main())
