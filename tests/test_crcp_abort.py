"""Abort-path regression tests for the CRCP coordination protocols.

Fault-injects a veto into *every* coordination phase — bookmark
exchange, drain, and quiesce for ``coord``; quiesce and round for
``twophase`` — and asserts the section-5.1 guarantee: no process is
affected, the job keeps running, and a back-to-back checkpoint of the
same job succeeds.  These cover the three abort-path fixes:

* balanced ``enter_drain``/``leave_drain`` (no unbalanced leave when
  the abort lands before or after the drain loop);
* epoch-tagged poison/bookmarks (stragglers from an aborted attempt
  cannot pollute the next interval);
* the gate is lifted by ``resume(False)`` on the coordinating thread,
  so the application's sends unblock even though the roll-forward
  INC(CONTINUE) never runs for a coordination-time failure.
"""

import numpy as np
import pytest

from repro.mca.params import MCAParams
from repro.orte.oob import TAG_CRCP_BOOKMARK
from repro.simenv.kernel import Delay
from repro.tools.api import ompi_checkpoint, ompi_run
from repro.util.ids import ProcessName
from tests.conftest import make_universe
from tests.test_pml import define_app

#: above the eager limit so the burst is rendezvous traffic the drain
#: must force-CTS
PAYLOAD = 131072
TAG = 7
BURST = 8


def _burst_app(ctx):
    """rank 0 bursts rendezvous sends; rank 1 receives them between two
    compute blocks, so a checkpoint at t=0.1 lands with the burst in
    flight and the job survives well past a second checkpoint."""
    if ctx.rank == 0:
        payload = np.zeros(PAYLOAD, dtype=np.uint8)
        reqs = []
        for _ in range(BURST):
            reqs.append((yield ctx.isend(payload, 1, TAG)))
        yield ctx.compute(seconds=1.5)
        yield from ctx.waitall(reqs)
        return "sent"
    yield ctx.compute(seconds=0.3)
    for _ in range(BURST):
        yield from ctx.recv(0, TAG)
    yield ctx.compute(seconds=1.2)
    return "received"


define_app("t_abort_burst", _burst_app)


def _abort_in_phase(universe, jobid: int, rank: int, phase: str) -> dict:
    """Spawn a watcher that vetoes *rank* when it reaches *phase*.

    Returns a record dict the watcher fills in: ``crcp`` (the target's
    component) and ``abort_time``.  The watcher gives up at sim t=1.0
    so the kernel's event queue always drains.
    """
    record: dict = {}

    def watcher():
        yield Delay(0.09)
        while universe.kernel.now < 1.0:
            proc = universe.lookup(ProcessName(jobid, rank))
            if proc is not None:
                ompi = proc.maybe_service("ompi")
                if (
                    ompi is not None
                    and ompi.crcp is not None
                    and ompi.crcp.phase == phase
                ):
                    record["crcp"] = ompi.crcp
                    record["ompi"] = ompi
                    record["abort_time"] = universe.kernel.now
                    ompi.crcp.abort()
                    return None
            yield Delay(1e-5)
        return None

    universe.kernel.spawn(watcher(), name=f"abort-{phase}", daemon=True)
    return record


def _run_abort_then_retry(crcp_name: str, rank: int, phase: str) -> dict:
    """Checkpoint at 0.1 with a phase-targeted veto, checkpoint again
    at 0.8, run the job out; returns everything the asserts need."""
    universe = make_universe(2)
    job = ompi_run(
        universe,
        "t_abort_burst",
        2,
        params=MCAParams({"crcp": crcp_name}),
        wait=False,
    )
    record = _abort_in_phase(universe, job.jobid, rank, phase)
    first = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
    second = ompi_checkpoint(universe, job.jobid, at=0.8, wait=False)
    universe.run_job_to_completion(job)
    return {
        "job": job,
        "record": record,
        "first": first.result(),
        "second": second.result(),
    }


CASES = [
    ("coord", 1, "bookmark"),
    ("coord", 1, "drain"),
    ("coord", 0, "quiesce"),
    ("twophase", 0, "quiesce"),
    ("twophase", 1, "round"),
]


@pytest.mark.parametrize("crcp_name,rank,phase", CASES)
def test_abort_in_phase_then_back_to_back_checkpoint(crcp_name, rank, phase):
    out = _run_abort_then_retry(crcp_name, rank, phase)
    record = out["record"]
    # The fault injector must actually have seen the target phase.
    assert "abort_time" in record, f"phase {phase!r} never observed"
    assert record["crcp"].stats["aborts"] >= 1
    # First checkpoint fails cleanly (section 5.1: notify the user)...
    assert out["first"]["ok"] is False
    assert "abort" in (out["first"]["error"] or "").lower()
    # ...no process is affected: the job keeps running to the right
    # answers, drain mode is balanced, the gate is lifted, and no
    # coordination phase is stuck open.
    job = out["job"]
    assert job.state.value == "finished"
    assert job.results[0] == "sent"
    assert job.results[1] == "received"
    assert record["ompi"].pml_base.drain_mode is False
    assert record["crcp"].gate_active is False
    assert record["crcp"].phase is None
    # ...and the back-to-back checkpoint of the same job succeeds.
    assert out["second"]["ok"] is True, out["second"].get("error")
    assert out["second"]["snapshot"]


def test_stale_poison_does_not_leak_into_next_interval():
    """A poison message left unconsumed by an aborted attempt must not
    poison the next interval's bookmark collection."""
    universe = make_universe(2)
    job = ompi_run(
        universe,
        "t_abort_burst",
        2,
        params=MCAParams({"crcp": "coord"}),
        wait=False,
    )
    seen: dict = {}

    def inject():
        # Plant stale poison (epoch 0: "before any attempt") directly
        # in rank 1's bookmark mailbox before the checkpoint lands.
        yield Delay(0.05)
        rml = universe.lookup_rml(ProcessName(job.jobid, 1))
        rml._queue(TAG_CRCP_BOOKMARK).put((None, {"abort": True, "epoch": 0}))
        proc = universe.lookup(ProcessName(job.jobid, 1))
        seen["crcp"] = proc.service("ompi").crcp
        return None

    universe.kernel.spawn(inject(), name="inject-poison", daemon=True)
    handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
    universe.run_job_to_completion(job)
    reply = handle.result()
    assert reply["ok"] is True, reply.get("error")
    assert job.state.value == "finished"
    # The attempt was never vetoed; the stale poison was discarded.
    assert seen["crcp"].stats["aborts"] == 0
    assert seen["crcp"].stats["coordinations"] == 1


def test_stale_epoch_bookmark_is_discarded():
    """A bookmark from an aborted previous attempt (lower epoch, lower
    cumulative count) must not end the drain early."""
    universe = make_universe(2)
    job = ompi_run(
        universe,
        "t_abort_burst",
        2,
        params=MCAParams({"crcp": "coord"}),
        wait=False,
    )
    seen: dict = {}

    def inject():
        # A stale epoch-0 bookmark claiming rank 0 sent nothing.  If it
        # were believed, rank 1 would skip draining the burst and the
        # captured channels would not be empty.
        yield Delay(0.05)
        rml = universe.lookup_rml(ProcessName(job.jobid, 1))
        rml._queue(TAG_CRCP_BOOKMARK).put(
            (None, {"from_world": 0, "sent_to_you": 0, "epoch": 0})
        )
        proc = universe.lookup(ProcessName(job.jobid, 1))
        seen["crcp"] = proc.service("ompi").crcp
        return None

    universe.kernel.spawn(inject(), name="inject-stale", daemon=True)
    handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
    universe.run_job_to_completion(job)
    reply = handle.result()
    assert reply["ok"] is True, reply.get("error")
    assert job.state.value == "finished"
    # The drain believed the *real* epoch-1 bookmark and pulled the
    # whole burst in.
    assert seen["crcp"].stats["drained_msgs"] == BURST
