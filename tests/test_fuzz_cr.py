"""Randomized checkpoint/restart equivalence ("fuzz") tests.

For seeded random communication schedules — mixes of point-to-point
exchanges, wildcard receives, collectives, rendezvous-sized transfers,
and compute — a checkpoint-terminate at an arbitrary time followed by
``ompi-restart`` must reproduce the uninterrupted run's results
exactly.  This exercises the whole stack (coordination, drain, image
capture/restore, replay) at arbitrary cut points rather than the
hand-picked ones in the targeted tests.
"""

import random

import numpy as np
import pytest

from repro.tools.api import checkpoint_ref, ompi_checkpoint, ompi_restart, ompi_run
from tests.conftest import make_universe
from tests.test_pml import define_app

NP = 4
STEPS = 30


def build_schedule(seed: int) -> list:
    """A global schedule all ranks derive identically from the seed."""
    rng = random.Random(seed)
    schedule = []
    for _ in range(STEPS):
        kind = rng.choice(
            ["pair", "pair", "coll", "compute", "bcast", "any_source", "big"]
        )
        if kind == "pair":
            shift = rng.randrange(1, NP)
            tag = rng.randrange(0, 8)
            size = rng.choice([1, 16, 256, 2048])
            schedule.append(("pair", shift, tag, size))
        elif kind == "coll":
            schedule.append(("coll", rng.choice(["allreduce", "allgather", "scan"])))
        elif kind == "compute":
            schedule.append(("compute", rng.uniform(1e-4, 3e-3)))
        elif kind == "bcast":
            schedule.append(("bcast", rng.randrange(NP)))
        elif kind == "any_source":
            schedule.append(("any_source", 50 + rng.randrange(0, 8)))
        else:  # big: rendezvous-sized transfer around the ring
            schedule.append(("big", rng.choice([80_000, 150_000])))
    return schedule


def fuzz_app(ctx):
    seed = int(ctx.args["seed"])
    schedule = build_schedule(seed)
    rank, size = ctx.rank, ctx.size
    acc = 0.0
    for step_no, step in enumerate(schedule):
        kind = step[0]
        if kind == "pair":
            _, shift, tag, nbytes = step
            partner_to = (rank + shift) % size
            partner_from = (rank - shift) % size
            payload = np.full(nbytes, (rank + step_no) % 251, dtype=np.uint8)
            got, _status = yield from ctx.sendrecv(
                payload, partner_to, src=partner_from, tag=tag
            )
            acc += float(got[0]) if len(got) else 0.0
        elif kind == "coll":
            _, op = step
            if op == "allreduce":
                acc = yield from ctx.allreduce(acc + rank)
            elif op == "allgather":
                values = yield from ctx.allgather(round(acc, 6))
                acc += sum(values) / len(values)
            else:
                acc = yield from ctx.scan(acc + 1.0)
        elif kind == "compute":
            yield ctx.compute(seconds=step[1])
            acc += 1.0
        elif kind == "bcast":
            _, root = step
            value = round(acc, 6) if rank == root else None
            acc += (yield from ctx.bcast(value, root=root))
        elif kind == "any_source":
            _, tag = step
            target = (rank + 1) % size
            req = yield ctx.isend(rank * 1000 + step_no, target, tag)
            payload, status = yield from ctx.recv(ctx.ANY_SOURCE, tag)
            acc += payload % 977
            yield ctx.wait(req)
        elif kind == "big":
            _, nbytes = step
            payload = np.arange(nbytes, dtype=np.uint8)
            got, _ = yield from ctx.sendrecv(
                payload, (rank + 1) % size, src=(rank - 1) % size, tag=9
            )
            acc += float(got.sum() % 10007)
    return round(acc, 6)


define_app("fuzz_cr", fuzz_app)


@pytest.mark.parametrize("seed", [11, 23, 37, 58, 71])
def test_random_schedule_checkpoint_restart_equivalence(seed):
    args = {"seed": seed}
    base = ompi_run(make_universe(4), "fuzz_cr", NP, args=args)
    assert base.state.value == "finished"

    # Cut at a schedule-dependent time inside the run.
    universe = make_universe(4)
    job = ompi_run(universe, "fuzz_cr", NP, args=args, wait=False)
    cut = 0.04 + (seed % 7) * 0.004
    handle = ompi_checkpoint(universe, job.jobid, at=cut, terminate=True, wait=False)
    universe.run_job_to_completion(job)

    reply = handle.result()
    if not reply.get("ok"):
        # The run ended before the cut (or raced finalize): that is a
        # legal outcome — the job itself must simply be unharmed.
        assert job.state.value == "finished"
        assert job.results == base.results
        return
    assert job.state.value == "halted"
    new_job = ompi_restart(universe, checkpoint_ref(handle))
    assert new_job.state.value == "finished"
    assert new_job.results == base.results


@pytest.mark.parametrize("seed", [17, 41])
def test_random_schedule_under_twophase_protocol(seed):
    """The same randomized equivalence property must hold under the
    alternative coordination protocol."""
    args = {"seed": seed}
    base = ompi_run(make_universe(4), "fuzz_cr", NP, args=args)
    universe = make_universe(4, params={"crcp": "twophase"})
    job = ompi_run(universe, "fuzz_cr", NP, args=args, wait=False)
    cut = 0.04 + (seed % 5) * 0.005
    handle = ompi_checkpoint(universe, job.jobid, at=cut, terminate=True, wait=False)
    universe.run_job_to_completion(job)
    reply = handle.result()
    if not reply.get("ok"):
        assert job.state.value == "finished"
        assert job.results == base.results
        return
    assert job.state.value == "halted"
    new_job = ompi_restart(universe, checkpoint_ref(handle))
    assert new_job.state.value == "finished"
    assert new_job.results == base.results


@pytest.mark.parametrize("seed", [13, 29])
def test_random_schedule_checkpoint_continue_equivalence(seed):
    args = {"seed": seed}
    base = ompi_run(make_universe(4), "fuzz_cr", NP, args=args)
    universe = make_universe(4)
    job = ompi_run(universe, "fuzz_cr", NP, args=args, wait=False)
    handle = ompi_checkpoint(universe, job.jobid, at=0.045, wait=False)
    universe.run_job_to_completion(job)
    assert job.state.value == "finished"
    assert job.results == base.results
    reply = handle.result()
    assert reply.get("ok") or "cannot checkpoint" in reply.get("error", "")
