"""Multiple concurrent jobs in one universe: isolation, concurrent
checkpoints, independent restarts."""

from repro.tools.api import (
    checkpoint_ref,
    ompi_checkpoint,
    ompi_ps,
    ompi_restart,
    ompi_run,
)
from tests.conftest import make_universe

ARGS_A = {"loops": 60, "compute_s": 0.01, "msgs_per_loop": 2}
ARGS_B = {"n_global": 256, "iters": 40000}


class TestConcurrentJobs:
    def test_two_jobs_share_the_cluster(self):
        universe = make_universe(4)
        job_a = ompi_run(universe, "churn", 4, args=ARGS_A, wait=False)
        job_b = ompi_run(universe, "jacobi", 4, args=ARGS_B, wait=False)
        universe.run_job_to_completion(job_a)
        universe.run_job_to_completion(job_b)
        assert job_a.state.value == "finished"
        assert job_b.state.value == "finished"
        # Results match solo runs (no cross-talk).
        solo_a = ompi_run(make_universe(4), "churn", 4, args=ARGS_A)
        solo_b = ompi_run(make_universe(4), "jacobi", 4, args=ARGS_B)
        assert job_a.results == solo_a.results
        assert job_b.results == solo_b.results

    def test_concurrent_checkpoints_of_different_jobs(self):
        universe = make_universe(4)
        job_a = ompi_run(universe, "churn", 4, args=ARGS_A, wait=False)
        job_b = ompi_run(universe, "churn", 4, args=ARGS_A, wait=False)
        h_a = ompi_checkpoint(universe, job_a.jobid, at=0.1, wait=False)
        h_b = ompi_checkpoint(universe, job_b.jobid, at=0.1, wait=False)
        universe.run_job_to_completion(job_a)
        universe.run_job_to_completion(job_b)
        assert h_a.result()["ok"], h_a.result()
        assert h_b.result()["ok"], h_b.result()
        assert h_a.result()["snapshot"] != h_b.result()["snapshot"]

    def test_checkpoint_one_job_does_not_touch_the_other(self):
        universe = make_universe(4)
        job_a = ompi_run(universe, "churn", 4, args=ARGS_A, wait=False)
        job_b = ompi_run(universe, "churn", 4, args=ARGS_A, wait=False)
        handle = ompi_checkpoint(
            universe, job_a.jobid, at=0.1, terminate=True, wait=False
        )
        universe.run_job_to_completion(job_a)
        universe.run_job_to_completion(job_b)
        assert job_a.state.value == "halted"
        assert job_b.state.value == "finished"  # unaffected
        assert handle.result()["ok"]

    def test_restart_while_other_job_runs(self):
        solo = ompi_run(make_universe(4), "churn", 4, args=ARGS_A)
        universe = make_universe(4)
        job_a = ompi_run(universe, "churn", 4, args=ARGS_A, wait=False)
        handle = ompi_checkpoint(
            universe, job_a.jobid, at=0.1, terminate=True, wait=False
        )
        universe.run_job_to_completion(job_a)
        # Start a second job, then restart the first alongside it.
        job_b = ompi_run(universe, "churn", 4, args=ARGS_A, wait=False)
        restarted = ompi_restart(universe, checkpoint_ref(handle))
        universe.run_job_to_completion(job_b)
        assert restarted.state.value == "finished"
        assert job_b.state.value == "finished"
        assert restarted.results == solo.results
        assert job_b.results == solo.results

    def test_ps_lists_every_job(self):
        universe = make_universe(4)
        ompi_run(universe, "ring", 2, args={"laps": 1})
        ompi_run(universe, "pi", 3, args={"samples_per_rank": 500})
        rows = ompi_ps(universe)
        assert {row["app"] for row in rows} == {"ring", "pi"}
        assert all(row["state"] == "finished" for row in rows)
