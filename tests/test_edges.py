"""Edge cases across layers: corrupted snapshots, RML teardown,
inline op driving, wrapper pass-through, custom reduction ops."""

import pickle

import pytest

from repro.ompi.ops import InlineRuntime, drive_ops
from repro.tools.api import checkpoint_ref, ompi_checkpoint, ompi_restart, ompi_run
from repro.util.errors import MPIError, NetworkError, RestartError, SnapshotError
from tests.conftest import make_universe, run_gen
from tests.test_pml import define_app

CHURN = {"loops": 60, "compute_s": 0.01}


def halted_snapshot(universe):
    job = ompi_run(universe, "churn", 2, args=CHURN, wait=False)
    handle = ompi_checkpoint(universe, job.jobid, at=0.15, terminate=True, wait=False)
    universe.run_job_to_completion(job)
    assert job.state.value == "halted"
    return checkpoint_ref(handle)


class TestCorruptedSnapshots:
    def test_corrupt_image_fails_restart_cleanly(self):
        universe = make_universe(2)
        ref = halted_snapshot(universe)
        stable = universe.cluster.stable_fs
        stable.poke(f"{ref.local_dir(0)}/image.pkl", b"not a pickle")
        with pytest.raises(RestartError):
            ompi_restart(universe, ref)

    def test_corrupt_global_metadata(self):
        universe = make_universe(2)
        ref = halted_snapshot(universe)
        universe.cluster.stable_fs.poke(ref.meta_path, b"{broken json")
        with pytest.raises((RestartError, SnapshotError)):
            ompi_restart(universe, ref)

    def test_missing_rank_dir(self):
        universe = make_universe(2)
        ref = halted_snapshot(universe)
        stable = universe.cluster.stable_fs

        def remove():
            yield from stable.remove_tree(ref.local_dir(1))

        run_gen(universe.kernel, remove())
        with pytest.raises(RestartError):
            ompi_restart(universe, ref)

    def test_metadata_referencing_unknown_app(self):
        universe = make_universe(2)
        ref = halted_snapshot(universe)
        stable = universe.cluster.stable_fs
        import json

        meta = json.loads(stable.peek(ref.meta_path))
        meta["app_name"] = "ghost-app"
        stable.poke(ref.meta_path, json.dumps(meta).encode())
        with pytest.raises(RestartError, match="unknown application"):
            ompi_restart(universe, ref)

    def test_wrong_image_payload_type(self):
        universe = make_universe(2)
        ref = halted_snapshot(universe)
        stable = universe.cluster.stable_fs
        # A valid pickle of the wrong shape: restore should fail, not
        # silently proceed.
        stable.poke(
            f"{ref.local_dir(0)}/image.pkl",
            pickle.dumps({"unknown.contributor": 1}),
        )
        with pytest.raises((RestartError, Exception)):
            job = ompi_restart(universe, ref)
            assert job.state.value == "failed"


class TestRMLTeardown:
    def test_send_after_close_raises(self, universe):
        from repro.orte.oob import RML
        from repro.simenv.process import SimProcess
        from repro.util.ids import ProcessName, hnp_name

        proc = SimProcess(universe.cluster.nodes[0], ProcessName(5, 0), label="t")
        universe.register(proc)
        rml = RML(universe, proc)
        rml.close()

        def main():
            yield from rml.send(hnp_name(), "x", {})

        with pytest.raises(NetworkError):
            run_gen(universe.kernel, main())

    def test_close_idempotent(self, universe):
        from repro.orte.oob import RML
        from repro.simenv.process import SimProcess
        from repro.util.ids import ProcessName

        proc = SimProcess(universe.cluster.nodes[0], ProcessName(5, 1), label="t2")
        universe.register(proc)
        rml = RML(universe, proc)
        rml.close()
        rml.close()


class TestInlineOps:
    def test_drive_ops_runs_collective_inline(self, universe):
        """Library-internal op driving (the MPI_Finalize barrier path)
        exposed directly: run a bcast on a kernel-driven service thread
        inside each rank (inline driving must not pass through the
        application runner)."""
        results = {}

        def main(ctx):
            ompi = ctx._runner.ompi
            rt = InlineRuntime(ompi)
            value = 7 if ctx.rank == 0 else None
            holder = {}

            def inline():
                got = yield from drive_ops(
                    rt, ompi.coll.bcast(ompi.comm_world, value, 0)
                )
                holder["got"] = got

            ctx._runner.proc.spawn_thread(inline(), "inline", daemon=True)
            while "got" not in holder:
                yield ctx.compute(seconds=1e-4)
            results[ctx.rank] = holder["got"]
            yield from ctx.barrier()

        define_app("t_inline", main)
        job = ompi_run(universe, "t_inline", 2)
        assert job.state.value == "finished"
        assert results == {0: 7, 1: 7}

    def test_drive_ops_rejects_non_op(self, kernel):
        def bogus():
            yield "nope"

        class FakeRT:
            pass

        def main():
            yield from drive_ops(FakeRT(), bogus())

        with pytest.raises(MPIError, match="expected an MPIOp"):
            run_gen(kernel, main())


class TestWrapperPassthrough:
    def test_getattr_reaches_base_pml(self):
        universe = make_universe(2)
        seen = {}

        def main(ctx):
            pml = ctx._runner.ompi.pml  # the wrapper
            seen["eager_limit"] = pml.eager_limit
            seen["stats"] = dict(pml.stats)
            yield ctx.compute(seconds=0.0)

        define_app("t_passthru", main)
        ompi_run(universe, "t_passthru", 1)
        assert seen["eager_limit"] == 65536
        assert "eager_sent" in seen["stats"]

    def test_hot_methods_bound_to_base(self):
        universe = make_universe(2)
        seen = {}

        def main(ctx):
            ompi = ctx._runner.ompi
            seen["wait_is_base"] = ompi.pml.wait.__self__ is ompi.pml_base
            seen["probe_is_base"] = ompi.pml.iprobe.__self__ is ompi.pml_base
            yield ctx.compute(seconds=0.0)

        define_app("t_bound", main)
        ompi_run(universe, "t_bound", 1)
        assert seen == {"wait_is_base": True, "probe_is_base": True}


class TestCustomReduceOps:
    def test_callable_op(self):
        universe = make_universe(4)

        def main(ctx):
            def keep_longest(a, b):
                return a if len(a) >= len(b) else b

            word = "x" * (ctx.rank + 1)
            longest = yield from ctx.allreduce(word, op=keep_longest)
            return longest

        define_app("t_custom_op", main)
        job = ompi_run(universe, "t_custom_op", 4)
        assert all(v == "xxxx" for v in job.results.values())


class TestCheckpointOptions:
    def test_allow_fail_suppresses_raise(self):
        universe = make_universe(2, params={"crcp": "none"})

        def main(ctx):
            result = yield ctx.checkpoint(allow_fail=True)
            return result["ok"]

        define_app("t_allow_fail", main)
        job = ompi_run(universe, "t_allow_fail", 2)
        assert job.state.value == "finished"
        assert all(v is False for v in job.results.values())

    def test_without_allow_fail_raises(self):
        universe = make_universe(2, params={"crcp": "none"})

        def main(ctx):
            yield ctx.checkpoint()

        define_app("t_no_allow", main)
        job = ompi_run(universe, "t_no_allow", 2)
        assert job.state.value == "failed"
