"""Heterogeneous-cluster restart gating (paper section 4) and the
command-line tool entry points."""

import pytest

from repro.mca.params import MCAParams
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.tools import cli
from repro.tools.api import (
    checkpoint_ref,
    ompi_checkpoint,
    ompi_ps,
    ompi_restart,
    ompi_run,
)
from repro.util.errors import RestartError
from tests.conftest import make_universe

JARGS = {"n_global": 128, "iters": 60000}


def hetero_universe(params=None):
    """Mixed-OS cluster; node00 hosts the HNP and is never crashed
    (mpirun failure is out of the paper's scope).  node01 is the only
    solaris machine, so killing it strands non-portable images."""
    spec = ClusterSpec(
        n_nodes=4,
        os_tags=["linux-x86_64", "solaris-sparc", "bsd-ppc64", "bsd-ppc64"],
    )
    return Universe(Cluster(spec), MCAParams(params or {}))


class TestHeterogeneousRestart:
    def _halt_with_snapshot(self, universe, np=2):
        job = ompi_run(universe, "jacobi", np, args=JARGS, wait=False)
        handle = ompi_checkpoint(
            universe, job.jobid, at=0.05, terminate=True, wait=False
        )
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"
        return checkpoint_ref(handle)

    def test_heterogeneous_job_checkpoints(self):
        """Ranks on different OSes aggregate into one global snapshot
        (the snapshot-reference abstraction hides the difference)."""
        universe = hetero_universe()
        job = ompi_run(universe, "jacobi", 4, args=JARGS, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, wait=False)
        universe.run_job_to_completion(job)
        assert handle.result()["ok"]

    def test_portable_images_cross_os(self):
        universe = hetero_universe()
        ref = self._halt_with_snapshot(universe)
        # Kill rank 1's origin (the only solaris box); portable images
        # restart on any surviving node.
        universe.cluster.failures.crash_node_now("node01")
        new_job = ompi_restart(universe, ref)
        assert new_job.state.value == "finished"
        assert new_job.placements[1] != "node01"

    def test_nonportable_images_gated_by_os_tag(self):
        universe = hetero_universe(params={"crs_simcr_portable": "0"})
        ref = self._halt_with_snapshot(universe)
        universe.cluster.failures.crash_node_now("node01")
        # rank 1's solaris image has no compatible machine left.
        with pytest.raises(RestartError, match="no compatible"):
            ompi_restart(universe, ref)

    def test_nonportable_images_restart_on_matching_os(self):
        universe = hetero_universe(params={"crs_simcr_portable": "0"})
        ref = self._halt_with_snapshot(universe)
        # Origin nodes still up: restart in place works.
        new_job = ompi_restart(universe, ref)
        assert new_job.state.value == "finished"
        assert set(new_job.placements.values()) == {"node00", "node01"}

    def test_local_meta_records_os_tag(self):
        universe = hetero_universe()
        ref = self._halt_with_snapshot(universe, np=4)
        from repro.snapshot import read_global_meta
        from tests.conftest import run_gen

        def read():
            meta = yield from read_global_meta(universe.cluster.stable_fs, ref)
            return meta

        meta = run_gen(universe.kernel, read())
        tags = {entry["os_tag"] for entry in meta.locals.values()}
        assert tags == {"linux-x86_64", "solaris-sparc", "bsd-ppc64"}


class TestToolAPI:
    def test_tool_process_is_cleaned_up(self):
        universe = make_universe(2)
        ompi_run(universe, "ring", 2, args={"laps": 1})
        before = len(universe.directory)
        ompi_ps(universe)
        assert len(universe.directory) == before  # tool deregistered

    def test_checkpoint_wait_semantics(self):
        universe = make_universe(2)
        job = ompi_run(universe, "jacobi", 2, args=JARGS, wait=False)
        handle = ompi_checkpoint(universe, job.jobid, at=0.05, wait=True)
        assert handle.result()["ok"]
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"

    def test_restart_nowait_returns_handle(self):
        universe = make_universe(2)
        job = ompi_run(universe, "jacobi", 2, args=JARGS, wait=False)
        h = ompi_checkpoint(universe, job.jobid, at=0.05, terminate=True, wait=False)
        universe.run_job_to_completion(job)
        handle = ompi_restart(universe, checkpoint_ref(h), wait=False)
        reply = handle.wait()
        assert reply["ok"]
        new_job = universe.job(reply["jobid"])
        universe.run_job_to_completion(new_job)
        assert new_job.state.value == "finished"


class TestCLI:
    def test_main_run(self, capsys):
        assert cli.main_run(["--app", "ring", "--np", "2", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "finished" in out

    def test_main_ps(self, capsys):
        assert cli.main_ps(["--app", "ring", "--np", "2", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "ring" in out

    def test_main_checkpoint(self, capsys):
        assert cli.main_checkpoint(["--np", "2", "--nodes", "2", "--at", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "global snapshot reference" in out

    def test_main_restart(self, capsys):
        assert cli.main_restart(["--np", "2", "--nodes", "2", "--at", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "restarted as job" in out

    def test_main_info(self, capsys):
        assert cli.main_info([]) == 0
        out = capsys.readouterr().out
        assert "crcp: coord, none" in out

    def test_main_migrate(self, capsys):
        assert cli.main_migrate(["--np", "4", "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "migrated to job" in out
