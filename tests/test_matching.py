"""Unit tests for the MPI matching engine."""

import pytest

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.pml.matching import MatchingEngine, MPIMsg, PostedRecv
from repro.util.errors import MPIError


def eager(src=0, tag=1, cid=0, seq=0, payload="p", msg_id=0):
    return MPIMsg("eager", cid, src, 9, tag, seq, 8, payload=payload, msg_id=msg_id)


def rts(src=0, tag=1, cid=0, seq=0, msg_id=1):
    return MPIMsg("rts", cid, src, 9, tag, seq, 1 << 20, msg_id=msg_id)


def data(src=0, tag=1, cid=0, seq=0, payload="big", msg_id=1):
    return MPIMsg("data", cid, src, 9, tag, seq, 1 << 20, payload=payload, msg_id=msg_id)


class TestPostedRecvMatching:
    def test_exact_match(self):
        recv = PostedRecv(1, 0, 0, 1)
        assert recv.matches(eager(src=0, tag=1))
        assert not recv.matches(eager(src=1, tag=1))
        assert not recv.matches(eager(src=0, tag=2))
        assert not recv.matches(eager(cid=5))

    def test_wildcards(self):
        assert PostedRecv(1, 0, ANY_SOURCE, 1).matches(eager(src=3))
        assert PostedRecv(1, 0, 0, ANY_TAG).matches(eager(tag=42))
        assert PostedRecv(1, 0, ANY_SOURCE, ANY_TAG).matches(eager(src=2, tag=9))


class TestArriveThenPost:
    def test_unexpected_then_matched(self):
        engine = MatchingEngine()
        assert engine.arrive(eager()) is None
        got = engine.post(PostedRecv(1, 0, 0, 1))
        assert got is not None and got.payload == "p"
        assert engine.unexpected == []

    def test_post_then_arrive(self):
        engine = MatchingEngine()
        assert engine.post(PostedRecv(1, 0, 0, 1)) is None
        matched = engine.arrive(eager())
        assert matched is not None and matched.req_id == 1
        assert engine.posted == []

    def test_fifo_among_matching_unexpected(self):
        engine = MatchingEngine()
        engine.arrive(eager(seq=0, payload="first"))
        engine.arrive(eager(seq=1, payload="second"))
        got = engine.post(PostedRecv(1, 0, ANY_SOURCE, ANY_TAG))
        assert got.payload == "first"

    def test_fifo_among_posted(self):
        engine = MatchingEngine()
        engine.post(PostedRecv(1, 0, ANY_SOURCE, ANY_TAG))
        engine.post(PostedRecv(2, 0, ANY_SOURCE, ANY_TAG))
        matched = engine.arrive(eager())
        assert matched.req_id == 1

    def test_rts_ordering_with_eager(self):
        """An RTS that arrived before an eager from the same sender must
        match first (cross-protocol ordering)."""
        engine = MatchingEngine()
        engine.arrive(rts(seq=0, msg_id=7))
        engine.arrive(eager(seq=1))
        got = engine.post(PostedRecv(1, 0, 0, ANY_TAG))
        assert got.kind == "rts" and got.msg_id == 7

    def test_non_matching_posted_queues(self):
        engine = MatchingEngine()
        engine.arrive(eager(tag=5))
        assert engine.post(PostedRecv(1, 0, 0, 6)) is None
        assert len(engine.posted) == 1
        assert len(engine.unexpected) == 1

    def test_cancel_post(self):
        engine = MatchingEngine()
        engine.post(PostedRecv(1, 0, 0, 1))
        assert engine.cancel_post(1)
        assert not engine.cancel_post(1)
        assert engine.posted == []

    def test_arrive_rejects_bad_kinds(self):
        engine = MatchingEngine()
        with pytest.raises(MPIError):
            engine.arrive(data())


class TestDrainBookkeeping:
    def test_draining_rts_skipped_by_post(self):
        engine = MatchingEngine()
        engine.arrive(rts(msg_id=5))
        engine.draining.add(5)
        assert engine.post(PostedRecv(1, 0, 0, ANY_TAG)) is None

    def test_replace_rts_with_data_preserves_order(self):
        engine = MatchingEngine()
        engine.arrive(rts(seq=0, msg_id=5))
        engine.arrive(eager(seq=1, payload="later"))
        engine.draining.add(5)
        engine.replace_rts_with_data(data(seq=0, msg_id=5, payload="early"))
        got = engine.post(PostedRecv(1, 0, 0, ANY_TAG))
        assert got.payload == "early"
        assert 5 not in engine.draining

    def test_replace_unknown_msg_id_raises(self):
        engine = MatchingEngine()
        with pytest.raises(MPIError):
            engine.replace_rts_with_data(data(msg_id=99))

    def test_pending_rts_excludes_draining(self):
        engine = MatchingEngine()
        engine.arrive(rts(msg_id=1, seq=0))
        engine.arrive(rts(msg_id=2, seq=1))
        engine.draining.add(1)
        assert [m.msg_id for m in engine.pending_rts()] == [2]


class TestCaptureRestore:
    def test_roundtrip(self):
        engine = MatchingEngine()
        engine.post(PostedRecv(4, 0, 1, 2))
        engine.arrive(eager(src=2, tag=3, payload=[1, 2]))
        state = engine.capture()
        restored = MatchingEngine()
        restored.restore(state)
        assert restored.posted == engine.posted
        assert [m.payload for m in restored.unexpected] == [[1, 2]]
        # The restored engine still matches correctly.
        got = restored.post(PostedRecv(5, 0, 2, 3))
        assert got.payload == [1, 2]

    def test_capture_with_undrained_rts_rejected(self):
        engine = MatchingEngine()
        engine.arrive(rts(msg_id=1))
        with pytest.raises(MPIError):
            engine.capture()

    def test_capture_while_draining_rejected(self):
        engine = MatchingEngine()
        engine.arrive(rts(msg_id=1))
        engine.draining.add(1)
        with pytest.raises(MPIError):
            engine.capture()

    def test_msg_state_roundtrip(self):
        msg = eager(payload={"k": [1, 2]})
        assert MPIMsg.from_state(msg.to_state()) == msg
