"""In-simulation tests of the collective operations (layered over p2p,
paper section 3.1)."""

import numpy as np
import pytest

from repro.mca.params import MCAParams
from repro.ompi.coll.base import MAX, MIN, PROD, SUM
from repro.tools.api import ompi_run
from tests.conftest import make_universe
from tests.test_pml import define_app


NP_SIZES = [1, 2, 3, 4, 5, 8]


def run_collective(name, main, np_procs, params=None):
    universe = make_universe(4)
    define_app(name, main)
    job = ompi_run(universe, name, np_procs, params=params)
    assert job.state.value == "finished", job.state
    return job.results


class TestBarrier:
    @pytest.mark.parametrize("np_procs", NP_SIZES)
    def test_barrier_completes(self, np_procs):
        def main(ctx):
            yield from ctx.barrier()
            return "past"

        results = run_collective("t_barrier", main, np_procs)
        assert all(v == "past" for v in results.values())

    def test_barrier_actually_synchronizes(self):
        def main(ctx):
            # Rank 1 computes before the barrier; everyone reads the
            # clock after.  All post-barrier times must be >= rank 1's
            # pre-barrier completion time.
            if ctx.rank == 1:
                yield ctx.compute(seconds=0.05)
            before = yield ctx.now()
            yield from ctx.barrier()
            after = yield ctx.now()
            return (before, after)

        results = run_collective("t_barrier_sync", main, 4)
        slowest_before = max(before for before, _ in results.values())
        assert all(after >= slowest_before for _, after in results.values())


class TestBcast:
    @pytest.mark.parametrize("np_procs", NP_SIZES)
    @pytest.mark.parametrize("algorithm", ["binomial", "linear"])
    def test_bcast_value(self, np_procs, algorithm):
        def main(ctx):
            value = {"data": 42} if ctx.rank == 0 else None
            got = yield from ctx.bcast(value, root=0)
            return got

        params = MCAParams({"coll_basic_bcast_algorithm": algorithm})
        results = run_collective("t_bcast", main, np_procs, params)
        assert all(v == {"data": 42} for v in results.values())

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_bcast_nonzero_root(self, root):
        def main(ctx):
            value = ctx.rank * 100 if ctx.rank == root else None
            got = yield from ctx.bcast(value, root=root)
            return got

        results = run_collective("t_bcast_root", main, 4)
        assert all(v == root * 100 for v in results.values())

    def test_bcast_numpy(self):
        def main(ctx):
            value = np.arange(50) if ctx.rank == 0 else None
            got = yield from ctx.bcast(value, root=0)
            return int(got.sum())

        results = run_collective("t_bcast_np", main, 4)
        assert all(v == sum(range(50)) for v in results.values())


class TestReduceFamily:
    @pytest.mark.parametrize("np_procs", NP_SIZES)
    @pytest.mark.parametrize("algorithm", ["binomial", "linear"])
    def test_reduce_sum(self, np_procs, algorithm):
        def main(ctx):
            total = yield from ctx.reduce(ctx.rank + 1, op=SUM, root=0)
            return total

        params = MCAParams({"coll_basic_reduce_algorithm": algorithm})
        results = run_collective("t_reduce", main, np_procs, params)
        expected = np_procs * (np_procs + 1) // 2
        assert results[0] == expected
        assert all(results[r] is None for r in range(1, np_procs))

    @pytest.mark.parametrize("op,expected", [(MAX, 4), (MIN, 1), (PROD, 24)])
    def test_reduce_operators(self, op, expected):
        def main(ctx):
            return (yield from ctx.reduce(ctx.rank + 1, op=op, root=0))

        results = run_collective("t_reduce_ops", main, 4)
        assert results[0] == expected

    @pytest.mark.parametrize("np_procs", NP_SIZES)
    def test_allreduce(self, np_procs):
        def main(ctx):
            return (yield from ctx.allreduce(ctx.rank, op=SUM))

        results = run_collective("t_allreduce", main, np_procs)
        expected = sum(range(np_procs))
        assert all(v == expected for v in results.values())

    def test_allreduce_numpy_arrays(self):
        def main(ctx):
            vec = np.full(8, float(ctx.rank))
            out = yield from ctx.allreduce(vec, op=SUM)
            return out.tolist()

        results = run_collective("t_allreduce_np", main, 4)
        assert all(v == [6.0] * 8 for v in results.values())

    def test_reduce_does_not_alias_input(self):
        def main(ctx):
            vec = np.ones(4)
            out = yield from ctx.allreduce(vec, op=SUM)
            vec[:] = 99  # mutating the input must not affect the output
            return out.tolist()

        results = run_collective("t_reduce_alias", main, 2)
        assert all(v == [2.0] * 4 for v in results.values())

    @pytest.mark.parametrize("np_procs", NP_SIZES)
    def test_scan(self, np_procs):
        def main(ctx):
            return (yield from ctx.scan(ctx.rank + 1, op=SUM))

        results = run_collective("t_scan", main, np_procs)
        for rank in range(np_procs):
            assert results[rank] == sum(range(1, rank + 2))


class TestGatherScatter:
    @pytest.mark.parametrize("np_procs", NP_SIZES)
    def test_gather(self, np_procs):
        def main(ctx):
            return (yield from ctx.gather(ctx.rank * 2, root=0))

        results = run_collective("t_gather", main, np_procs)
        assert results[0] == [r * 2 for r in range(np_procs)]

    @pytest.mark.parametrize("np_procs", NP_SIZES)
    def test_scatter(self, np_procs):
        def main(ctx):
            values = [f"v{r}" for r in range(ctx.size)] if ctx.rank == 0 else None
            return (yield from ctx.scatter(values, root=0))

        results = run_collective("t_scatter", main, np_procs)
        assert all(results[r] == f"v{r}" for r in range(np_procs))

    def test_scatter_wrong_length_fails(self):
        def main(ctx):
            values = [1] if ctx.rank == 0 else None
            yield from ctx.scatter(values, root=0)

        universe = make_universe(4)
        define_app("t_scatter_bad", main)
        job = ompi_run(universe, "t_scatter_bad", 3)
        assert job.state.value == "failed"

    @pytest.mark.parametrize("np_procs", NP_SIZES)
    def test_allgather(self, np_procs):
        def main(ctx):
            return (yield from ctx.allgather(ctx.rank**2))

        results = run_collective("t_allgather", main, np_procs)
        expected = [r**2 for r in range(np_procs)]
        assert all(v == expected for v in results.values())

    @pytest.mark.parametrize("np_procs", NP_SIZES)
    def test_alltoall(self, np_procs):
        def main(ctx):
            values = [(ctx.rank, peer) for peer in range(ctx.size)]
            return (yield from ctx.alltoall(values))

        results = run_collective("t_alltoall", main, np_procs)
        for rank in range(np_procs):
            assert results[rank] == [(src, rank) for src in range(np_procs)]


class TestCommManagement:
    def test_comm_dup_isolates_traffic(self):
        def main(ctx):
            dup = yield from ctx.comm_dup()
            assert dup.cid != ctx.comm_world.cid
            # Same tag on both communicators; messages must not cross.
            if ctx.rank == 0:
                yield from ctx.send("world", 1, 3)
                yield from ctx.send("dup", 1, 3, comm=dup)
            else:
                on_dup, _ = yield from ctx.recv(0, 3, comm=dup)
                on_world, _ = yield from ctx.recv(0, 3)
                return (on_world, on_dup)

        results = run_collective("t_dup", main, 2)
        assert results[1] == ("world", "dup")

    def test_comm_split_halves(self):
        def main(ctx):
            color = ctx.rank % 2
            sub = yield from ctx.comm_split(color, ctx.rank)
            total = yield from ctx.allreduce(ctx.rank, comm=sub)
            return (sub.size, total)

        results = run_collective("t_split", main, 4)
        assert results[0] == (2, 0 + 2)
        assert results[1] == (2, 1 + 3)
        assert results[2] == (2, 0 + 2)
        assert results[3] == (2, 1 + 3)

    def test_split_collectives_within_group(self):
        def main(ctx):
            sub = yield from ctx.comm_split(0 if ctx.rank < 2 else 1, ctx.rank)
            gathered = yield from ctx.gather(ctx.rank, root=0, comm=sub)
            return gathered

        results = run_collective("t_split_coll", main, 4)
        assert results[0] == [0, 1]
        assert results[2] == [2, 3]
