"""Fleet spec/runner unit coverage: seed derivation, grid validation,
in-band error reporting, timeout watchdog, retry accounting, and
meta-report aggregation (KernelStats.merge)."""

from __future__ import annotations

import pytest

from repro.fleet import FleetRunner, FleetSpec, GridCell, derive_cell_seed, run_cell
from repro.fleet.presets import demo_fleet
from repro.simenv.campaign import CampaignSpec
from repro.simenv.kernel import KernelStats

QUIET = {"progress": lambda line: None}


def small_spec(**overrides) -> FleetSpec:
    fields = dict(
        name="unit",
        app="churn",
        np=2,
        app_args={"loops": 10, "compute_s": 0.005, "state_bytes": 1 << 16},
        seeds=(0,),
        clusters={"default": {"n_nodes": 4}},
        params={"default": {}},
        campaigns={"quiet": CampaignSpec(mtbf_s=5.0, max_failures=0)},
        retries=0,
    )
    fields.update(overrides)
    return FleetSpec(**fields)


class TestSeedDerivation:
    def test_pure_function_of_coordinates(self):
        assert derive_cell_seed(7, 0) == derive_cell_seed(7, 0)
        assert derive_cell_seed(7, 0) != derive_cell_seed(7, 1)
        assert derive_cell_seed(7, 0) != derive_cell_seed(8, 0)
        assert derive_cell_seed(7, 0, "a") != derive_cell_seed(7, 0, "b")

    def test_default_axes_share_arrivals_within_a_replica(self):
        spec = small_spec(
            seeds=(0, 1), params={"a": {}, "b": {}},
        )
        seed_a0 = spec.cell_seed(GridCell(0, "default", "a", "quiet"))
        seed_b0 = spec.cell_seed(GridCell(0, "default", "b", "quiet"))
        seed_a1 = spec.cell_seed(GridCell(1, "default", "a", "quiet"))
        # Same replica, different configuration: identical cluster seed
        # (the configurations race the same Poisson arrival process).
        assert seed_a0 == seed_b0
        assert seed_a0 != seed_a1

    def test_extra_axes_decorrelate(self):
        spec = small_spec(
            params={"a": {}, "b": {}}, seed_axes=("seed", "params")
        )
        assert spec.cell_seed(
            GridCell(0, "default", "a", "quiet")
        ) != spec.cell_seed(GridCell(0, "default", "b", "quiet"))


class TestGrid:
    def test_product_grid_order_is_deterministic(self):
        spec = small_spec(
            seeds=(0, 1),
            params={"b": {}, "a": {}},
            campaigns={
                "quiet": CampaignSpec(mtbf_s=5.0, max_failures=0),
                "loud": CampaignSpec(mtbf_s=0.1),
            },
        )
        keys = [cell.key for cell in spec.cells()]
        assert keys == sorted(keys, key=lambda k: k.split("/")) != []
        assert keys == [cell.key for cell in spec.cells()]

    def test_unknown_labels_rejected(self):
        spec = small_spec(
            cells_override=(GridCell(0, "default", "nope", "quiet"),)
        )
        with pytest.raises(ValueError, match="params label"):
            spec.cells()

    def test_duplicate_cells_rejected(self):
        cell = GridCell(0, "default", "default", "quiet")
        spec = small_spec(cells_override=(cell, cell))
        with pytest.raises(ValueError, match="duplicate"):
            spec.cells()


class TestRunCell:
    def test_worker_reports_errors_in_band(self):
        spec = small_spec(clusters={"default": {"n_nodes": 4, "bogus": 1}})
        payload = spec.payload(spec.cells()[0])
        out = run_cell(payload)
        assert out["ok"] is False
        assert out["error"].startswith("TypeError:")
        assert out["report"] is None

    def test_in_sim_job_failure_is_a_valid_result(self):
        # An unknown app crashes the *job*, not the worker: a settled
        # campaign with completed=False is data, not a fleet error.
        spec = small_spec(app="no-such-app")
        out = run_cell(spec.payload(spec.cells()[0]))
        assert out["ok"] is True
        assert out["report"]["completed"] is False

    def test_watchdog_times_out_a_wedged_run(self):
        spec = small_spec(
            app_args={
                "loops": 500_000, "compute_s": 0.001, "state_bytes": 1 << 10
            },
            timeout_s=0.2,
        )
        out = run_cell(spec.payload(spec.cells()[0]))
        assert out["ok"] is False
        assert out["error"].startswith("timeout:")

    def test_successful_cell_ships_report_and_stats(self):
        spec = small_spec()
        out = run_cell(spec.payload(spec.cells()[0]))
        assert out["ok"], out["error"]
        assert out["report"]["completed"] is True
        assert out["kernel_stats"]["events"] > 0
        assert out["scheduler"] is not None


class TestRunner:
    def test_retry_accounting_on_persistent_failure(self):
        spec = small_spec(
            clusters={"default": {"n_nodes": 4, "bogus": 1}}, retries=1
        )
        report = FleetRunner(spec, **QUIET).run(workers=1)
        (cell,) = report.cells
        assert cell.ok is False
        assert cell.attempts == 2  # original + one retry
        assert report.aggregates()["failed"] == 1

    def test_results_keep_spec_order_across_workers(self):
        spec = demo_fleet()
        report = FleetRunner(spec, **QUIET).run(workers=2)
        assert [c.key for c in report.cells] == [
            c.key for c in spec.cells()
        ]
        assert all(c.ok for c in report.cells)

    def test_progress_lines_are_emitted(self):
        lines: list[str] = []
        spec = small_spec()
        FleetRunner(spec, progress=lines.append).run(workers=1)
        assert any("1/1 runs" in line for line in lines)
        assert any("events/cpu-sec" in line for line in lines)


class TestKernelStatsMerge:
    def test_counters_add_and_peaks_max(self):
        a, b = KernelStats(), KernelStats()
        a.events, b.events = 10, 32
        a.run_cpu_s, b.run_cpu_s = 1.0, 3.0
        a.peak_heap, b.peak_heap = 7, 5
        a.merge(b)
        assert a.events == 42
        assert a.run_cpu_s == 4.0
        assert a.peak_heap == 7

    def test_merge_accepts_dict_and_recomputes_rates(self):
        a = KernelStats()
        a.merge({"events": 100, "run_cpu_s": 2.0, "peak_ready": 3,
                 "events_per_cpu_sec": 123456.0})  # derived key ignored
        assert a.events == 100 and a.peak_ready == 3
        assert a.to_dict()["events_per_cpu_sec"] == pytest.approx(50.0)

    def test_fleet_report_aggregates_stats(self):
        report = FleetRunner(small_spec(), **QUIET).run(workers=1)
        merged = report.kernel_stats()
        assert merged["events"] == report.cells[0].kernel_stats["events"]
        assert merged["events_per_cpu_sec"] >= 0
