"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import logging

import pytest

from repro.mca.params import MCAParams
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.simenv.kernel import Kernel

# Keep expected-failure noise out of test output.
logging.getLogger("repro").setLevel(logging.CRITICAL)


@pytest.fixture
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(ClusterSpec(n_nodes=4))


def make_universe(
    n_nodes: int = 4, params: dict | None = None, **spec_kwargs
) -> Universe:
    """Build a booted universe over a fresh simulated cluster."""
    spec = ClusterSpec(n_nodes=n_nodes, **spec_kwargs)
    return Universe(Cluster(spec), MCAParams(params or {}))


@pytest.fixture
def universe() -> Universe:
    return make_universe()


def run_gen(kernel: Kernel, gen, name: str = "test"):
    """Spawn a generator as a thread and run the kernel to completion."""
    thread = kernel.spawn(gen, name=name)
    return kernel.run_until_complete(thread)
