"""Unit tests for the Modular Component Architecture."""

import pytest

from repro.mca.component import Component, component_of
from repro.mca.framework import Framework
from repro.mca.params import MCAParams
from repro.mca.registry import FrameworkRegistry, default_registry
from repro.util.errors import ComponentNotFoundError, ComponentSelectError


@component_of("demo", "alpha", priority=10)
class Alpha(Component):
    pass


@component_of("demo", "beta", priority=20)
class Beta(Component):
    pass


@component_of("demo", "picky", priority=99)
class Picky(Component):
    def query(self, context=None):
        return context == "special"


class TestMCAParams:
    def test_set_get_roundtrip(self):
        params = MCAParams()
        params.set("a", 1)
        params.set("b", "text")
        params.set("c", True)
        assert params.get("a") == "1"
        assert params.get_int("a") == 1
        assert params.get("b") == "text"
        assert params.get_bool("c") is True

    def test_defaults(self):
        params = MCAParams()
        assert params.get("missing") is None
        assert params.get_int("missing", 7) == 7
        assert params.get_float("missing", 1.5) == 1.5
        assert params.get_bool("missing", True) is True
        assert params.get_list("missing", ["x"]) == ["x"]

    def test_bool_parsing(self):
        params = MCAParams({"a": "yes", "b": "0", "c": "ON", "d": "off"})
        assert params.get_bool("a") and params.get_bool("c")
        assert not params.get_bool("b") and not params.get_bool("d")

    def test_list_parsing(self):
        params = MCAParams({"btl": "tcp, sm ,ib"})
        assert params.get_list("btl") == ["tcp", "sm", "ib"]

    def test_bad_int_raises(self):
        params = MCAParams({"n": "abc"})
        with pytest.raises(ValueError):
            params.get_int("n")

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError):
            MCAParams().set("", 1)

    def test_dict_roundtrip_and_copy(self):
        params = MCAParams({"x": "1", "y": "z"})
        clone = MCAParams.from_dict(params.to_dict())
        assert clone == params
        copied = params.copy()
        copied.set("x", "2")
        assert params.get("x") == "1"

    def test_container_protocol(self):
        params = MCAParams({"x": 1})
        assert "x" in params and "y" not in params
        assert len(params) == 1
        assert list(params) == ["x"]


class TestFramework:
    def _framework(self) -> Framework:
        fw: Framework = Framework("demo")
        fw.register(Alpha)
        fw.register(Beta)
        fw.register(Picky)
        return fw

    def test_priority_selection(self):
        fw = self._framework()
        winner = fw.open(MCAParams())
        assert winner.name == "beta"  # picky declines, beta beats alpha
        assert winner.is_open

    def test_forced_selection(self):
        fw = self._framework()
        winner = fw.open(MCAParams({"demo": "alpha"}))
        assert winner.name == "alpha"

    def test_forced_unknown_component(self):
        fw = self._framework()
        with pytest.raises(ComponentNotFoundError):
            fw.open(MCAParams({"demo": "nope"}))

    def test_forced_unavailable_component(self):
        fw = self._framework()
        with pytest.raises(ComponentSelectError):
            fw.open(MCAParams({"demo": "picky"}))

    def test_query_context_unlocks_component(self):
        fw = self._framework()
        winner = fw.open(MCAParams(), context="special")
        assert winner.name == "picky"

    def test_module_requires_open(self):
        fw = self._framework()
        with pytest.raises(ComponentSelectError):
            _ = fw.module
        fw.open(MCAParams())
        assert fw.module.name == "beta"

    def test_close(self):
        fw = self._framework()
        fw.open(MCAParams())
        fw.close()
        assert not fw.is_open

    def test_duplicate_registration_rejected(self):
        fw: Framework = Framework("demo")
        fw.register(Alpha)
        with pytest.raises(ValueError):
            fw.register(Alpha)

    def test_open_all_and_include_list(self):
        fw = self._framework()
        every = fw.open_all(MCAParams())
        assert [c.name for c in every] == ["beta", "alpha"]
        subset = fw.open_all(MCAParams({"demo": "alpha"}))
        assert [c.name for c in subset] == ["alpha"]

    def test_open_all_empty_is_error(self):
        fw: Framework = Framework("demo")
        fw.register(Picky)
        with pytest.raises(ComponentSelectError):
            fw.open_all(MCAParams())


class TestComponent:
    def test_param_helper_uses_namespaced_key(self):
        comp = Alpha(MCAParams({"demo_alpha_knob": "42"}))
        assert comp.param("knob") == "42"
        assert comp.param("missing", "d") == "d"

    def test_ft_event_default_noop(self):
        Alpha().ft_event(1)  # must not raise

    def test_factory_without_name_rejected(self):
        fw: Framework = Framework("demo")
        with pytest.raises(ValueError):
            fw.register(Component)


class TestRegistry:
    def test_define_and_lookup(self):
        reg = FrameworkRegistry()
        reg.define("demo")
        reg.add_component("demo", Alpha)
        assert "demo" in reg
        assert reg.framework("demo").component_names == ["alpha"]

    def test_duplicate_define_rejected(self):
        reg = FrameworkRegistry()
        reg.define("demo")
        with pytest.raises(ValueError):
            reg.define("demo")

    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            FrameworkRegistry().framework("nope")

    def test_default_registry_has_paper_frameworks(self):
        reg = default_registry()
        for name in ("crs", "snapc", "filem", "plm", "pml", "btl", "crcp", "coll"):
            assert name in reg, name

    def test_default_registry_component_sets(self):
        reg = default_registry()
        assert set(reg.framework("crs").component_names) == {"simcr", "self", "none"}
        assert set(reg.framework("crcp").component_names) == {
            "coord",
            "none",
            "twophase",
        }
        assert set(reg.framework("btl").component_names) == {"tcp", "ib", "sm"}
        assert set(reg.framework("filem").component_names) == {"rsh", "shared"}
        assert set(reg.framework("snapc").component_names) == {"full", "none"}
