"""Tests for the ORTE runtime: OOB/RML, universe boot, PLM, FILEM."""

import pytest

from repro.orte.oob import TAG_PS_REPLY, TAG_PS_REQUEST
from repro.util.errors import NetworkError
from repro.util.ids import ProcessName, daemon_name, hnp_name
from tests.conftest import make_universe, run_gen


class TestUniverseBoot:
    def test_hnp_and_orteds_exist(self, universe):
        assert universe.hnp is not None
        assert universe.lookup(hnp_name()) is not None
        for i in range(4):
            assert universe.lookup(daemon_name(i)) is not None

    def test_one_orted_per_node(self, universe):
        assert set(universe.orteds) == {n.name for n in universe.cluster.nodes}

    def test_jobids_monotonic(self, universe):
        assert universe.new_jobid() == 1
        assert universe.new_jobid() == 2

    def test_tool_names_unique(self, universe):
        a, b = universe.new_tool_name(), universe.new_tool_name()
        assert a != b and a.jobid == b.jobid == 999

    def test_lookup_dead_process_returns_none(self, universe):
        proc = universe.lookup(daemon_name(0))
        proc.kill()
        assert universe.lookup(daemon_name(0)) is None

    def test_hnp_frameworks_open(self, universe):
        assert universe.hnp.plm.name == "rsh"
        assert universe.hnp.snapc.name == "full"
        assert universe.hnp.filem.name == "rsh"

    def test_param_forced_filem(self):
        universe = make_universe(2, params={"filem": "shared"})
        assert universe.hnp.filem.name == "shared"


class TestRML:
    def test_send_recv_between_daemons(self, universe):
        hnp_rml = universe.hnp.rml
        orted = universe.orteds["node01"]

        def sender():
            yield from hnp_rml.send(orted.proc.name, "test.tag", {"v": 1})

        def receiver():
            sender_name, payload = yield from orted.rml.recv("test.tag")
            return sender_name, payload

        universe.kernel.spawn(sender(), "s")
        thread = universe.kernel.spawn(receiver(), "r")
        universe.kernel.run()
        name, payload = thread.result
        assert name == hnp_name()
        assert payload == {"v": 1}

    def test_send_to_unknown_raises(self, universe):
        def main():
            yield from universe.hnp.rml.send(ProcessName(77, 5), "t", {})

        with pytest.raises(NetworkError):
            run_gen(universe.kernel, main())

    def test_concurrent_rpcs_do_not_cross(self, universe):
        """Two in-flight RPCs on the same reply tag must each get their
        own reply (regression: reply crossing deadlocked gathers)."""
        hnp = universe.hnp
        replies = {}

        def client(index, node):
            orted = universe.orteds[node]
            _, reply = yield from hnp.rml.rpc(
                orted.proc.name, "echo.req", {"index": index}, "echo.rep"
            )
            replies[index] = reply["index"]

        def server(node):
            orted = universe.orteds[node]
            sender, payload = yield from orted.rml.recv("echo.req")
            # Deliberately reply slowly and out of order.
            from repro.simenv.kernel import Delay

            yield Delay(0.05 if payload["index"] == 0 else 0.01)
            yield from orted.rml.send(
                sender, "echo.rep", orted.rml.reply_to(payload, payload)
            )

        for i, node in enumerate(["node00", "node01"]):
            universe.kernel.spawn(server(node), f"srv{i}")
            universe.kernel.spawn(client(i, node), f"cli{i}")
        universe.kernel.run()
        assert replies == {0: 0, 1: 1}

    def test_ps_request_reply(self, universe):
        def main():
            rml = universe.orteds["node00"].rml
            _, reply = yield from rml.rpc(hnp_name(), TAG_PS_REQUEST, {}, TAG_PS_REPLY)
            return reply

        reply = run_gen(universe.kernel, main())
        assert reply["jobs"] == []


class TestPLM:
    def test_rsh_default(self, universe):
        assert universe.hnp.plm.name == "rsh"
        assert universe.hnp.plm.per_node_cost_s > 0

    def test_slurm_selected_with_allocation(self):
        universe = make_universe(2, params={"plm_slurm_jobid": "123"})
        assert universe.hnp.plm.name == "slurm"

    def test_slurm_cheaper_than_rsh(self):
        """Launching the same job under slurm finishes earlier."""
        times = {}
        for params in ({}, {"plm_slurm_jobid": "1"}):
            universe = make_universe(4, params=params)
            from repro.tools.api import ompi_run

            ompi_run(universe, "ring", 4, args={"laps": 1})
            times[universe.hnp.plm.name] = universe.kernel.now
        assert times["slurm"] < times["rsh"]


class TestFILEM:
    def _seed_local(self, universe, node_name, tree, files):
        fs = universe.cluster.node(node_name).local_fs
        for name, data in files.items():
            fs.poke(f"{tree}/{name}", data)
        return fs

    def test_rsh_gather_moves_to_stable(self, universe):
        self._seed_local(universe, "node01", "/ckpt/r1", {"image.pkl": b"I" * 1000})
        hnp = universe.hnp

        def main():
            moved = yield from hnp.filem.gather(
                hnp, [("node01", "/ckpt/r1", "/snapshots/g/rank1")]
            )
            return moved

        moved = run_gen(universe.kernel, main())
        assert moved == 1000
        assert universe.cluster.stable_fs.peek("/snapshots/g/rank1/image.pkl") == b"I" * 1000

    def test_rsh_gather_parallel_entries(self, universe):
        for i in range(4):
            self._seed_local(universe, f"node0{i}", f"/c/r{i}", {"f": b"x" * 100})
        hnp = universe.hnp
        entries = [(f"node0{i}", f"/c/r{i}", f"/g/rank{i}") for i in range(4)]

        def main():
            moved = yield from hnp.filem.gather(hnp, entries)
            return moved

        assert run_gen(universe.kernel, main()) == 400
        for i in range(4):
            assert universe.cluster.stable_fs.exists(f"/g/rank{i}/f")

    def test_rsh_broadcast_preloads(self, universe):
        universe.cluster.stable_fs.poke("/g/rank2/image.pkl", b"IMG")
        hnp = universe.hnp

        def main():
            moved = yield from hnp.filem.broadcast(
                hnp, [("node03", "/g/rank2", "/restart/r2")]
            )
            return moved

        assert run_gen(universe.kernel, main()) == 3
        assert universe.cluster.node("node03").local_fs.peek("/restart/r2/image.pkl") == b"IMG"

    def test_remove_cleans_local_trees(self, universe):
        fs = self._seed_local(universe, "node02", "/tmp/ckpt", {"a": b"1", "b": b"2"})
        hnp = universe.hnp

        def main():
            count = yield from hnp.filem.remove(hnp, [("node02", "/tmp/ckpt")])
            return count

        assert run_gen(universe.kernel, main()) == 2
        assert fs.list_tree("/tmp") == []

    def test_remove_skips_dead_nodes(self, universe):
        self._seed_local(universe, "node02", "/tmp/x", {"a": b"1"})
        universe.cluster.node("node02").crash()
        hnp = universe.hnp

        def main():
            count = yield from hnp.filem.remove(hnp, [("node02", "/tmp/x")])
            return count

        assert run_gen(universe.kernel, main()) == 0

    def test_gather_from_dead_node_fails(self, universe):
        self._seed_local(universe, "node01", "/c/r", {"f": b"z"})
        universe.cluster.node("node01").crash()
        hnp = universe.hnp

        def main():
            yield from hnp.filem.gather(hnp, [("node01", "/c/r", "/g/r")])

        from repro.util.errors import VFSError

        with pytest.raises(VFSError):
            run_gen(universe.kernel, main())

    def test_shared_component_direct_stable(self):
        universe = make_universe(2, params={"filem": "shared"})
        hnp = universe.hnp
        assert hnp.filem.wants_direct_stable
        universe.cluster.stable_fs.poke("/snapshots/g/rank0/image.pkl", b"x")

        def main():
            moved = yield from hnp.filem.gather(
                hnp, [("node00", "/snapshots/g/rank0", "/snapshots/g/rank0")]
            )
            return moved

        assert run_gen(universe.kernel, main()) == 0

    def test_shared_gather_missing_tree_fails(self):
        universe = make_universe(2, params={"filem": "shared"})
        hnp = universe.hnp

        def main():
            yield from hnp.filem.gather(hnp, [("node00", "/nope", "/also-nope")])

        from repro.util.errors import VFSError

        with pytest.raises(VFSError):
            run_gen(universe.kernel, main())
