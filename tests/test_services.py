"""Tests for the support services (periodic checkpointer, ompi-info),
the CG workload, and chained checkpoint/restart cycles."""

import numpy as np
import pytest

from repro.tools.api import ompi_restart, ompi_run
from repro.tools.info import collect_info, component_exists, render_info
from repro.tools.scheduler import PeriodicCheckpointer
from tests.conftest import make_universe


class TestPeriodicCheckpointer:
    def test_takes_checkpoints_on_cadence(self):
        universe = make_universe(4)
        job = ompi_run(
            universe,
            "churn",
            4,
            args={"loops": 80, "compute_s": 0.01},
            wait=False,
        )
        service = PeriodicCheckpointer(universe, job.jobid, interval_s=0.25)
        service.start(first_at=0.1)
        universe.run_job_to_completion(job)
        assert job.state.value == "finished"
        assert len(service.taken) >= 2
        assert service.taken == [ref.path for ref in job.snapshots]
        assert not service.active  # stopped itself when the job ended

    def test_max_checkpoints_cap(self):
        universe = make_universe(2)
        job = ompi_run(
            universe,
            "churn",
            2,
            args={"loops": 100, "compute_s": 0.01},
            wait=False,
        )
        service = PeriodicCheckpointer(
            universe, job.jobid, interval_s=0.15, max_checkpoints=2
        )
        service.start(first_at=0.1)
        universe.run_job_to_completion(job)
        assert len(service.taken) == 2

    def test_latest_snapshot_restarts_exactly(self):
        args = {"loops": 60, "compute_s": 0.01, "msgs_per_loop": 2}
        base = ompi_run(make_universe(2), "churn", 2, args=args).results
        universe = make_universe(2)
        job = ompi_run(universe, "churn", 2, args=args, wait=False)
        service = PeriodicCheckpointer(universe, job.jobid, interval_s=0.2)
        service.start(first_at=0.15)
        universe.run_job_to_completion(job)
        assert service.taken
        new_job = ompi_restart(universe, job.snapshots[-1])
        assert new_job.results == base

    def test_rejects_bad_interval(self):
        universe = make_universe(2)
        with pytest.raises(ValueError):
            PeriodicCheckpointer(universe, 1, interval_s=0)

    def test_stops_for_unknown_job(self):
        universe = make_universe(2)
        service = PeriodicCheckpointer(universe, 999, interval_s=0.1)
        service.start(first_at=0.01)
        universe.kernel.run()
        assert service.taken == []
        assert not service.active


class TestInfo:
    def test_collect_covers_all_frameworks(self):
        infos = {info.name: info for info in collect_info()}
        assert set(infos) == {
            "btl", "coll", "crcp", "crs", "filem", "plm", "pml", "snapc",
        }
        assert "simcr" in infos["crs"].components
        assert "coord" in infos["crcp"].components

    def test_component_exists(self):
        assert component_exists("crs", "self")
        assert not component_exists("crs", "blcr2")
        assert not component_exists("nope", "x")

    def test_render_is_complete_text(self):
        text = render_info()
        for needle in (
            "crs: none, self, simcr",
            "pml_ob1_eager_limit",
            "orte_errmgr_autorecover",
        ):
            assert needle in text

    def test_documented_params_cover_real_defaults(self):
        """Every documented component name must actually exist."""
        from repro.tools.info import KNOWN_PARAMS

        for framework, params in KNOWN_PARAMS.items():
            forced = [p for p in params if p[0] == framework]
            assert forced, framework
            default = forced[0][1]
            for comp in default.split(","):
                assert component_exists(framework, comp), (framework, comp)


class TestCG:
    def test_matches_dense_solver(self):
        n = 128
        job = ompi_run(
            make_universe(4),
            "cg",
            4,
            args={"n_global": n, "max_iters": 300, "tol": 1e-10},
        )
        matrix = 2 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
        expected = float(np.linalg.solve(matrix, np.ones(n)).sum())
        assert job.results[0]["checksum"] == pytest.approx(expected, rel=1e-8)

    def test_finite_termination(self):
        """CG on an n x n SPD system converges within n iterations."""
        job = ompi_run(
            make_universe(4),
            "cg",
            4,
            args={"n_global": 64, "max_iters": 200, "tol": 1e-12},
        )
        assert job.results[0]["iters"] <= 64

    @pytest.mark.parametrize("np_procs", [1, 2, 3, 4])
    def test_decomposition_invariant(self, np_procs):
        results = ompi_run(
            make_universe(4),
            "cg",
            np_procs,
            args={"n_global": 96, "max_iters": 200, "tol": 1e-10},
        ).results
        reference = ompi_run(
            make_universe(4),
            "cg",
            1,
            args={"n_global": 96, "max_iters": 200, "tol": 1e-10},
        ).results
        assert results[0]["checksum"] == pytest.approx(
            reference[0]["checksum"], rel=1e-9
        )

    def test_sync_checkpoint_mid_cg(self):
        args = {"n_global": 128, "max_iters": 300, "tol": 1e-10,
                "checkpoint_at_iter": 20}
        base = ompi_run(make_universe(4), "cg", 4, args={
            "n_global": 128, "max_iters": 300, "tol": 1e-10}).results
        universe = make_universe(4)
        job = ompi_run(universe, "cg", 4, args=args)
        assert job.state.value == "finished"
        assert len(job.snapshots) == 1
        assert job.results[0]["checksum"] == base[0]["checksum"]


class TestChainedRestarts:
    def test_checkpoint_restart_checkpoint_restart(self):
        """Two full halt/restart cycles reproduce the baseline exactly —
        the restored state must itself be checkpointable."""
        args = {"loops": 60, "compute_s": 0.01, "msgs_per_loop": 2,
                "payload_bytes": 2048}
        base = ompi_run(make_universe(2), "churn", 2, args=args).results

        from repro.tools.api import checkpoint_ref, ompi_checkpoint

        universe = make_universe(2)
        job = ompi_run(universe, "churn", 2, args=args, wait=False)
        h1 = ompi_checkpoint(universe, job.jobid, at=0.15, terminate=True, wait=False)
        universe.run_job_to_completion(job)
        assert job.state.value == "halted"

        # First restart; checkpoint-terminate it again further along.
        handle2 = ompi_restart(universe, checkpoint_ref(h1), wait=False)
        reply2 = handle2.wait_stepped()
        assert reply2["ok"]
        second = universe.job(reply2["jobid"])
        h2 = ompi_checkpoint(
            universe, second.jobid, at=universe.kernel.now + 0.25,
            terminate=True, wait=False,
        )
        universe.run_job_to_completion(second)
        assert second.state.value == "halted", h2.reply

        # Second restart runs to completion with baseline results.
        final = ompi_restart(universe, checkpoint_ref(h2))
        assert final.state.value == "finished"
        assert final.results == base

    def test_restarted_job_interval_numbering(self):
        """A restarted job numbers its own snapshots from 1 under its
        new jobid (fresh logical ordering, paper section 4)."""
        from repro.tools.api import checkpoint_ref, ompi_checkpoint

        universe = make_universe(2)
        args = {"loops": 80, "compute_s": 0.01}
        job = ompi_run(universe, "churn", 2, args=args, wait=False)
        h1 = ompi_checkpoint(universe, job.jobid, at=0.15, terminate=True, wait=False)
        universe.run_job_to_completion(job)
        handle = ompi_restart(universe, checkpoint_ref(h1), wait=False)
        reply = handle.wait_stepped()
        second = universe.job(reply["jobid"])
        h2 = ompi_checkpoint(
            universe, second.jobid, at=universe.kernel.now + 0.2, wait=False
        )
        universe.run_job_to_completion(second)
        assert h2.result()["ok"], h2.result()
        assert h2.result()["interval"] == 1
        assert f"ompi_global_snapshot_{second.jobid}.1" in h2.result()["snapshot"]
