"""E12 — kernel hot-path throughput on a 1000-node multi-job campaign.

The fleet-scale experiment behind the scheduler rework: a 1000-node
cluster runs four concurrent checkpointing jobs (periodic scheduler,
CAS staging, finely chunked images, autorecovery) through twelve
deterministic crash/recover waves, and the *same* campaign executes
under both kernel disciplines:

* ``fast`` — ready-deque resumes, native WaitAny/WaitAll, batched
  tree/chunk transfers, unique-blob CAS fetches (this PR).
* ``legacy`` — the pre-change discipline: every resume a heap-pushed
  closure, one watcher thread per combinator event, one kernel event
  per file/chunk moved, one CAS read per manifest entry.

Crashes are *state-triggered* rather than scheduled at absolute sim
times: a driver thread waits until every job lineage is a freshly
recovered incarnation with a committed snapshot, then kills one of its
compute nodes (never the HNP's).  Both disciplines therefore experience
identical campaigns — same jobs, same waves, same recoveries — even
though their sim-time trajectories differ, which makes wall-clock
directly comparable.

The speedup metric is the CPU-time ratio for completing that
identical campaign (legacy ``run_cpu_s`` / fast ``run_cpu_s``) — the
simulator is one CPU-bound thread, so process time is the work done and
is immune to co-tenant scheduling noise that makes wall-clock flaky on
shared runners (wall is still reported).  Raw events/sec is *not* the
metric: the legacy kernel posts ~40x more events for the same campaign
(per-chunk transfers, watcher threads, duplicate CAS reads), so its
events/sec is high while its events are make-work.  Both event counts
are reported; the per-mode counts are also exact-deterministic and
double as a cross-run determinism check.

CI enforces two gates (see ``BENCH_E12.json``):

* acceptance — fast must complete the campaign >= ``MIN_SPEEDUP`` x
  faster than the pre-change discipline;
* regression — fast events/sec must stay above ``REGRESSION_FLOOR`` of
  the committed ``BASELINE_EVENTS_PER_SEC`` (set conservatively below
  developer-laptop numbers to absorb runner-class variance).
"""

from benchmarks.conftest import kernel_event_throughput
from repro.bench.harness import Row, format_table, fresh_universe, write_bench_json
from repro.simenv.campaign import follow_lineage
from repro.simenv.kernel import DeadlockError, Delay, KernelStats
from repro.tools.api import ompi_run

N_NODES = 1000
N_JOBS = 4
NP = 8
#: crash/recover waves the fault driver puts every job through
WAVES = 20
CHURN = {"loops": 100, "compute_s": 0.01, "state_bytes": 64 * 1024}
PARAMS = {
    "orte_errmgr_autorecover": "1",
    "snapc_full_checkpoint_every": "0.3",
    "snapc_full_cas": "1",
    # finely chunked images stress the per-chunk paths the fast
    # discipline batches (2048 chunks per 64 KiB rank image)
    "crs_base_chunk_bytes": "32",
    "orte_errmgr_max_recoveries": str(WAVES + 2),
}

#: committed fast-sweep throughput baseline (events per CPU-second);
#: deliberately below typical developer-machine numbers (~15k/s) so
#: slower CI runner classes pass, while a >30% regression of the kernel
#: itself still trips the gate
BASELINE_EVENTS_PER_SEC = 8_000.0
REGRESSION_FLOOR = 0.7
#: required wall-clock advantage over the pre-change discipline
MIN_SPEEDUP = 3.0


def fault_driver(universe, lineages):
    """Crash one compute node per wave, each time every lineage has
    settled into a *new* incarnation holding a committed snapshot.

    Polling sim state on a fixed 0.02s tick keeps the injection fully
    deterministic per discipline while adapting to each discipline's
    own sim-time trajectory.  The HNP's node is never a victim — that
    would kill recovery itself.  Returns ``[(sim_time, node), ...]``.
    """
    kernel = universe.kernel
    head = universe.hnp.proc.node.name
    crashed = []
    last_max_jobid = 0
    for _wave in range(WAVES):
        while True:
            if not any(t.alive for t in lineages):
                return crashed  # campaign over (or recovery exhausted)
            live = [
                j
                for j in universe.jobs.values()
                if j.state.value in ("running", "checkpointing")
            ]
            if (
                len(live) == N_JOBS
                and all(j.snapshots for j in live)
                and min(j.jobid for j in live) > last_max_jobid
            ):
                break
            yield Delay(0.02)
        yield Delay(0.05)
        live = [
            j
            for j in universe.jobs.values()
            if j.state.value in ("running", "checkpointing")
        ]
        if not live:
            continue
        last_max_jobid = max(j.jobid for j in universe.jobs.values())
        victim = next(
            node
            for rank in range(NP - 1, -1, -1)
            for node in [live[0].placements[rank]]
            if node != head
        )
        universe.cluster.failures.crash_node_now(victim)
        crashed.append((round(kernel.now, 4), victim))
    return crashed


def fleet_sweep(fast_paths: bool) -> dict:
    """One full campaign; returns kernel stats + outcome summary."""
    universe = fresh_universe(N_NODES, PARAMS, fast_paths=fast_paths)
    kernel = universe.kernel
    # Measure the campaign, not the 1000-orted boot both modes share.
    kernel.stats = KernelStats()
    jobs = [
        ompi_run(universe, "churn", NP, args=CHURN, wait=False)
        for _ in range(N_JOBS)
    ]
    lineages = [
        kernel.spawn(follow_lineage(universe, job), name=f"lineage-{job.jobid}")
        for job in jobs
    ]
    driver = kernel.spawn(fault_driver(universe, lineages), name="fault-driver")
    kernel.run_until_complete(lineages)
    finals = [thread.result for thread in lineages]
    try:
        kernel.run()  # drain in-flight background staging
    except DeadlockError:
        pass
    stats = kernel.stats_snapshot()
    return {
        "fast_paths": fast_paths,
        "sim_time_s": kernel.now,
        "jobs_completed": sum(
            1 for job in finals if job.state.value == "finished"
        ),
        "jobs": N_JOBS,
        "restarts": len(universe.hnp.errmgr.recoveries),
        "crashes": [
            {"at": at, "node": node} for at, node in (driver.result or [])
        ],
        "stats": stats,
    }


def test_e12_fleet_sweep_throughput(benchmark):
    def run():
        return {
            "fast": fleet_sweep(True),
            "legacy": fleet_sweep(False),
            "micro_ready": kernel_event_throughput(fast_paths=True),
            "micro_heap": kernel_event_throughput(
                fast_paths=False, zero_delay=False
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    fast, legacy = results["fast"], results["legacy"]
    fast_eps = fast["stats"]["events_per_cpu_sec"]
    speedup = fast["stats"]["run_cpu_s"] and (
        legacy["stats"]["run_cpu_s"] / fast["stats"]["run_cpu_s"]
    )
    event_ratio = legacy["stats"]["events"] / max(1, fast["stats"]["events"])

    rows = [
        Row(
            label,
            {
                "events": r["stats"]["events"],
                "cpu (s)": r["stats"]["run_cpu_s"],
                "wall (s)": r["stats"]["run_wall_s"],
                "events/s": r["stats"]["events_per_cpu_sec"],
                "ready hits": r["stats"]["ready_hits"],
                "threads": r["stats"]["threads_spawned"],
                "sim (s)": r["sim_time_s"],
                "done": f"{r['jobs_completed']}/{r['jobs']}",
            },
        )
        for label, r in (("fast", fast), ("legacy", legacy))
    ]
    print()
    print(
        format_table(
            f"E12: {N_NODES}-node fleet sweep ({N_JOBS} jobs x np={NP}, "
            f"{WAVES} crash waves) — speedup {speedup:.2f}x, "
            f"{event_ratio:.1f}x fewer events",
            ["events", "cpu (s)", "wall (s)", "events/s", "ready hits",
             "threads", "sim (s)", "done"],
            rows,
        )
    )
    write_bench_json(
        "BENCH_E12.json",
        {
            "experiment": "e12_kernel_throughput",
            "n_nodes": N_NODES,
            "n_jobs": N_JOBS,
            "np": NP,
            "waves": WAVES,
            "app_args": CHURN,
            "mca_params": PARAMS,
            "fast": fast,
            "legacy": legacy,
            "speedup": speedup,
            "event_ratio": event_ratio,
            "micro_ready_path": results["micro_ready"],
            "micro_heap_path": results["micro_heap"],
            "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
            "regression_floor": REGRESSION_FLOOR,
            "regression_ok": fast_eps
            >= BASELINE_EVENTS_PER_SEC * REGRESSION_FLOOR,
        },
    )

    # both disciplines must run the identical campaign to completion
    assert fast["jobs_completed"] == N_JOBS, fast
    assert legacy["jobs_completed"] == N_JOBS, legacy
    assert len(fast["crashes"]) == WAVES, fast["crashes"]
    assert len(legacy["crashes"]) == WAVES, legacy["crashes"]
    assert fast["restarts"] == legacy["restarts"] == WAVES * N_JOBS
    # the legacy discipline spawns watcher threads; the fast one must not
    assert fast["stats"]["threads_spawned"] < legacy["stats"]["threads_spawned"]
    # the point of the rework: the same campaign needs far fewer events
    assert event_ratio >= 10.0, f"event ratio only {event_ratio:.1f}x"
    # acceptance: the reworked hot path completes the identical campaign
    # >= 3x faster than the pre-change kernel
    assert speedup >= MIN_SPEEDUP, (
        f"fast={fast['stats']['run_cpu_s']:.2f}s CPU "
        f"legacy={legacy['stats']['run_cpu_s']:.2f}s CPU "
        f"speedup={speedup:.2f}x < {MIN_SPEEDUP}x"
    )
    # regression gate against the committed baseline (CI fails >30% drop)
    assert fast_eps >= BASELINE_EVENTS_PER_SEC * REGRESSION_FLOOR, (
        f"events/sec regressed: {fast_eps:,.0f} < "
        f"{REGRESSION_FLOOR:.0%} of committed baseline "
        f"{BASELINE_EVENTS_PER_SEC:,.0f}"
    )
