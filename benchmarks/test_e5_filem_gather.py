"""E5 — FILEM snapshot aggregation cost (paper sections 5.2, 6.2).

Measured: simulated checkpoint latency versus per-rank image size, for
the ``rsh`` component (stage on local disk, then remote-copy to stable
storage) against the ``shared`` component (write directly to the
shared filesystem).  Expected shape: both grow linearly with image
size; ``rsh`` pays an extra network copy of every byte plus per-tree
session costs, so it grows faster.
"""

from repro.bench.harness import Row, format_table, run_and_checkpoint

SIZES = [1 << 16, 1 << 20, 4 << 20]


def measure(filem: str, state_bytes: int) -> float:
    universe, m = run_and_checkpoint(
        "churn",
        4,
        {"loops": 60, "compute_s": 0.01, "state_bytes": state_bytes},
        at=0.1,
        n_nodes=4,
        params={"filem": filem},
    )
    assert m["ok"], m["error"]
    return m["sim_latency_s"]


def test_e5_gather_cost_vs_image_size(benchmark):
    def run():
        out = {}
        for filem in ("rsh", "shared"):
            out[filem] = {size: measure(filem, size) for size in SIZES}
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for size in SIZES:
        rows.append(
            Row(
                f"{size >> 10} KiB/rank",
                {
                    "rsh (sim ms)": results["rsh"][size] * 1e3,
                    "shared (sim ms)": results["shared"][size] * 1e3,
                    "rsh/shared": results["rsh"][size] / results["shared"][size],
                },
            )
        )
    print()
    print(
        format_table(
            "E5: checkpoint latency vs image size, FILEM rsh vs shared",
            ["rsh (sim ms)", "shared (sim ms)", "rsh/shared"],
            rows,
        )
    )
    # Both grow with size; rsh costs more at every size and its
    # advantage gap widens with bytes moved.
    for filem in ("rsh", "shared"):
        assert results[filem][SIZES[-1]] > results[filem][SIZES[0]]
    for size in SIZES:
        assert results["rsh"][size] > results["shared"][size]
    assert (
        results["rsh"][SIZES[-1]] - results["shared"][SIZES[-1]]
        > results["rsh"][SIZES[0]] - results["shared"][SIZES[0]]
    )
