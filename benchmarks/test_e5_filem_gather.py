"""E5 — FILEM snapshot aggregation cost (paper sections 5.2, 6.2).

Two measurements, both persisted into ``BENCH_E5.json``:

* **App-blocked vs stable-commit latency** per image size, ``rsh``
  (stage on local disk, background remote-copy to stable storage)
  against ``shared`` (write directly to the shared filesystem).  With
  asynchronous staging the checkpoint reply returns once the local
  snapshots are written, so the app-blocked window no longer charges
  the remote copy: ``rsh`` app-blocked time sits within ~1.2x of
  ``shared`` while its end-to-end commit latency still pays every
  remotely moved byte.
* **Bytes moved per interval kind**: with incremental checkpointing on
  (``snapc_full_interval_every``), a delta interval of a mostly-clean
  image moves a small fraction of the bytes of a full one.
"""

from repro.bench.harness import (
    Row,
    format_table,
    fresh_universe,
    run_and_checkpoint,
    write_bench_json,
)
from repro.obs.report import filter_spans
from repro.tools.api import ompi_checkpoint, ompi_run

SIZES = [1 << 16, 1 << 20, 4 << 20]


def measure(filem: str, state_bytes: int) -> dict:
    universe, m = run_and_checkpoint(
        "churn",
        4,
        {"loops": 60, "compute_s": 0.01, "state_bytes": state_bytes},
        at=0.1,
        n_nodes=4,
        params={"filem": filem},
        trace=True,
    )
    assert m["ok"], m["error"]
    transfers = filter_spans(m["trace"], name="filem.transfer", op="stage_out")
    return {
        "app_blocked_s": m["app_blocked_s"],
        "stable_commit_s": m["stable_commit_s"],
        "transfers": len(transfers),
        "moved_bytes": sum(s["attrs"].get("bytes", 0) for s in transfers),
        "transfer_s": sum(s["dur"] for s in transfers),
    }


def measure_incremental(state_bytes: int = 4 << 20) -> dict:
    """Three checkpoints of one job: full, delta, delta (rsh FILEM)."""
    universe = fresh_universe(
        4,
        {
            "filem": "rsh",
            "snapc_full_interval_every": 3,
            "obs_trace_enabled": "1",
        },
    )
    job = ompi_run(
        universe,
        "churn",
        4,
        args={"loops": 80, "compute_s": 0.01, "state_bytes": state_bytes},
        wait=False,
    )
    handles = [
        ompi_checkpoint(universe, job.jobid, at=at, wait=False)
        for at in (0.1, 0.3, 0.5)
    ]
    universe.run_job_to_completion(job)
    for handle in handles:
        assert handle.result().get("ok"), handle.result().get("error")
    trace = universe.kernel.tracer.to_dict()
    intervals = []
    for span in filter_spans(trace, name="snapc.stage"):
        intervals.append(
            {
                "interval": span["attrs"].get("interval"),
                "kind": span["attrs"].get("kind"),
                "moved_bytes": span["attrs"].get("bytes", 0),
            }
        )
    intervals.sort(key=lambda e: e["interval"])
    return {"intervals": intervals}


def test_e5_gather_cost_vs_image_size(benchmark):
    def run():
        out = {}
        for filem in ("rsh", "shared"):
            out[filem] = {size: measure(filem, size) for size in SIZES}
        out["incremental"] = measure_incremental()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for size in SIZES:
        rsh, shared = results["rsh"][size], results["shared"][size]
        rows.append(
            Row(
                f"{size >> 10} KiB/rank",
                {
                    "rsh blocked (ms)": rsh["app_blocked_s"] * 1e3,
                    "shared blocked (ms)": shared["app_blocked_s"] * 1e3,
                    "blocked ratio": rsh["app_blocked_s"]
                    / shared["app_blocked_s"],
                    "rsh commit (ms)": rsh["stable_commit_s"] * 1e3,
                    "shared commit (ms)": shared["stable_commit_s"] * 1e3,
                },
            )
        )
    print()
    print(
        format_table(
            "E5: app-blocked vs stable-commit latency, FILEM rsh vs shared",
            [
                "rsh blocked (ms)",
                "shared blocked (ms)",
                "blocked ratio",
                "rsh commit (ms)",
                "shared commit (ms)",
            ],
            rows,
        )
    )
    intervals = results["incremental"]["intervals"]
    print()
    print(
        format_table(
            "E5b: bytes moved per interval kind (rsh, every 3rd full)",
            ["kind", "moved bytes"],
            [
                Row(
                    f"interval {e['interval']}",
                    {"kind": e["kind"], "moved bytes": e["moved_bytes"]},
                )
                for e in intervals
            ],
        )
    )
    write_bench_json(
        "BENCH_E5.json",
        {
            "sizes": {
                str(size): {
                    filem: {
                        "app_blocked_s": results[filem][size]["app_blocked_s"],
                        "stable_commit_s": results[filem][size][
                            "stable_commit_s"
                        ],
                        "moved_bytes": results[filem][size]["moved_bytes"],
                    }
                    for filem in ("rsh", "shared")
                }
                for size in SIZES
            },
            "incremental_intervals": intervals,
        },
    )

    # Asynchronous staging takes the remote copy off the app's critical
    # path: at the largest image the rsh app-blocked window is within
    # 1.2x of shared's, while its end-to-end commit latency still pays
    # every remotely moved byte.
    big = SIZES[-1]
    assert (
        results["rsh"][big]["app_blocked_s"]
        <= 1.2 * results["shared"][big]["app_blocked_s"]
    )
    for size in SIZES:
        assert (
            results["rsh"][size]["stable_commit_s"]
            > results["shared"][size]["stable_commit_s"]
        )
        assert (
            results["rsh"][size]["stable_commit_s"]
            > results["rsh"][size]["app_blocked_s"]
        )
    # The trace exposes the mechanism: rsh remote-copies one snapshot
    # tree per node and its per-copy bytes grow with image size;
    # shared never issues a remote transfer at all.
    for size in SIZES:
        assert results["rsh"][size]["transfers"] > 0
        assert results["shared"][size]["transfers"] == 0
    assert (
        results["rsh"][SIZES[-1]]["moved_bytes"]
        > results["rsh"][SIZES[0]]["moved_bytes"]
    )
    # Incremental: interval 1 is full, 2 and 3 are deltas of a mostly
    # clean image (churn dirties one byte per loop), so each delta
    # moves well under half of the full interval's bytes.
    assert [e["kind"] for e in intervals] == ["full", "delta", "delta"]
    full_bytes = intervals[0]["moved_bytes"]
    for delta in intervals[1:]:
        assert delta["moved_bytes"] < 0.5 * full_bytes
