"""E5 — FILEM snapshot aggregation cost (paper sections 5.2, 6.2).

Measured: simulated checkpoint latency versus per-rank image size, for
the ``rsh`` component (stage on local disk, then remote-copy to stable
storage) against the ``shared`` component (write directly to the
shared filesystem).  Expected shape: both grow linearly with image
size; ``rsh`` pays an extra network copy of every byte plus per-tree
session costs, so it grows faster.
"""

from repro.bench.harness import Row, format_table, run_and_checkpoint
from repro.obs.report import filter_spans

SIZES = [1 << 16, 1 << 20, 4 << 20]


def measure(filem: str, state_bytes: int) -> dict:
    universe, m = run_and_checkpoint(
        "churn",
        4,
        {"loops": 60, "compute_s": 0.01, "state_bytes": state_bytes},
        at=0.1,
        n_nodes=4,
        params={"filem": filem},
        trace=True,
    )
    assert m["ok"], m["error"]
    transfers = filter_spans(m["trace"], name="filem.transfer", op="gather")
    return {
        "sim_latency_s": m["sim_latency_s"],
        "transfers": len(transfers),
        "moved_bytes": sum(s["attrs"].get("bytes", 0) for s in transfers),
        "transfer_s": sum(s["dur"] for s in transfers),
    }


def test_e5_gather_cost_vs_image_size(benchmark):
    def run():
        out = {}
        for filem in ("rsh", "shared"):
            out[filem] = {size: measure(filem, size) for size in SIZES}
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for size in SIZES:
        rows.append(
            Row(
                f"{size >> 10} KiB/rank",
                {
                    "rsh (sim ms)": results["rsh"][size]["sim_latency_s"] * 1e3,
                    "shared (sim ms)": results["shared"][size]["sim_latency_s"]
                    * 1e3,
                    "rsh/shared": results["rsh"][size]["sim_latency_s"]
                    / results["shared"][size]["sim_latency_s"],
                    "rsh copy (sim ms)": results["rsh"][size]["transfer_s"] * 1e3,
                },
            )
        )
    print()
    print(
        format_table(
            "E5: checkpoint latency vs image size, FILEM rsh vs shared",
            ["rsh (sim ms)", "shared (sim ms)", "rsh/shared", "rsh copy (sim ms)"],
            rows,
        )
    )
    # Both grow with size; rsh costs more at every size and its
    # advantage gap widens with bytes moved.
    for filem in ("rsh", "shared"):
        assert (
            results[filem][SIZES[-1]]["sim_latency_s"]
            > results[filem][SIZES[0]]["sim_latency_s"]
        )
    for size in SIZES:
        assert (
            results["rsh"][size]["sim_latency_s"]
            > results["shared"][size]["sim_latency_s"]
        )
    assert (
        results["rsh"][SIZES[-1]]["sim_latency_s"]
        - results["shared"][SIZES[-1]]["sim_latency_s"]
        > results["rsh"][SIZES[0]]["sim_latency_s"]
        - results["shared"][SIZES[0]]["sim_latency_s"]
    )
    # The trace exposes the mechanism: rsh remote-copies one snapshot
    # tree per node and its per-copy bytes grow with image size;
    # shared never issues a remote transfer at all.
    for size in SIZES:
        assert results["rsh"][size]["transfers"] > 0
        assert results["shared"][size]["transfers"] == 0
    assert (
        results["rsh"][SIZES[-1]]["moved_bytes"]
        > results["rsh"][SIZES[0]]["moved_bytes"]
    )
