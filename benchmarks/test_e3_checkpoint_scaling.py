"""E3 — checkpoint latency vs process count (Figure 1 as measurement).

The ``full`` SNAPC component is centralized: one global coordinator
fans the request to local coordinators and aggregates every local
snapshot through FILEM at the head node.  Measured: simulated time from
the tool's request to the global-snapshot-reference reply, versus np.
Expected shape: grows with np (aggregation through one coordinator).

The largest configuration also runs with the span recorder on and
reports where the time went — bookmark exchange, drain, quiesce, CRS
write, FILEM transfer — straight from the trace export.
"""

from repro.bench.harness import (
    PHASE_COLUMNS,
    Row,
    format_table,
    phase_table_rows,
    run_and_checkpoint,
)
from repro.obs.report import filter_spans

APP_ARGS = {"loops": 80, "compute_s": 0.01}


def measure(np_procs: int, n_nodes: int = 8, trace: bool = False) -> dict:
    universe, m = run_and_checkpoint(
        "churn", np_procs, APP_ARGS, at=0.1, n_nodes=n_nodes, trace=trace
    )
    assert m["ok"], m["error"]
    return m


def test_e3_checkpoint_latency_vs_np(benchmark):
    def run():
        # Trace only the largest run: the per-phase table explains the
        # top of the scaling curve.
        return {
            np_procs: measure(np_procs, trace=(np_procs == 32))
            for np_procs in (2, 4, 8, 16, 32)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    latencies = {np_procs: m["sim_latency_s"] for np_procs, m in results.items()}
    rows = [
        Row(f"np={np_procs}", {"ckpt latency (sim ms)": latency * 1e3})
        for np_procs, latency in latencies.items()
    ]
    print()
    print(
        format_table(
            "E3: centralized SNAPC checkpoint latency vs np",
            ["ckpt latency (sim ms)"],
            rows,
        )
    )
    trace = results[32]["trace"]
    print()
    print(
        format_table(
            "E3b: per-phase breakdown at np=32",
            PHASE_COLUMNS,
            phase_table_rows(trace),
        )
    )
    assert latencies[32] > latencies[2]
    # Aggregation through one coordinator: latency keeps growing as the
    # process count doubles.
    assert latencies[32] > 1.5 * latencies[4]
    # The trace accounts for every rank: one bookmark exchange and one
    # CRS image write per process, one fan-out at the coordinator.
    assert len(filter_spans(trace, name="crcp.bookmark")) == 32
    assert len(filter_spans(trace, name="crs.write")) == 32
    assert len(filter_spans(trace, name="snapc.fanout")) == 1
    assert len(filter_spans(trace, name="snapc.checkpoint")) == 1
