"""E3 — checkpoint latency vs process count (Figure 1 as measurement).

The ``full`` SNAPC component is centralized: one global coordinator
fans the request to local coordinators and aggregates every local
snapshot through FILEM at the head node.  Measured: simulated time from
the tool's request to the global-snapshot-reference reply, versus np.
Expected shape: grows with np (aggregation through one coordinator).
"""

from repro.bench.harness import Row, format_table, run_and_checkpoint

APP_ARGS = {"loops": 80, "compute_s": 0.01}


def measure(np_procs: int, n_nodes: int = 8) -> float:
    universe, m = run_and_checkpoint(
        "churn", np_procs, APP_ARGS, at=0.1, n_nodes=n_nodes
    )
    assert m["ok"], m["error"]
    return m["sim_latency_s"]


def test_e3_checkpoint_latency_vs_np(benchmark):
    def run():
        return {np_procs: measure(np_procs) for np_procs in (2, 4, 8, 16, 32)}

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        Row(f"np={np_procs}", {"ckpt latency (sim ms)": latency * 1e3})
        for np_procs, latency in latencies.items()
    ]
    print()
    print(
        format_table(
            "E3: centralized SNAPC checkpoint latency vs np",
            ["ckpt latency (sim ms)"],
            rows,
        )
    )
    assert latencies[32] > latencies[2]
    # Aggregation through one coordinator: latency keeps growing as the
    # process count doubles.
    assert latencies[32] > 1.5 * latencies[4]
