"""E3 — checkpoint latency vs process count (Figure 1 as measurement).

The ``full`` SNAPC component is centralized: one global coordinator
fans the request to local coordinators and aggregates every local
snapshot through FILEM at the head node.  Measured, versus np:

* **app-blocked latency** — the tool's request to the
  global-snapshot-reference reply, which under asynchronous staging
  returns as soon as every local snapshot is written and the job has
  resumed;
* **stable-commit latency** — request to the close of the background
  ``snapc.stage`` span, when the interval is durable on stable storage.

The centralized aggregation now lives entirely in the commit window:
stable-commit latency keeps growing as np doubles while the
app-blocked window stays nearly flat (coordination plus the local
snapshot write), sitting below the commit latency at every size.  The
largest configuration also reports the per-phase breakdown straight
from the trace export, and everything lands in ``BENCH_E3.json``.
"""

from repro.bench.harness import (
    PHASE_COLUMNS,
    Row,
    format_table,
    phase_table_rows,
    run_and_checkpoint,
    write_bench_json,
)
from repro.obs.report import filter_spans, summarize

APP_ARGS = {"loops": 80, "compute_s": 0.01, "state_bytes": 1 << 18}


def measure(np_procs: int, n_nodes: int = 8) -> dict:
    universe, m = run_and_checkpoint(
        "churn", np_procs, APP_ARGS, at=0.1, n_nodes=n_nodes, trace=True
    )
    assert m["ok"], m["error"]
    return m


def test_e3_checkpoint_latency_vs_np(benchmark):
    def run():
        return {np_procs: measure(np_procs) for np_procs in (2, 4, 8, 16, 32)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    blocked = {np_procs: m["app_blocked_s"] for np_procs, m in results.items()}
    commit = {np_procs: m["stable_commit_s"] for np_procs, m in results.items()}
    rows = [
        Row(
            f"np={np_procs}",
            {
                "app-blocked (sim ms)": blocked[np_procs] * 1e3,
                "stable-commit (sim ms)": commit[np_procs] * 1e3,
            },
        )
        for np_procs in results
    ]
    print()
    print(
        format_table(
            "E3: centralized SNAPC checkpoint latency vs np",
            ["app-blocked (sim ms)", "stable-commit (sim ms)"],
            rows,
        )
    )
    trace = results[32]["trace"]
    print()
    print(
        format_table(
            "E3b: per-phase breakdown at np=32",
            PHASE_COLUMNS,
            phase_table_rows(trace),
        )
    )
    write_bench_json(
        "BENCH_E3.json",
        {
            "per_np": {
                str(np_procs): {
                    "app_blocked_s": blocked[np_procs],
                    "stable_commit_s": commit[np_procs],
                }
                for np_procs in results
            },
            "phases_np32": summarize(trace),
        },
    )
    # Aggregation through one coordinator: durability latency keeps
    # growing as the process count doubles ...
    assert commit[32] > 1.5 * commit[4]
    assert commit[32] > 3 * commit[2]
    # ... but none of it blocks the app: the blocked window (local
    # write + coordination) is nearly flat across a 16x np spread.
    assert blocked[32] < 1.5 * blocked[2]
    # The interval is only durable after the background stage closes;
    # the app never waits for it.
    for np_procs in results:
        assert commit[np_procs] > blocked[np_procs]
    # The trace accounts for every rank: one bookmark exchange, one
    # chunk-hash pass, and one CRS image write per process; one fan-out
    # and one background stage at the coordinator.
    assert len(filter_spans(trace, name="crcp.bookmark")) == 32
    assert len(filter_spans(trace, name="crs.hash")) == 32
    assert len(filter_spans(trace, name="crs.write")) == 32
    assert len(filter_spans(trace, name="snapc.fanout")) == 1
    assert len(filter_spans(trace, name="snapc.checkpoint")) == 1
    assert len(filter_spans(trace, name="snapc.stage")) == 1
