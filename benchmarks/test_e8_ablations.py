"""E8 — ablations of design knobs the paper calls out.

* **Gather concurrency** (§5.2: "grouping remote file movement request
  as to avoid network congestion"): the rsh FILEM component's
  ``filem_rsh_max_concurrent`` trades per-transfer serialization
  against head-node NIC congestion.  With a single shared wire, total
  gather time is bounded below by bytes/bandwidth — so past a small
  degree, extra concurrency stops helping.
* **Collective algorithms** (§3.1's point-to-point layering makes them
  swappable): binomial vs linear broadcast latency vs np.
* **Eager limit** (ob1 protocol switch): simulated mid-size message
  latency vs the rendezvous threshold.
"""

from repro.bench.harness import Row, format_table, fresh_universe, run_and_checkpoint
from repro.tools.api import ompi_run


def gather_latency(concurrency: int) -> float:
    _universe, m = run_and_checkpoint(
        "churn",
        8,
        {"loops": 60, "compute_s": 0.01, "state_bytes": 1 << 20},
        at=0.1,
        n_nodes=8,
        params={"filem_rsh_max_concurrent": str(concurrency)},
    )
    assert m["ok"], m["error"]
    return m["sim_latency_s"]


def test_e8_gather_concurrency(benchmark):
    def run():
        return {c: gather_latency(c) for c in (1, 2, 4, 8)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        Row(f"concurrency={c}", {"ckpt latency (sim ms)": t * 1e3})
        for c, t in results.items()
    ]
    print()
    print(
        format_table(
            "E8a: FILEM rsh gather concurrency (8 ranks x 1 MiB)",
            ["ckpt latency (sim ms)"],
            rows,
        )
    )
    # Serial is worst; returns diminish once the shared wire saturates.
    assert results[1] > results[4]
    serial_gain = results[1] - results[2]
    saturated_gain = results[4] - results[8]
    assert serial_gain > saturated_gain


def bcast_time(algorithm: str, np_procs: int) -> float:
    universe = fresh_universe(
        8, {"coll_basic_bcast_algorithm": algorithm}
    )
    from tests.test_pml import define_app

    def main(ctx):
        start = yield ctx.now()
        for _ in range(20):
            yield from ctx.bcast(b"x" * 1024, root=0)
        end = yield ctx.now()
        return (end - start) / 20

    define_app("bench_bcast", main)
    job = ompi_run(universe, "bench_bcast", np_procs)
    return max(job.results.values())


def test_e8_bcast_algorithms(benchmark):
    def run():
        return {
            alg: {np_procs: bcast_time(alg, np_procs) for np_procs in (4, 16)}
            for alg in ("binomial", "linear")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for np_procs in (4, 16):
        rows.append(
            Row(
                f"np={np_procs}",
                {
                    "binomial (sim us)": results["binomial"][np_procs] * 1e6,
                    "linear (sim us)": results["linear"][np_procs] * 1e6,
                },
            )
        )
    print()
    print(
        format_table(
            "E8b: bcast algorithm (1 KiB payload)",
            ["binomial (sim us)", "linear (sim us)"],
            rows,
        )
    )
    # Trees win at scale (log vs linear fan-out from the root NIC).
    assert results["binomial"][16] < results["linear"][16]


def coordination_latency(crcp: str, np_procs: int) -> float:
    _universe, m = run_and_checkpoint(
        "churn",
        np_procs,
        {"loops": 80, "compute_s": 0.01},
        at=0.1,
        n_nodes=8,
        params={"crcp": crcp, "filem": "shared"},
    )
    assert m["ok"], m["error"]
    return m["sim_latency_s"]


def test_e8_protocol_comparison(benchmark):
    """The framework's raison d'être (paper section 6.3): two
    coordination protocols compared with everything else constant.
    ``filem=shared`` removes gather costs so the protocol dominates."""

    def run():
        return {
            crcp: {np_procs: coordination_latency(crcp, np_procs) for np_procs in (4, 16)}
            for crcp in ("coord", "twophase")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for np_procs in (4, 16):
        rows.append(
            Row(
                f"np={np_procs}",
                {
                    "coord (sim ms)": results["coord"][np_procs] * 1e3,
                    "twophase (sim ms)": results["twophase"][np_procs] * 1e3,
                },
            )
        )
    print()
    print(
        format_table(
            "E8d: CRCP protocol comparison (bookmarks vs quiescence rounds)",
            ["coord (sim ms)", "twophase (sim ms)"],
            rows,
        )
    )
    # Both complete; twophase pays its extra aggregation rounds.
    for crcp in ("coord", "twophase"):
        assert results[crcp][16] > 0


def midsize_latency(eager_limit: int) -> float:
    universe = fresh_universe(2, {"pml_ob1_eager_limit": str(eager_limit)})
    job = ompi_run(
        universe,
        "netpipe",
        2,
        args={"sizes": [32768], "reps_per_size": 10},
    )
    return job.results[0]["series"][0][1]


def test_e8_eager_limit(benchmark):
    def run():
        return {limit: midsize_latency(limit) for limit in (1024, 65536)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        Row(
            f"eager_limit={limit}",
            {"32 KiB latency (sim us)": latency * 1e6},
        )
        for limit, latency in results.items()
    ]
    print()
    print(
        format_table(
            "E8c: eager limit vs 32 KiB message latency",
            ["32 KiB latency (sim us)"],
            rows,
        )
    )
    # Below the limit the message goes rendezvous: an extra RTS/CTS
    # round trip shows up directly in latency.
    assert results[1024] > results[65536]
