"""Benchmark-suite configuration and shared micro-measurement helpers."""

import logging

from repro.simenv.kernel import Delay, Kernel

logging.getLogger("repro").setLevel(logging.CRITICAL)


def kernel_event_throughput(
    fast_paths: bool = True,
    n_threads: int = 200,
    wakeups_per_thread: int = 500,
    zero_delay: bool = True,
) -> dict:
    """Time raw kernel event throughput in isolation.

    Spawns *n_threads* generator threads that each block
    *wakeups_per_thread* times — on ``Delay(0)`` (the ready-deque fast
    path) or on a tiny positive delay (the heap path) — and reports the
    scheduler's own :class:`~repro.simenv.kernel.KernelStats` numbers.
    Use it to cite before/after figures for scheduler changes without
    any protocol stack in the loop::

        fast = kernel_event_throughput(fast_paths=True)
        legacy = kernel_event_throughput(fast_paths=False)
        speedup = fast["events_per_sec"] / legacy["events_per_sec"]

    Returns the ``stats_snapshot()`` dict of the finished kernel.
    """
    kernel = Kernel(fast_paths=fast_paths)

    def worker(tick: float):
        for _ in range(wakeups_per_thread):
            yield Delay(tick)
        return None

    # stagger heap-path delays so the heap sees genuine reordering work
    for i in range(n_threads):
        tick = 0.0 if zero_delay else 1e-6 * (1 + i % 7)
        kernel.spawn(worker(tick), name=f"bench-{i}")
    kernel.run()
    return kernel.stats_snapshot()
