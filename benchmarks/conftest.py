"""Benchmark-suite configuration."""

import logging

logging.getLogger("repro").setLevel(logging.CRITICAL)
