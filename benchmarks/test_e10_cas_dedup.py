"""E10 — content-addressed snapshot store deduplication.

Three checkpoints of a 4-rank churn job (8 MB of mostly-zero state per
rank) staged through the CAS offer/ship protocol against the same run
with plain staging.  Persisted into ``BENCH_E10.json``:

* **Dedup ratio** — logical snapshot bytes over bytes actually shipped
  into the store.  Identical chunks across ranks and intervals ship
  once, so the ratio is far above the 2x acceptance floor.
* **Savings vs plain staging** — bytes moved by the non-CAS pipeline
  over bytes moved by the CAS pipeline for the same workload.
* **Chunk-loss repair** — restart from a CAS snapshot fails with a
  retryable error once a blob is lost, and succeeds again after a
  later checkpoint re-ships the chunk (nothing is blacklisted).
"""

from repro.bench.harness import (
    Row,
    format_table,
    fresh_universe,
    write_bench_json,
)
from repro.opal.crs import chunks as chunkstore
from repro.tools.api import checkpoint_ref, ompi_checkpoint, ompi_restart, ompi_run
from repro.util.errors import RestartError

CHURN = {"loops": 120, "compute_s": 0.01, "state_bytes": 8 << 20}
CKPT_TIMES = (0.1, 0.45, 0.8)
NP = 4


def run_staged(cas: bool) -> dict:
    params = {"filem": "rsh"}
    if cas:
        params["snapc_full_cas"] = "1"
    universe = fresh_universe(4, params)
    job = ompi_run(universe, "churn", NP, args=CHURN, wait=False)
    handles = [
        ompi_checkpoint(universe, job.jobid, at=at, wait=False)
        for at in CKPT_TIMES
    ]
    universe.run_job_to_completion(job)
    for handle in handles:
        assert handle.result().get("ok"), handle.result().get("error")

    stager = universe.hnp.snapc.stager(universe.hnp)
    records = stager.job_records(job.jobid)
    out = {
        "universe": universe,
        "job": job,
        "first_ref": checkpoint_ref(handles[0]),
        "intervals": [
            {
                "interval": r.interval,
                "cas": r.cas,
                "bytes_logical": r.bytes_logical,
                "bytes_moved": r.bytes_moved,
            }
            for r in records
        ],
        "bytes_moved": sum(r.bytes_moved for r in records),
        "bytes_logical": sum(r.bytes_logical for r in records),
    }
    if cas:
        out["store"] = stager.store.stats()
    return out


def run_gen(universe, gen):
    thread = universe.kernel.spawn(gen, name="bench-gen")
    return universe.kernel.run_until_complete(thread)


def chunk_loss_repair(cas_run: dict) -> dict:
    """Lose one blob, show the failure is retryable, repair it by
    re-staging (a later checkpoint re-ships the chunk)."""
    universe = cas_run["universe"]
    ref = cas_run["first_ref"]
    stable = universe.cluster.stable_fs
    store = universe.hnp.snapc.stager(universe.hnp).store
    manifest = run_gen(
        universe, chunkstore.read_manifest(stable, ref.local_dir(0))
    )
    victim = max(set(manifest.hashes), key=manifest.hashes.count)
    run_gen(universe, stable.remove(store.blob_path(victim)))

    failed_retryable = False
    try:
        ompi_restart(universe, ref)
    except RestartError as exc:
        failed_retryable = "absent from the store" in str(exc)

    job = ompi_run(universe, "churn", NP, args=CHURN, wait=False)
    ompi_checkpoint(
        universe, job.jobid, at=universe.kernel.now + 0.1, wait=False
    )
    universe.run_job_to_completion(job)
    repaired = store.has(victim)
    restarted = ompi_restart(universe, ref)
    return {
        "restart_failed_retryable_on_chunk_loss": failed_retryable,
        "repaired_by_restaging": repaired,
        "restart_ok_after_repair": restarted.state.value == "finished",
    }


def test_e10_cas_dedup(benchmark):
    def run():
        cas = run_staged(cas=True)
        plain = run_staged(cas=False)
        repair = chunk_loss_repair(cas)
        return cas, plain, repair

    cas, plain, repair = benchmark.pedantic(run, rounds=1, iterations=1)
    dedup_ratio = cas["bytes_logical"] / max(cas["bytes_moved"], 1)
    savings = plain["bytes_moved"] / max(cas["bytes_moved"], 1)

    rows = []
    for entry, baseline in zip(cas["intervals"], plain["intervals"]):
        rows.append(
            Row(
                f"interval {entry['interval']}",
                {
                    "logical (MiB)": entry["bytes_logical"] / (1 << 20),
                    "shipped (KiB)": entry["bytes_moved"] / (1 << 10),
                    "plain moved (MiB)": baseline["bytes_moved"] / (1 << 20),
                },
            )
        )
    print()
    print(
        format_table(
            "E10: CAS dedup, 4 ranks x 8 MiB x 3 intervals",
            ["logical (MiB)", "shipped (KiB)", "plain moved (MiB)"],
            rows,
        )
    )
    print(
        f"dedup ratio {dedup_ratio:.1f}x, "
        f"{savings:.1f}x fewer bytes than plain staging, "
        f"store holds {cas['store']['blobs']} blobs / "
        f"{cas['store']['stored_bytes'] >> 10} KiB"
    )

    write_bench_json(
        "BENCH_E10.json",
        {
            "app": "churn",
            "np": NP,
            "app_args": CHURN,
            "checkpoints_at": list(CKPT_TIMES),
            "cas": {
                "intervals": cas["intervals"],
                "bytes_logical": cas["bytes_logical"],
                "bytes_moved": cas["bytes_moved"],
                "store": cas["store"],
            },
            "plain": {
                "intervals": plain["intervals"],
                "bytes_moved": plain["bytes_moved"],
            },
            "dedup_ratio": dedup_ratio,
            "savings_vs_plain": savings,
            "repair": repair,
        },
    )

    # Acceptance: identical chunks across ranks/intervals ship once.
    assert all(entry["cas"] for entry in cas["intervals"])
    assert not any(entry["cas"] for entry in plain["intervals"])
    assert dedup_ratio > 2
    assert cas["bytes_moved"] < plain["bytes_moved"]
    # Chunk loss is retryable and repaired by re-staging.
    assert repair["restart_failed_retryable_on_chunk_loss"]
    assert repair["repaired_by_restaging"]
    assert repair["restart_ok_after_repair"]
