"""E6 — INC traversal (Figure 2 as an executable trace) and restart
end-to-end time.

* The INC stack traversal for a checkpoint must follow Figure 2's
  order exactly: app/ompi/orte/opal enter top-down, exit bottom-up,
  once for CHECKPOINT and once for CONTINUE, with the CRS in between.
* The span recorder turns the same traversal into per-layer *costs*:
  each layer's ``inc.<layer>`` span is inclusive of the layers below
  it, so the difference between adjacent layers is that layer's own
  contribution (CRCP coordination for ompi, CRS for opal, ...).
* Restart end-to-end: simulated time from the ompi-restart request to
  the restarted job reaching RUNNING, versus image size (FILEM
  broadcast is the size-dependent part).
"""

from repro.bench.harness import Row, format_table, fresh_universe
from repro.tools.api import checkpoint_ref, ompi_checkpoint, ompi_restart, ompi_run
from tests.test_pml import define_app


def trace_inc_sequence() -> list:
    """Run one checkpoint with INC tracing on; return the trace."""
    universe = fresh_universe(2)
    traces = {}

    def main(ctx):
        stack = ctx._runner.opal.inc_stack
        stack.record_trace = True

        def app_inc(state, down):
            result = yield from down(state)
            return result

        ctx.register_inc(app_inc)
        yield ctx.compute(seconds=0.001)
        yield from ctx.barrier()
        if ctx.rank == 0:
            yield ctx.checkpoint()
        yield from ctx.barrier()
        traces[ctx.rank] = list(stack.trace)
        return "ok"

    define_app("bench_inc_trace", main)
    job = ompi_run(universe, "bench_inc_trace", 2)
    assert job.state.value == "finished"
    return traces[0]


def traced_inc_costs() -> dict:
    """Run one traced checkpoint; return rank 0's CHECKPOINT-descent
    ``inc.*`` spans keyed by layer name."""
    universe = fresh_universe(2, {"obs_trace_enabled": "1"})
    job = ompi_run(
        universe,
        "churn",
        2,
        args={"loops": 60, "compute_s": 0.01, "state_bytes": 1 << 20},
        wait=False,
    )
    handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
    universe.run_job_to_completion(job)
    assert handle.result()["ok"], handle.result().get("error")
    trace = universe.kernel.tracer.to_dict()
    owner = sorted(
        {
            s["attrs"]["owner"]
            for s in trace["spans"]
            if s["cat"] == "inc" and s["attrs"].get("state") == "CHECKPOINT"
        }
    )[0]
    return {
        s["name"].removeprefix("inc."): s
        for s in trace["spans"]
        if s["cat"] == "inc"
        and s["attrs"].get("state") == "CHECKPOINT"
        and s["attrs"]["owner"] == owner
    }


def measure_restart(state_bytes: int) -> float:
    universe = fresh_universe(4)
    job = ompi_run(
        universe,
        "churn",
        4,
        args={"loops": 40, "compute_s": 0.01, "state_bytes": state_bytes},
        wait=False,
    )
    handle = ompi_checkpoint(
        universe, job.jobid, at=0.1, terminate=True, wait=False
    )
    universe.run_job_to_completion(job)
    ref = checkpoint_ref(handle)
    start = universe.kernel.now
    restart_handle = ompi_restart(universe, ref, wait=False)
    reply = restart_handle.wait()
    assert reply["ok"], reply.get("error")
    running_at = universe.kernel.now
    new_job = universe.job(reply["jobid"])
    universe.run_job_to_completion(new_job)
    assert new_job.state.value == "finished"
    return running_at - start


def test_e6_inc_figure2_ordering(benchmark):
    trace = benchmark.pedantic(trace_inc_sequence, rounds=1, iterations=1)
    from repro.core.ft_event import FTState

    def phase(state):
        return [
            (layer, step) for layer, step, s in trace if s == state
        ]

    ckpt = phase(FTState.CHECKPOINT)
    cont = phase(FTState.CONTINUE)
    expected = [
        ("app", "enter"),
        ("ompi", "enter"),
        ("orte", "enter"),
        ("opal", "enter"),
        ("opal", "exit"),
        ("orte", "exit"),
        ("ompi", "exit"),
        ("app", "exit"),
    ]
    assert ckpt == expected, ckpt
    assert cont == expected, cont
    rows = [Row(f"{layer}:{step}", {"order": i}) for i, (layer, step) in enumerate(ckpt)]
    print()
    print(format_table("E6a: Figure-2 INC traversal (CHECKPOINT)", ["order"], rows))


def test_e6_inc_per_layer_cost(benchmark):
    spans = benchmark.pedantic(traced_inc_costs, rounds=1, iterations=1)
    layers = ["ompi", "orte", "opal"]
    assert set(layers) <= set(spans), spans.keys()
    rows = []
    for i, layer in enumerate(layers):
        inclusive = spans[layer]["dur"]
        below = spans[layers[i + 1]]["dur"] if i + 1 < len(layers) else 0.0
        rows.append(
            Row(
                f"inc.{layer}",
                {
                    "inclusive (sim ms)": inclusive * 1e3,
                    "own cost (sim ms)": (inclusive - below) * 1e3,
                },
            )
        )
    print()
    print(
        format_table(
            "E6c: per-layer INC cost (CHECKPOINT descent, rank 0)",
            ["inclusive (sim ms)", "own cost (sim ms)"],
            rows,
        )
    )
    # Inclusive timing: every layer's span covers the layers below it.
    assert spans["ompi"]["dur"] >= spans["orte"]["dur"] >= spans["opal"]["dur"]
    assert spans["ompi"]["t0"] <= spans["orte"]["t0"] <= spans["opal"]["t0"]
    assert spans["ompi"]["t1"] >= spans["orte"]["t1"] >= spans["opal"]["t1"]
    # The OMPI layer's own cost is the CRCP coordination — with traffic
    # in flight it dominates the descent.
    assert spans["ompi"]["dur"] > 0.0


def test_e6_restart_time_vs_image_size(benchmark):
    def run():
        return {size: measure_restart(size) for size in (1 << 16, 1 << 20, 4 << 20)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        Row(f"{size >> 10} KiB/rank", {"restart (sim ms)": latency * 1e3})
        for size, latency in results.items()
    ]
    print()
    print(
        format_table(
            "E6b: ompi-restart end-to-end time vs image size",
            ["restart (sim ms)"],
            rows,
        )
    )
    sizes = sorted(results)
    assert results[sizes[-1]] > results[sizes[0]]
