"""E4 — bookmark-exchange drain cost (paper section 6.3).

The ``coord`` protocol must drain every in-flight message into the
receivers' unexpected queues before the image is cut.  The workload
makes the drain do real work: rank 0 bursts K messages at a receiver
that is busy computing, and the checkpoint lands inside that window —
so the bookmarks disagree until the drain pulls the burst in.
Expected shape: drained count tracks K and coordination latency grows
with the drained bytes.
"""

import numpy as np

from repro.apps.registry import _APPS
from repro.bench.harness import Row, format_table, fresh_universe
from repro.obs.report import summarize
from repro.tools.api import ompi_checkpoint, ompi_run
from repro.util.ids import ProcessName

#: above the eager limit: each message is an RTS the receiver has not
#: matched when the checkpoint lands, so the drain must force-CTS it
PAYLOAD = 131072
TAG = 13


def _burst_app(ctx):
    """rank0 bursts rendezvous sends; rank1 sleeps through the
    checkpoint (and the gather, so statistics stay readable), leaving
    the whole burst in flight at coordination time."""
    burst = int(ctx.args["burst"])
    if ctx.rank == 0:
        payload = np.zeros(PAYLOAD, dtype=np.uint8)
        reqs = []
        for _ in range(burst):
            reqs.append((yield ctx.isend(payload, 1, TAG)))
        yield ctx.compute(seconds=2.0)  # stay alive through ckpt+gather
        yield from ctx.waitall(reqs)
        return "sent"
    yield ctx.compute(seconds=2.0)
    for _ in range(burst):
        yield from ctx.recv(0, TAG)
    return "received"


_APPS["bench_burst"] = _burst_app


def measure(burst: int) -> dict:
    universe = fresh_universe(2, {"obs_trace_enabled": "1"})
    job = ompi_run(universe, "bench_burst", 2, args={"burst": burst}, wait=False)
    handle = ompi_checkpoint(universe, job.jobid, at=0.1, wait=False)
    finish: dict = {}

    def watch():
        from repro.simenv.kernel import Delay, WaitEvent

        while handle.done is None:
            yield Delay(1e-4)
        yield WaitEvent(handle.done)
        finish["t"] = universe.kernel.now
        proc = universe.lookup(ProcessName(job.jobid, 1))
        if proc is not None:
            finish["drained"] = proc.service("ompi").crcp.stats["drained_msgs"]

    universe.kernel.spawn(watch(), name="watch", daemon=True)
    universe.run_job_to_completion(job)
    reply = handle.result()
    assert reply["ok"], reply.get("error")
    assert job.state.value == "finished"
    trace = universe.kernel.tracer.to_dict()
    phases = summarize(trace)
    return {
        "sim_latency_s": finish["t"] - 0.1,
        "drained": finish.get("drained", 0),
        "bookmark_s": phases.get("crcp.bookmark", {}).get("sim_s", 0.0),
        "drain_s": phases.get("crcp.drain", {}).get("sim_s", 0.0),
        "counted": trace["counters"].get("crcp.drained_msgs", 0),
    }


def test_e4_drain_cost_vs_inflight_burst(benchmark):
    def run():
        return {burst: measure(burst) for burst in (0, 8, 32, 128)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        Row(
            f"burst={burst}",
            {
                "ckpt latency (sim ms)": r["sim_latency_s"] * 1e3,
                "drained msgs": r["drained"],
                "bookmark (sim ms)": r["bookmark_s"] * 1e3,
                "drain (sim ms)": r["drain_s"] * 1e3,
            },
        )
        for burst, r in results.items()
    ]
    print()
    print(
        format_table(
            "E4: coordination drain cost vs in-flight burst",
            [
                "ckpt latency (sim ms)",
                "drained msgs",
                "bookmark (sim ms)",
                "drain (sim ms)",
            ],
            rows,
        )
    )
    assert results[128]["drained"] > results[8]["drained"] > 0
    assert results[0]["drained"] == 0
    assert results[128]["sim_latency_s"] > results[0]["sim_latency_s"]
    # The trace tells the same story: the drain phase is where the
    # latency goes, and its counter agrees with the PML statistics.
    assert results[128]["drain_s"] > results[0]["drain_s"]
    for r in results.values():
        assert r["counted"] == r["drained"]
