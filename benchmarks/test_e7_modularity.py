"""E7 — the modularity claim (paper section 7).

"Once the infrastructure was in place ... it took only a few weeks to
fully implement the LAM/MPI-like coordinated checkpoint/restart
protocol component.  By way of contrast, many months were required to
implement the original checkpoint/restart support directly into
LAM/MPI."

Executable proxies for that claim in this reproduction:

* the ``coord`` protocol component is a small, isolated fraction of
  the stack (a researcher writes the component, not the MPI library);
* components swap at run time with a one-parameter change and no other
  code involved (``--mca crcp none`` vs ``coord``; ``--mca filem
  shared`` vs ``rsh``) — the constant-environment comparison the paper
  argues for.
"""

from pathlib import Path

from repro.bench.harness import Row, format_table, fresh_universe
from repro.tools.api import ompi_run

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def loc_of(path: Path) -> int:
    """Non-blank, non-comment lines of code under *path*."""
    total = 0
    files = [path] if path.is_file() else sorted(path.rglob("*.py"))
    for file in files:
        for line in file.read_text().splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total


def test_e7_component_size_fractions(benchmark):
    def run():
        return {
            "whole stack": loc_of(SRC),
            "crcp/coord component": loc_of(SRC / "ompi" / "crcp" / "coord.py"),
            "crs/simcr component": loc_of(SRC / "opal" / "crs" / "simcr.py"),
            "filem/rsh component": loc_of(SRC / "orte" / "filem" / "rsh.py"),
            "snapc/full component": loc_of(SRC / "orte" / "snapc" / "full.py"),
        }

    loc = benchmark.pedantic(run, rounds=1, iterations=1)
    total = loc["whole stack"]
    rows = [
        Row(
            name,
            {"LoC": count, "% of stack": 100.0 * count / total},
        )
        for name, count in loc.items()
    ]
    print()
    print(
        format_table(
            "E7a: component sizes (the 'weeks not months' proxy)",
            ["LoC", "% of stack"],
            rows,
        )
    )
    # A protocol researcher writes ~2% of the stack, not the stack.
    assert loc["crcp/coord component"] / total < 0.05
    assert loc["crs/simcr component"] / total < 0.02


def test_e7_runtime_component_swap(benchmark):
    """The same binary runs with either protocol component — selection
    is purely a runtime parameter (constant-environment comparison)."""

    def run():
        out = {}
        for crcp in ("coord", "none"):
            universe = fresh_universe(2, {"crcp": crcp})
            job = ompi_run(universe, "ring", 2, args={"laps": 2})
            out[crcp] = job.state.value
        return out

    states = benchmark.pedantic(run, rounds=1, iterations=1)
    assert states == {"coord": "finished", "none": "finished"}
    rows = [Row(f"crcp={name}", {"job state": state}) for name, state in states.items()]
    print()
    print(format_table("E7b: runtime component swap", ["job state"], rows))
