"""E13 — adaptive (Young/Daly) cadence vs fixed checkpoint intervals
under true-Poisson mixed-fault campaigns.

E9 swept *fixed* checkpoint intervals against crash campaigns; this
experiment closes the control loop.  The adaptive scheduler re-computes
``sqrt(2 · MTBF · C)`` each tick from the lineage's observed failure
history and the measured app-blocked checkpoint cost, clamped into
``[snapc_sched_min_every, snapc_sched_max_every]``, with the fixed
``snapc_full_checkpoint_every`` as the cold-start fallback.

Each fault **mix** (crash-only, and a hostile mix that also attacks
stable storage, the data-plane network, and snapshot metadata) is run
against a sweep of fixed cadences and against the adaptive scheduler,
all from the same cluster seed, so every configuration faces the same
Poisson arrival process.  The score is **effective progress** —
fault-free makespan over faulty makespan.

The acceptance gate: under every mix the adaptive cadence's effective
progress is at least that of the best fixed-interval point.  A fixed
cadence can only be tuned to one failure regime; the closed loop earns
its keep by re-tuning per lineage as failures accumulate.

Machine-readable results land in ``BENCH_E13.json``.  ``E13_SMOKE=1``
(the CI bench job) runs a reduced profile — fewer faults and a smaller
fixed sweep — to fit the runtime budget; the gate is identical.
"""

import os

from repro.bench.harness import Row, format_table, fresh_universe, write_bench_json
from repro.simenv import CampaignSpec, FaultSpec, run_campaign
from repro.tools.api import ompi_run

SMOKE = os.environ.get("E13_SMOKE") == "1"

#: ~2 sim-seconds of fault-free runtime (as in E9)
CHURN = {"loops": 200, "compute_s": 0.01, "state_bytes": 4 << 20}
N_NODES = 6
NP = 4
MTBF_S = 0.5
START_AT = 0.35
MAX_FAILURES = 2 if SMOKE else 3

#: fixed-cadence sweep (sim seconds between checkpoints)
FIXED_INTERVALS = [0.15, 0.3] if SMOKE else [0.15, 0.3, 0.6]
#: adaptive configuration: fallback cadence + clamp band
ADAPTIVE_PARAMS = {
    "snapc_full_checkpoint_every": "0.25",
    "snapc_sched_adaptive": "1",
    "snapc_sched_min_every": "0.05",
    "snapc_sched_max_every": "0.6",
}

FAULT_MIXES = {
    "crash_only": (FaultSpec("node_crash"),),
    "hostile": (
        FaultSpec("node_crash", weight=2.0),
        FaultSpec("stable_write_fail", weight=1.0, duration_s=0.1),
        FaultSpec("stable_slow", weight=1.0, duration_s=0.15, factor=6.0),
        FaultSpec("net_partition", weight=1.0, duration_s=0.1),
        FaultSpec("meta_corrupt", weight=1.0),
    ),
}


def fault_free_makespan() -> float:
    universe = fresh_universe(N_NODES)
    job = ompi_run(universe, "churn", NP, args=CHURN)
    assert job.state.value == "finished"
    return universe.kernel.now


def campaign_with(params: dict, faults: tuple) -> dict:
    """One deterministic campaign run; returns the report as a dict."""
    universe = fresh_universe(
        N_NODES, dict(params, orte_errmgr_autorecover="1")
    )
    job = ompi_run(universe, "churn", NP, args=CHURN, wait=False)
    spec = CampaignSpec(
        mtbf_s=MTBF_S,
        max_failures=MAX_FAILURES,
        start_at=START_AT,
        faults=faults,
    )
    report = run_campaign(universe, job, spec).to_dict()
    sched = universe.hnp.ckpt_scheduler
    report["scheduled_ckpts"] = len(sched.taken)
    report["skipped_ticks"] = len(sched.skipped)
    tuned = [
        d["interval_s"] for d in sched.decisions if d.get("mtbf_s") is not None
    ]
    report["tuned_intervals_s"] = tuned
    return report


def test_e13_adaptive_vs_fixed_cadence(benchmark):
    def run():
        results: dict = {"fault_free_makespan_s": fault_free_makespan()}
        for mix_name, faults in FAULT_MIXES.items():
            mix: dict[str, dict] = {}
            for interval in FIXED_INTERVALS:
                mix[f"fixed_{interval:g}"] = campaign_with(
                    {"snapc_full_checkpoint_every": str(interval)}, faults
                )
            mix["adaptive"] = campaign_with(ADAPTIVE_PARAMS, faults)
            results[mix_name] = mix
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = results["fault_free_makespan_s"]

    def progress(report: dict) -> float:
        return baseline / report["makespan_s"] if report["completed"] else 0.0

    rows = []
    for mix_name in FAULT_MIXES:
        for config, report in results[mix_name].items():
            rows.append(
                Row(
                    f"{mix_name}/{config}",
                    {
                        "done": str(report["completed"]),
                        "faults": len(report["failures"]),
                        "restarts": report["restarts"],
                        "ckpts": report["committed_checkpoints"],
                        "lost (sim ms)": report["work_lost_s"] * 1e3,
                        "progress": progress(report),
                    },
                )
            )
    print()
    print(
        format_table(
            "E13: adaptive Daly cadence vs fixed intervals "
            f"(MTBF {MTBF_S:g}s, {MAX_FAILURES} faults)",
            ["done", "faults", "restarts", "ckpts", "lost (sim ms)",
             "progress"],
            rows,
        )
    )
    write_bench_json(
        "BENCH_E13.json",
        {
            "experiment": "e13_adaptive_cadence",
            "smoke_profile": SMOKE,
            "app": "churn",
            "app_args": CHURN,
            "n_nodes": N_NODES,
            "np": NP,
            "mtbf_s": MTBF_S,
            "max_failures": MAX_FAILURES,
            "start_at": START_AT,
            "fixed_intervals_s": FIXED_INTERVALS,
            "adaptive_params": ADAPTIVE_PARAMS,
            "fault_mixes": {
                name: [
                    {
                        "kind": f.kind,
                        "weight": f.weight,
                        "duration_s": f.duration_s,
                        "factor": f.factor,
                    }
                    for f in faults
                ]
                for name, faults in FAULT_MIXES.items()
            },
            "fault_free_makespan_s": baseline,
            "results": {
                name: results[name] for name in FAULT_MIXES
            },
        },
    )

    for mix_name in FAULT_MIXES:
        mix = results[mix_name]
        # every configuration survives its campaign
        for config, report in mix.items():
            assert report["completed"], (mix_name, config, report)
            assert report["committed_checkpoints"] >= 1, (mix_name, config)
        # the closed loop actually re-tuned: post-failure decisions
        # exist and obey the clamp band
        adaptive = mix["adaptive"]
        assert adaptive["tuned_intervals_s"], adaptive
        for interval in adaptive["tuned_intervals_s"]:
            assert 0.05 <= interval <= 0.6
        # the acceptance gate: adaptive effective progress is at least
        # the best fixed-interval point under this mix
        best_fixed = max(
            progress(mix[f"fixed_{i:g}"]) for i in FIXED_INTERVALS
        )
        assert progress(adaptive) >= best_fixed, (
            mix_name,
            progress(adaptive),
            best_fixed,
        )
