"""E13 — adaptive (Young/Daly) cadence vs fixed checkpoint intervals
under true-Poisson mixed-fault campaigns, fleet-driven.

E9 swept *fixed* checkpoint intervals against crash campaigns; this
experiment closes the control loop.  The adaptive scheduler re-computes
``sqrt(2 · MTBF · C)`` each tick from the lineage's observed failure
history and the measured app-blocked checkpoint cost, clamped into
``[snapc_sched_min_every, snapc_sched_max_every]``, with the fixed
``snapc_full_checkpoint_every`` as the cold-start fallback.

The grid lives in :func:`repro.fleet.presets.e13_fleet` and runs under
the :class:`~repro.fleet.runner.FleetRunner` — two seed replicas, each
racing every configuration (three fixed cadences + adaptive) against a
crash-only and a hostile fault mix from the *same* derived seed, so
every configuration within a replica faces the identical Poisson
arrival process.  Each replica also carries a fault-free baseline cell
whose makespan is the denominator of **effective progress** (fault-free
makespan over faulty makespan).

Acceptance gates:

* per replica, under the crash-only mix the adaptive cadence's
  effective progress is at least that of the best fixed point — a
  fixed cadence can only be tuned to one failure regime;
* fleet-wide (mean over every seed × mix cell, incomplete runs scoring
  zero) the adaptive configuration beats every fixed cadence;
* every adaptive cell completes, and its post-failure re-tuning
  decisions obey the clamp band under the crash-only mix (the hostile
  mix can end a lineage before any failure history accumulates).

``E13_WORKERS`` sets the process-pool width (default 1 — serial); the
per-cell reports are byte-identical either way, which E14 gates.
Machine-readable results land in ``BENCH_E13.json``; the full fleet
meta-report in ``FLEET_E13.json``.
"""

import os

from repro.bench.harness import Row, format_table, write_bench_json
from repro.fleet import FleetRunner
from repro.fleet.presets import (
    E13_FIXED_INTERVALS,
    E13_MAX_FAILURES,
    E13_MTBF_S,
    e13_fleet,
)

WORKERS = int(os.environ.get("E13_WORKERS", "1"))
SEEDS = (0, 1)
MIXES = ("crash_only", "hostile")
CONFIGS = [f"fixed_{i:g}" for i in E13_FIXED_INTERVALS] + ["adaptive"]
CLAMP_MIN, CLAMP_MAX = 0.05, 0.6


def test_e13_adaptive_vs_fixed_cadence(benchmark):
    spec = e13_fleet(seeds=SEEDS)

    def run():
        return FleetRunner(spec).run(workers=WORKERS)

    fleet = benchmark.pedantic(run, rounds=1, iterations=1)

    assert all(cell.ok for cell in fleet.cells), [
        (c.key, c.error) for c in fleet.cells if not c.ok
    ]
    baselines = {
        seed: fleet.cell(f"s{seed}/default/none/baseline").report["makespan_s"]
        for seed in SEEDS
    }

    def report_of(seed: int, config: str, mix: str) -> dict:
        return fleet.cell(f"s{seed}/default/{config}/{mix}").report

    def progress(seed: int, config: str, mix: str) -> float:
        report = report_of(seed, config, mix)
        if not report["completed"]:
            return 0.0
        return baselines[seed] / report["makespan_s"]

    rows = []
    for seed in SEEDS:
        for mix in MIXES:
            for config in CONFIGS:
                report = report_of(seed, config, mix)
                rows.append(
                    Row(
                        f"s{seed}/{mix}/{config}",
                        {
                            "done": str(report["completed"]),
                            "faults": len(report["failures"]),
                            "restarts": report["restarts"],
                            "ckpts": report["committed_checkpoints"],
                            "lost (sim ms)": report["work_lost_s"] * 1e3,
                            "progress": progress(seed, config, mix),
                        },
                    )
                )
    print()
    print(
        format_table(
            "E13: adaptive Daly cadence vs fixed intervals "
            f"(MTBF {E13_MTBF_S:g}s, {E13_MAX_FAILURES} faults, "
            f"{len(SEEDS)} replicas, {fleet.workers} workers)",
            ["done", "faults", "restarts", "ckpts", "lost (sim ms)",
             "progress"],
            rows,
        )
    )

    fleet_means = {
        config: sum(
            progress(seed, config, mix) for seed in SEEDS for mix in MIXES
        ) / (len(SEEDS) * len(MIXES))
        for config in CONFIGS
    }
    write_bench_json(
        "BENCH_E13.json",
        {
            "experiment": "e13_adaptive_cadence",
            "workers": fleet.workers,
            "wall_s": fleet.wall_s,
            "spec": fleet.spec,
            "fault_free_makespan_s": baselines,
            "fleet_mean_progress": fleet_means,
            "results": {
                f"s{seed}/{mix}/{config}": dict(
                    report_of(seed, config, mix),
                    scheduler=fleet.cell(
                        f"s{seed}/default/{config}/{mix}"
                    ).scheduler,
                    progress=progress(seed, config, mix),
                )
                for seed in SEEDS
                for mix in MIXES
                for config in CONFIGS
            },
            "kernel_stats": fleet.kernel_stats(),
        },
    )
    write_bench_json("FLEET_E13.json", fleet.to_dict())

    fixed_labels = [f"fixed_{i:g}" for i in E13_FIXED_INTERVALS]
    for seed in SEEDS:
        # Per replica, crash-only: the closed loop matches or beats the
        # best fixed cadence facing the same arrival process.
        best_fixed = max(
            progress(seed, config, "crash_only") for config in fixed_labels
        )
        assert progress(seed, "adaptive", "crash_only") >= best_fixed, (
            seed,
            progress(seed, "adaptive", "crash_only"),
            best_fixed,
        )
        for mix in MIXES:
            # Adaptive always survives its campaign...
            adaptive = report_of(seed, "adaptive", mix)
            assert adaptive["completed"], (seed, mix, adaptive)
            # ...and every completed checkpointing run actually
            # committed at least one interval.
            for config in CONFIGS:
                report = report_of(seed, config, mix)
                if report["completed"]:
                    assert report["committed_checkpoints"] >= 1, (
                        seed, mix, config,
                    )
        # The crash-only lineage accumulates failure history, so the
        # re-tuned intervals exist and obey the clamp band.  (Hostile
        # mixes may kill a lineage before any MTBF estimate forms.)
        tuned = fleet.cell(
            f"s{seed}/default/adaptive/crash_only"
        ).scheduler["tuned_intervals_s"]
        assert tuned, (seed, "no post-failure re-tuning decisions")
        for interval in tuned:
            assert CLAMP_MIN <= interval <= CLAMP_MAX, (seed, interval)

    # Fleet-wide, over every seed × mix: adaptive beats each fixed
    # cadence on mean effective progress.
    for config in fixed_labels:
        assert fleet_means["adaptive"] >= fleet_means[config], (
            config,
            fleet_means,
        )
