"""E2 — NetPIPE bandwidth overhead (paper section 7).

Paper: "Bandwidth overhead was 0%."

Two measurements:

* *Modeled* bandwidth (simulated bytes/simulated second): identical by
  construction across builds — interposition adds no modeled time —
  and verified here to machine precision (the paper's 0%).
* *Wall-clock* throughput: payload-copy-dominated at 4 MiB, so the FT
  builds land within a few percent of no-FT.

Also regenerates the NetPIPE figure itself: the simulated latency and
bandwidth series per interconnect (GigE vs InfiniBand).
"""

import pytest

from repro.bench.harness import Row, format_table
from repro.bench.netpipe_bench import (
    CONFIGS,
    _run_netpipe,
    netpipe_bandwidth_overhead,
    netpipe_simtime_series,
)


def test_e2_modeled_bandwidth_identical(benchmark):
    """Simulated NetPIPE series must be bit-identical across builds."""

    def run_all():
        series = {}
        for name, params in CONFIGS.items():
            _wall, s = _run_netpipe(params, [1 << 12, 1 << 18, 1 << 22], 3)
            series[name] = s
        return series

    series = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Equal to floating-point accumulation order (sub-ppb differences).
    for config in ("ft+none", "ft+coord"):
        for (s0, l0, b0), (s1, l1, b1) in zip(series["no-ft"], series[config]):
            assert s0 == s1
            assert l1 == pytest.approx(l0, rel=1e-9)
            assert b1 == pytest.approx(b0, rel=1e-9)
    rows = [
        Row(
            f"{size} B",
            {"sim latency us": lat * 1e6, "sim bandwidth MB/s": bw / 1e6, "FT delta %": 0.0},
        )
        for size, lat, bw in series["no-ft"]
    ]
    print()
    print(
        format_table(
            "E2a: modeled bandwidth, FT vs no-FT (paper: 0% overhead)",
            ["sim latency us", "sim bandwidth MB/s", "FT delta %"],
            rows,
        )
    )


def test_e2_wallclock_bandwidth(benchmark):
    result = benchmark.pedantic(
        lambda: netpipe_bandwidth_overhead(size=1 << 22, reps=25, trials=3),
        rounds=1,
        iterations=1,
    )
    rows = [
        Row(
            config,
            {
                "wall MB/s": result["wall_bandwidth_Bps"][config] / 1e6,
                "overhead %": result["overhead_pct"].get(config, 0.0),
            },
        )
        for config in ("no-ft", "ft+none", "ft+coord")
    ]
    print()
    print(
        format_table(
            "E2b: wall-clock throughput at 4 MiB (paper: 0% overhead)",
            ["wall MB/s", "overhead %"],
            rows,
        )
    )
    # Wall throughput on a shared box swings tens of percent either
    # way; this sub-measurement is informational and only sanity-bounded
    # (the strict 0% claim is E2a's modeled measurement).
    for config in ("ft+none", "ft+coord"):
        assert abs(result["overhead_pct"][config]) < 50.0


def test_e2_netpipe_figure_series(benchmark):
    """The NetPIPE curves per fabric (the figure the tool draws)."""

    def run():
        return {
            "infiniband": netpipe_simtime_series(
                sizes=[1 << i for i in range(0, 23, 2)], reps=3
            ),
            "ethernet": netpipe_simtime_series(
                sizes=[1 << i for i in range(0, 23, 2)], reps=3, btl="tcp"
            ),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (size, ib_lat, ib_bw), (_s2, eth_lat, eth_bw) in zip(
        curves["infiniband"], curves["ethernet"]
    ):
        rows.append(
            Row(
                f"{size} B",
                {
                    "IB lat us": ib_lat * 1e6,
                    "IB MB/s": ib_bw / 1e6,
                    "GigE lat us": eth_lat * 1e6,
                    "GigE MB/s": eth_bw / 1e6,
                },
            )
        )
    print()
    print(
        format_table(
            "E2c: NetPIPE curves per interconnect (testbed: GigE + IB)",
            ["IB lat us", "IB MB/s", "GigE lat us", "GigE MB/s"],
            rows,
        )
    )
    # Interconnect relationships from the testbed: IB lower latency,
    # higher asymptotic bandwidth; both bandwidths monotone in size.
    small_ib = curves["infiniband"][0][1]
    small_eth = curves["ethernet"][0][1]
    assert small_ib < small_eth
    assert curves["infiniband"][-1][2] > curves["ethernet"][-1][2]
    ib_bws = [bw for _, _, bw in curves["infiniband"]]
    assert ib_bws == sorted(ib_bws)
    assert curves["infiniband"][-1][2] == pytest.approx(1e9, rel=0.25)
    assert curves["ethernet"][-1][2] == pytest.approx(125e6, rel=0.25)
