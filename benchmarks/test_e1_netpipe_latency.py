"""E1 — NetPIPE latency overhead (paper section 7).

Paper: "NetPIPE latency comparison showed that Open MPI incurs about 3%
overhead for small messages (0% for large messages) when using this
infrastructure and passthrough components.  The overhead is attributed
to function call overhead."

Reproduction, three measurements per build (no-FT / FT+passthrough /
FT+coord):

* **calls/message** — the paper's attributed cause measured directly
  and deterministically: Python function activations per ping-pong.
  Expected: a few percent extra with FT (the wrapper PML + hooks).
* **modeled latency** — simulated NetPIPE latency, identical across
  builds (interposition adds no modeled time): the paper's 0% at large
  sizes, exactly.
* **wall-clock/message** — informational; matches the call-count story
  when the machine is quiet.
"""

import pytest

from repro.bench.harness import Row, format_table
from repro.bench.netpipe_bench import (
    CONFIGS,
    _run_netpipe,
    netpipe_callcount_overhead,
    netpipe_wallclock_overhead,
)


def test_e1_function_call_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: netpipe_callcount_overhead(reps=60), rounds=1, iterations=1
    )
    calls = result["calls_per_msg"]
    overhead = result["overhead_pct"]
    rows = [
        Row(
            config,
            {
                "small calls/msg": calls[config]["small"],
                "large calls/msg": calls[config]["large"],
                "small ovh %": overhead.get(config, {}).get("small", 0.0),
                "large ovh %": overhead.get(config, {}).get("large", 0.0),
            },
        )
        for config in ("no-ft", "ft+none", "ft+coord")
    ]
    print()
    print(
        format_table(
            "E1a: interposition cost in function calls (paper: ~3% small)",
            ["small calls/msg", "large calls/msg", "small ovh %", "large ovh %"],
            rows,
        )
    )
    # Deterministic shape: the wrapper costs a small, visible number of
    # extra activations per message — single-digit percent.
    for config in ("ft+none", "ft+coord"):
        assert 0.0 < overhead[config]["small"] < 15.0
        assert 0.0 <= overhead[config]["large"] < 10.0


def test_e1_modeled_latency_unchanged(benchmark):
    """Simulated latency must be unaffected by the interposition — the
    large-message limit of the paper's measurement (0% overhead)."""

    def run():
        out = {}
        for name, params in CONFIGS.items():
            _wall, series = _run_netpipe(params, [64, 1 << 20], 4)
            out[name] = series
        return out

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for i, size in enumerate((64, 1 << 20)):
        base = series["no-ft"][i][1]
        for config in ("ft+none", "ft+coord"):
            assert series[config][i][1] == pytest.approx(base, rel=1e-9)
        rows.append(
            Row(f"{size} B", {"sim latency us": base * 1e6, "FT delta %": 0.0})
        )
    print()
    print(
        format_table(
            "E1b: modeled latency, FT vs no-FT (paper: 0% at large sizes)",
            ["sim latency us", "FT delta %"],
            rows,
        )
    )


def test_e1_wallclock_latency(benchmark):
    """Informational wall-clock companion (noise-sensitive)."""
    result = benchmark.pedantic(
        lambda: netpipe_wallclock_overhead(
            small_reps=1200, large_reps=100, trials=5
        ),
        rounds=1,
        iterations=1,
    )
    per_msg = result["per_msg_wall_s"]
    overhead = result["overhead_pct"]
    rows = [
        Row(
            config,
            {
                "small us/msg": per_msg[config]["small"] * 1e6,
                "large us/msg": per_msg[config]["large"] * 1e6,
                "small ovh %": overhead.get(config, {}).get("small", 0.0),
                "large ovh %": overhead.get(config, {}).get("large", 0.0),
            },
        )
        for config in ("no-ft", "ft+none", "ft+coord")
    ]
    print()
    print(
        format_table(
            "E1c: wall-clock per message (informational; machine-load sensitive)",
            ["small us/msg", "large us/msg", "small ovh %", "large ovh %"],
            rows,
        )
    )
    # Very loose sanity bounds only — wall time on a shared box drifts.
    for config in ("ft+none", "ft+coord"):
        assert -25.0 < overhead[config]["small"] < 60.0
