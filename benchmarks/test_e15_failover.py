"""E15 — durable control plane: HNP failover latency and zero-loss
interval adoption.

Crashes the HNP's node mid-campaign (the checkpointing job keeps
staging intervals throughout) and measures the cost of the control
plane's recovery:

* **detection** — crash instant to the start of the new incarnation's
  rehydration, dominated by the orted watchers' heartbeat probe
  cadence (``orte_hnp_heartbeat_s``).
* **rehydration** — the ``hnp.failover`` span: state-store replay,
  budget/cadence restore, staging adoption and restage dispatch,
  orphaned-failure hand-off, job re-attachment.
* **adoption economics** — how many COMMITTED intervals the successor
  adopted without re-shipping a byte, versus in-flight intervals it
  had to restage or durably fail.

Gates: the campaign completes through exactly one failover, detection
and rehydration stay within their bounds, and — the paper's promise —
not one interval the store calls COMMITTED is lost or corrupt on
stable storage afterwards.  Machine-readable results land in
``BENCH_E15.json``.
"""

from repro.bench.harness import Row, format_table, write_bench_json
from repro.mca.params import MCAParams
from repro.obs.report import filter_spans, summarize
from repro.orte.universe import Universe
from repro.simenv.campaign import (
    FAULT_HNP_CRASH,
    CampaignSpec,
    FaultSpec,
    run_campaign,
)
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.snapshot import STAGE_COMMITTED, GlobalSnapshotRef, read_global_meta
from repro.tools.api import ompi_run

N_NODES = 6
NP = 4
CHURN = {"loops": 150, "compute_s": 0.01, "state_bytes": 1 << 20}
HEARTBEAT_S = 0.25

#: gates, in sim seconds — generous multiples of the measured costs so
#: the bench flags regressions, not scheduling jitter
MAX_DETECTION_S = 2 * HEARTBEAT_S
MAX_REHYDRATION_S = 0.2


def _run_failover_campaign():
    params = MCAParams(
        {
            "filem": "rsh",
            "obs_trace_enabled": "1",
            "orte_errmgr_autorecover": "1",
            "orte_hnp_failover": "1",
            "orte_hnp_heartbeat_s": str(HEARTBEAT_S),
            "snapc_full_checkpoint_every": "0.15",
        }
    )
    universe = Universe(Cluster(ClusterSpec(n_nodes=N_NODES)), params)
    job = ompi_run(universe, "churn", NP, args=CHURN, wait=False)
    spec = CampaignSpec(
        mtbf_s=0.3,
        max_failures=1,
        start_at=0.3,
        faults=(FaultSpec(kind=FAULT_HNP_CRASH),),
    )
    report = run_campaign(universe, job, spec)
    return universe, report


def _verify_committed_intact(universe) -> int:
    """Every interval the store calls COMMITTED parses from stable
    storage with committed staging metadata.  Returns the count."""
    kernel = universe.kernel
    stable = universe.cluster.stable_fs
    committed = [
        value
        for value in universe.statestore.tables.get("staging", {}).values()
        if value["state"] == STAGE_COMMITTED
    ]
    for value in committed:
        thread = kernel.spawn(
            read_global_meta(stable, GlobalSnapshotRef(value["path"])),
            name="verify-meta",
        )
        kernel.run_until_complete(thread)
        meta = thread.result
        assert meta.staging["state"] == STAGE_COMMITTED, value["path"]
    return len(committed)


def test_e15_hnp_failover_latency_and_zero_loss(benchmark):
    universe, report = benchmark.pedantic(
        _run_failover_campaign, rounds=1, iterations=1
    )

    # -- hard gates ---------------------------------------------------------
    assert report.completed, report.to_dict()
    assert universe.failovers == 1
    assert report.fault_counts == {"hnp_crash": 1}

    trace = universe.kernel.tracer.to_dict()
    (span,) = filter_spans(trace, name="hnp.failover")
    (fault,) = report.to_dict()["failures"]
    detection_s = span["t0"] - fault["at"]
    rehydration_s = span["dur"]
    assert 0.0 < detection_s <= MAX_DETECTION_S, detection_s
    assert rehydration_s <= MAX_REHYDRATION_S, rehydration_s

    # zero lost COMMITTED intervals: adopted without re-shipping, and
    # every one of them still intact on stable storage
    assert span["attrs"]["lost"] == 0
    assert span["attrs"]["committed_adopted"] >= 1
    committed = _verify_committed_intact(universe)
    assert committed >= span["attrs"]["committed_adopted"]

    # -- report -------------------------------------------------------------
    summary = summarize(trace)
    store = universe.statestore
    append = summary.get("statestore.append", {"count": 0, "sim_s": 0.0})
    replay = summary.get("statestore.replay", {"count": 0, "sim_s": 0.0})
    rows = [
        Row(
            "hnp_crash",
            {
                "done": str(report.completed),
                "detect (sim ms)": detection_s * 1e3,
                "rehydrate (sim ms)": rehydration_s * 1e3,
                "adopted": span["attrs"]["committed_adopted"],
                "restaged": span["attrs"]["restaged"],
                "lost": span["attrs"]["lost"],
                "appends": append["count"],
                "replay (sim ms)": replay["sim_s"] * 1e3,
            },
        )
    ]
    print()
    print(
        format_table(
            f"E15: HNP failover (heartbeat {HEARTBEAT_S:g}s, "
            f"{committed} committed interval(s) verified intact)",
            [
                "done",
                "detect (sim ms)",
                "rehydrate (sim ms)",
                "adopted",
                "restaged",
                "lost",
                "appends",
                "replay (sim ms)",
            ],
            rows,
        )
    )
    write_bench_json(
        "BENCH_E15.json",
        {
            "experiment": "e15_hnp_failover",
            "heartbeat_s": HEARTBEAT_S,
            "gates": {
                "max_detection_s": MAX_DETECTION_S,
                "max_rehydration_s": MAX_REHYDRATION_S,
            },
            "fault": fault,
            "detection_s": detection_s,
            "rehydration_s": rehydration_s,
            "failover_span": span,
            "committed_verified": committed,
            "statestore": {
                "appended": store.appended,
                "compactions": store.compactions,
                "append_sim_s": append["sim_s"],
                "replay_sim_s": replay["sim_s"],
            },
            "campaign": report.to_dict(),
        },
    )
