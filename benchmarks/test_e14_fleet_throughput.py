"""E14 — fleet throughput: process-parallel sweeps without drift.

The fleet runner's contract has two halves and this experiment gates
both on the real E13 grid (18 campaign cells):

* **Determinism.**  Per-cell seeds are a pure function of the fleet
  seed and grid coordinates, and cells share nothing, so the per-cell
  campaign reports of a 4-worker run must serialize to byte-identical
  JSON against a serial run of the same spec.  This gate is
  unconditional — it holds on any machine.
* **Throughput.**  On a machine with at least 4 CPUs the 4-worker
  sweep must finish at least ``MIN_SPEEDUP`` times faster than the
  serial one.  On smaller boxes (a 1-CPU container cannot speed
  anything up by forking) the measured speedup is recorded in the JSON
  but the gate is relaxed to "the pool completed every cell".

The meta-report also merges every cell's ``KernelStats``; the
fleet-wide events-per-CPU-second must hold E12's committed per-kernel
floor — parallelism must not mask a simulation slowdown.

Machine-readable results land in ``BENCH_E14.json``.
"""

import json
import os

from repro.bench.harness import Row, format_table, write_bench_json
from repro.fleet import FleetRunner
from repro.fleet.presets import e13_fleet

POOL_WORKERS = 4
MIN_SPEEDUP = 2.5
#: CPUs needed before the wall-clock gate is meaningful
MIN_CPUS_FOR_GATE = 4

#: E12's committed single-kernel throughput floor, held fleet-wide
BASELINE_EVENTS_PER_SEC = 8_000.0
REGRESSION_FLOOR = 0.7


def test_e14_fleet_throughput_and_determinism(benchmark):
    spec = e13_fleet()
    quiet = lambda line: None  # noqa: E731
    serial = FleetRunner(spec, progress=quiet).run(workers=1)

    def run():
        return FleetRunner(spec, progress=quiet).run(workers=POOL_WORKERS)

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)

    cpus = os.cpu_count() or 1
    speedup = serial.wall_s / parallel.wall_s
    gate_armed = cpus >= MIN_CPUS_FOR_GATE

    blob_serial = json.dumps(serial.reports_by_key(), sort_keys=True)
    blob_parallel = json.dumps(parallel.reports_by_key(), sort_keys=True)
    identical = blob_serial == blob_parallel

    serial_stats = serial.kernel_stats()
    stats = parallel.kernel_stats()
    floor = BASELINE_EVENTS_PER_SEC * REGRESSION_FLOOR

    rows = [
        Row("serial", {
            "wall (s)": serial.wall_s,
            "ok": serial.aggregates()["ok"],
            "runs": serial.aggregates()["runs"],
        }),
        Row(f"{POOL_WORKERS} workers", {
            "wall (s)": parallel.wall_s,
            "ok": parallel.aggregates()["ok"],
            "runs": parallel.aggregates()["runs"],
        }),
    ]
    print()
    print(format_table(
        f"E14: fleet throughput on the E13 grid ({cpus} CPUs, "
        f"speedup {speedup:.2f}x, byte-identical: {identical})",
        ["wall (s)", "ok", "runs"],
        rows,
    ))
    write_bench_json(
        "BENCH_E14.json",
        {
            "experiment": "e14_fleet_throughput",
            "grid": spec.name,
            "cells": len(spec.cells()),
            "cpu_count": cpus,
            "pool_workers": POOL_WORKERS,
            "serial_wall_s": serial.wall_s,
            "parallel_wall_s": parallel.wall_s,
            "speedup": speedup,
            "speedup_gate_armed": gate_armed,
            "min_speedup": MIN_SPEEDUP,
            "byte_identical": identical,
            "serial_events_per_cpu_sec": serial_stats["events_per_cpu_sec"],
            "fleet_events_per_cpu_sec": stats["events_per_cpu_sec"],
            "events_per_cpu_sec_floor": floor,
            "kernel_stats": stats,
            "serial_aggregate": serial.aggregates(),
            "parallel_aggregate": parallel.aggregates(),
        },
    )

    # Determinism: sharding must not change a single simulation outcome.
    assert identical, "parallel fleet run diverged from serial"
    assert [c.key for c in serial.cells] == [c.key for c in parallel.cells]

    # Both sweeps executed the whole grid.
    assert serial.aggregates()["ok"] == len(spec.cells())
    assert parallel.aggregates()["ok"] == len(spec.cells())

    # The simulation itself must hold E12's throughput floor on the
    # campaign workload.
    assert serial_stats["events_per_cpu_sec"] >= floor, serial_stats

    # Wall-clock and contention gates need real cores to be
    # meaningful: on a 1-CPU box, N forked workers thrash one core and
    # both wall clock and per-worker CPU time degrade for reasons that
    # have nothing to do with the simulator.
    if gate_armed:
        assert stats["events_per_cpu_sec"] >= floor, stats
        assert speedup >= MIN_SPEEDUP, (
            f"{POOL_WORKERS}-worker sweep only {speedup:.2f}x faster than "
            f"serial (gate: {MIN_SPEEDUP}x on {cpus} CPUs)"
        )
