"""E9 — fault-injection campaigns: recovery economics vs checkpoint
interval, fleet-driven.

Crashes nodes at a configurable MTBF (exponential inter-arrival, the
rollback-recovery literature's failure model) against a job protected
by autorecovery plus the periodic checkpoint scheduler, then follows
the recovery lineage to its end.  Reports the classic C/R tradeoff:

* **work lost** — progress rolled back per failure (failure time minus
  the capture time of the snapshot recovery used).  Shrinks with the
  checkpoint interval.
* **recovery latency** — failure detection to restarted-and-running.
* **effective progress** — fault-free makespan over faulty makespan.

The grid lives in :func:`repro.fleet.presets.e9_fleet` and runs under
the :class:`~repro.fleet.runner.FleetRunner`: two seed replicas, each
sweeping the checkpoint interval against the same derived-seed crash
campaign, plus a fault-free baseline cell per replica that supplies
the effective-progress denominator.  The ``interval_off`` cell is the
control: no periodic checkpoints means the first crash is fatal (no
committed snapshot to recover from).

``E9_WORKERS`` sets the process-pool width (default 1 — serial); the
per-cell reports are byte-identical either way.  Machine-readable
results land in ``BENCH_E9.json``.
"""

import os

from repro.bench.harness import Row, format_table, write_bench_json
from repro.fleet import FleetRunner
from repro.fleet.presets import (
    E9_INTERVALS,
    E9_MAX_FAILURES,
    E9_MTBF_S,
    e9_fleet,
)

WORKERS = int(os.environ.get("E9_WORKERS", "1"))
SEEDS = (0, 1)
CONFIGS = [
    "interval_off" if interval == 0 else f"interval_{interval:g}"
    for interval in E9_INTERVALS
]
PROTECTED = [config for config in CONFIGS if config != "interval_off"]


def test_e9_fault_campaign_vs_checkpoint_interval(benchmark):
    spec = e9_fleet(seeds=SEEDS)

    def run():
        return FleetRunner(spec).run(workers=WORKERS)

    fleet = benchmark.pedantic(run, rounds=1, iterations=1)

    assert all(cell.ok for cell in fleet.cells), [
        (c.key, c.error) for c in fleet.cells if not c.ok
    ]
    baselines = {
        seed: fleet.cell(f"s{seed}/default/none/baseline").report["makespan_s"]
        for seed in SEEDS
    }

    def report_of(seed: int, config: str) -> dict:
        return fleet.cell(f"s{seed}/default/{config}/crashes").report

    def progress(seed: int, config: str) -> float:
        report = report_of(seed, config)
        if not report["completed"]:
            return 0.0
        return baselines[seed] / report["makespan_s"]

    rows = []
    for seed in SEEDS:
        for config in CONFIGS:
            report = report_of(seed, config)
            rows.append(
                Row(
                    f"s{seed}/{config}",
                    {
                        "done": str(report["completed"]),
                        "crashes": len(report["failures"]),
                        "restarts": report["restarts"],
                        "ckpts": report["committed_checkpoints"],
                        "lost (sim ms)": report["work_lost_s"] * 1e3,
                        "recov (sim ms)": report["recovery_latency_s"] * 1e3,
                        "progress": progress(seed, config),
                    },
                )
            )
    print()
    print(
        format_table(
            f"E9: fault campaign (MTBF {E9_MTBF_S:g}s, "
            f"{E9_MAX_FAILURES} crashes) vs checkpoint interval "
            f"({len(SEEDS)} replicas, {fleet.workers} workers)",
            [
                "done",
                "crashes",
                "restarts",
                "ckpts",
                "lost (sim ms)",
                "recov (sim ms)",
                "progress",
            ],
            rows,
        )
    )
    write_bench_json(
        "BENCH_E9.json",
        {
            "experiment": "e9_fault_campaign",
            "workers": fleet.workers,
            "wall_s": fleet.wall_s,
            "spec": fleet.spec,
            "mtbf_s": E9_MTBF_S,
            "max_failures": E9_MAX_FAILURES,
            "fault_free_makespan_s": baselines,
            "campaigns": {
                f"s{seed}/{config}": dict(
                    report_of(seed, config),
                    progress=progress(seed, config),
                )
                for seed in SEEDS
                for config in CONFIGS
            },
            "kernel_stats": fleet.kernel_stats(),
        },
    )

    for seed in SEEDS:
        # Without periodic checkpoints the first crash is fatal.
        unprotected = report_of(seed, "interval_off")
        assert not unprotected["completed"], (seed, unprotected)
        assert unprotected["restarts"] == 0, (seed, unprotected)
        # With the scheduler on, every campaign survives to completion.
        for config in PROTECTED:
            report = report_of(seed, config)
            assert report["completed"], (seed, config, report)
            assert report["restarts"] >= 1, (seed, config)
            assert report["committed_checkpoints"] >= 1, (seed, config)
            assert report["work_lost_s"] > 0.0, (seed, config)
        # Checkpointing more often strictly bounds the rollback: the
        # dense cadence loses no more work than the sparse one.
        assert (
            report_of(seed, "interval_0.15")["work_lost_s"]
            <= report_of(seed, "interval_0.4")["work_lost_s"]
        ), seed
