"""E9 — fault-injection campaigns: recovery economics vs checkpoint
interval.

Crashes nodes at a configurable MTBF (exponential inter-arrival, the
rollback-recovery literature's failure model) against a job protected
by autorecovery plus the periodic checkpoint scheduler, then follows
the recovery lineage to its end.  Reports the classic C/R tradeoff:

* **work lost** — progress rolled back per failure (failure time minus
  the capture time of the snapshot recovery used).  Shrinks with the
  checkpoint interval.
* **recovery latency** — failure detection to restarted-and-running.
* **effective progress** — fault-free makespan over faulty makespan.

The ``interval=off`` row is the control: no periodic checkpoints means
the first crash is fatal (no committed snapshot to recover from).

Machine-readable results land in ``BENCH_E9.json``.
"""

from repro.bench.harness import Row, format_table, fresh_universe, write_bench_json
from repro.simenv import CampaignSpec, run_campaign
from repro.tools.api import ompi_run

#: ~2 sim-seconds of fault-free runtime; intervals commit ~0.21 s
#: after the scheduler requests them
CHURN = {"loops": 200, "compute_s": 0.01, "state_bytes": 4 << 20}
N_NODES = 6
NP = 4
MTBF_S = 0.6
#: let the job reach steady state before the first crash may fire
START_AT = 0.35


def fault_free_makespan() -> float:
    universe = fresh_universe(N_NODES)
    job = ompi_run(universe, "churn", NP, args=CHURN)
    assert job.state.value == "finished"
    return universe.kernel.now


def campaign_at(checkpoint_every: float) -> dict:
    """One campaign run; returns the CampaignReport as a dict."""
    universe = fresh_universe(
        N_NODES,
        {
            "orte_errmgr_autorecover": "1",
            "snapc_full_checkpoint_every": str(checkpoint_every),
        },
    )
    job = ompi_run(universe, "churn", NP, args=CHURN, wait=False)
    spec = CampaignSpec(mtbf_s=MTBF_S, max_failures=2, start_at=START_AT)
    return run_campaign(universe, job, spec).to_dict()


def test_e9_fault_campaign_vs_checkpoint_interval(benchmark):
    intervals = [0.0, 0.15, 0.25, 0.4]

    def run():
        return {
            "fault_free_makespan_s": fault_free_makespan(),
            "campaigns": {
                interval: campaign_at(interval) for interval in intervals
            },
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = results["fault_free_makespan_s"]
    rows = []
    for interval in intervals:
        report = results["campaigns"][interval]
        label = "off" if interval == 0 else f"every {interval:g}s"
        progress = (
            baseline / report["makespan_s"] if report["completed"] else 0.0
        )
        rows.append(
            Row(
                f"interval={label}",
                {
                    "done": str(report["completed"]),
                    "crashes": len(report["failures"]),
                    "restarts": report["restarts"],
                    "ckpts": report["committed_checkpoints"],
                    "lost (sim ms)": report["work_lost_s"] * 1e3,
                    "recov (sim ms)": report["recovery_latency_s"] * 1e3,
                    "progress": progress,
                },
            )
        )
    print()
    print(
        format_table(
            "E9: fault campaign (MTBF {:g}s, 2 crashes) vs checkpoint "
            "interval".format(MTBF_S),
            [
                "done",
                "crashes",
                "restarts",
                "ckpts",
                "lost (sim ms)",
                "recov (sim ms)",
                "progress",
            ],
            rows,
        )
    )
    write_bench_json(
        "BENCH_E9.json",
        {
            "experiment": "e9_fault_campaign",
            "app": "churn",
            "app_args": CHURN,
            "n_nodes": N_NODES,
            "np": NP,
            "mtbf_s": MTBF_S,
            "max_failures": 2,
            "fault_free_makespan_s": baseline,
            "campaigns": {
                ("off" if k == 0 else f"{k:g}"): v
                for k, v in results["campaigns"].items()
            },
        },
    )

    # Without periodic checkpoints the first crash is fatal.
    unprotected = results["campaigns"][0.0]
    assert not unprotected["completed"]
    assert unprotected["restarts"] == 0
    # With the scheduler on, every campaign survives to completion.
    for interval in intervals[1:]:
        report = results["campaigns"][interval]
        assert report["completed"], report
        assert report["restarts"] >= 1
        assert report["committed_checkpoints"] >= 1
        assert report["work_lost_s"] > 0.0
    # Checkpointing more often strictly bounds the rollback: the dense
    # cadence loses no more work than the sparse one.
    assert (
        results["campaigns"][0.15]["work_lost_s"]
        <= results["campaigns"][0.4]["work_lost_s"]
    )
