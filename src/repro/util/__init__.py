"""Shared utilities: errors, process naming, logging, sequence helpers.

These are deliberately dependency-free; every other ``repro`` subpackage
may import from here.
"""

from repro.util.errors import (
    ReproError,
    MCAError,
    ComponentNotFoundError,
    ComponentSelectError,
    SimError,
    DeadlockError,
    NetworkError,
    VFSError,
    MPIError,
    TruncationError,
    CheckpointError,
    NotCheckpointableError,
    RestartError,
    SnapshotError,
    LaunchError,
    ProcessFailedError,
)
from repro.util.ids import ProcessName, JobId, Vpid
from repro.util.logging import get_logger, set_verbosity
from repro.util.seq import SeqCounter, SeqWindow

__all__ = [
    "ReproError",
    "MCAError",
    "ComponentNotFoundError",
    "ComponentSelectError",
    "SimError",
    "DeadlockError",
    "NetworkError",
    "VFSError",
    "MPIError",
    "TruncationError",
    "CheckpointError",
    "NotCheckpointableError",
    "RestartError",
    "SnapshotError",
    "LaunchError",
    "ProcessFailedError",
    "ProcessName",
    "JobId",
    "Vpid",
    "get_logger",
    "set_verbosity",
    "SeqCounter",
    "SeqWindow",
]
