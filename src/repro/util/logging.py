"""Component-aware logging.

A thin wrapper over :mod:`logging` that namespaces loggers under
``repro.*`` and provides a single global verbosity knob, mirroring
Open MPI's ``mca_base_verbose`` behaviour.
"""

from __future__ import annotations

import logging
import sys

_ROOT = "repro"
_configured = False


def _configure() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(name)s] %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro`` (e.g. ``orte.snapc``)."""
    _configure()
    return logging.getLogger(f"{_ROOT}.{name}")


def set_verbosity(level: int) -> None:
    """Set global verbosity: 0=warnings, 1=info, 2+=debug."""
    _configure()
    mapping = {0: logging.WARNING, 1: logging.INFO}
    logging.getLogger(_ROOT).setLevel(mapping.get(level, logging.DEBUG))
