"""Process naming, mirroring Open MPI's ``orte_process_name_t``.

Every process in the universe — HNP (mpirun), per-node daemons
(orteds), and application processes — is addressed by a
``(jobid, vpid)`` pair.  Job 0 is reserved for the runtime itself
(HNP and daemons); application jobs are numbered from 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

JobId = NewType("JobId", int)
Vpid = NewType("Vpid", int)

#: Jobid of the runtime infrastructure job (HNP + orteds).
DAEMON_JOBID = JobId(0)

#: Vpid of the HNP (mpirun) inside the daemon job.
HNP_VPID = Vpid(0)

#: Wildcard vpid used to address "every process in a job".
VPID_WILDCARD = Vpid(-1)


@dataclass(frozen=True, order=True)
class ProcessName:
    """Globally unique, orderable process name ``[jobid, vpid]``."""

    jobid: int
    vpid: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.jobid},{self.vpid}]"

    @property
    def is_daemon(self) -> bool:
        """True for HNP/orted processes (the runtime job)."""
        return self.jobid == DAEMON_JOBID

    @property
    def is_hnp(self) -> bool:
        """True only for the head node process (mpirun)."""
        return self.jobid == DAEMON_JOBID and self.vpid == HNP_VPID

    def matches(self, other: "ProcessName") -> bool:
        """Wildcard-aware comparison (``VPID_WILDCARD`` matches any vpid)."""
        if self.jobid != other.jobid:
            return False
        if self.vpid == VPID_WILDCARD or other.vpid == VPID_WILDCARD:
            return True
        return self.vpid == other.vpid


def hnp_name() -> ProcessName:
    """Name of the head node process."""
    return ProcessName(DAEMON_JOBID, HNP_VPID)


def daemon_name(index: int) -> ProcessName:
    """Name of the orted on node *index* (daemons start at vpid 1)."""
    if index < 0:
        raise ValueError("daemon index must be >= 0")
    return ProcessName(DAEMON_JOBID, index + 1)


def app_name(jobid: int, rank: int) -> ProcessName:
    """Name of application-rank *rank* in job *jobid* (jobid >= 1)."""
    if jobid < 1:
        raise ValueError("application jobids start at 1")
    if rank < 0:
        raise ValueError("rank must be >= 0")
    return ProcessName(jobid, rank)
