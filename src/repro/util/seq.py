"""Sequence-number helpers used by the PML matching engine and the CRCP
bookmark-exchange protocol.

``SeqCounter`` is a plain monotonic counter whose value is part of the
process image (it must be checkpointed/restored so post-restart traffic
continues the pre-checkpoint numbering).  ``SeqWindow`` tracks delivery
of a contiguous in-order stream and reports gaps, which the coordinated
checkpoint protocol uses to decide how many in-flight messages remain
to be drained.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SeqCounter:
    """Monotonic counter; ``next()`` returns then increments."""

    value: int = 0

    def next(self) -> int:
        v = self.value
        self.value += 1
        return v

    def peek(self) -> int:
        return self.value

    def snapshot(self) -> int:
        """Return picklable state (just the integer)."""
        return self.value

    @classmethod
    def restore(cls, state: int) -> "SeqCounter":
        return cls(value=state)


@dataclass
class SeqWindow:
    """Tracks receipt of sequence numbers 0..N with possible reordering.

    ``deliver(seq)`` records a sequence number; ``contiguous`` is the
    count of messages delivered with no gaps (i.e. the next expected
    in-order sequence number); ``missing_below(n)`` lists undelivered
    sequence numbers < n.
    """

    contiguous: int = 0
    _out_of_order: set[int] = field(default_factory=set)

    def deliver(self, seq: int) -> None:
        if seq < self.contiguous or seq in self._out_of_order:
            raise ValueError(f"duplicate sequence number {seq}")
        self._out_of_order.add(seq)
        while self.contiguous in self._out_of_order:
            self._out_of_order.remove(self.contiguous)
            self.contiguous += 1

    @property
    def total_delivered(self) -> int:
        return self.contiguous + len(self._out_of_order)

    def missing_below(self, n: int) -> list[int]:
        """Sequence numbers < n not yet delivered."""
        return [
            s
            for s in range(self.contiguous, n)
            if s not in self._out_of_order
        ]

    def snapshot(self) -> tuple[int, frozenset[int]]:
        return (self.contiguous, frozenset(self._out_of_order))

    @classmethod
    def restore(cls, state: tuple[int, frozenset[int]]) -> "SeqWindow":
        contiguous, out = state
        return cls(contiguous=contiguous, _out_of_order=set(out))
