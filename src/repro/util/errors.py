"""Exception hierarchy for the ``repro`` stack.

The hierarchy mirrors the layering of the system: simulation-kernel
errors, network/storage substrate errors, MPI semantic errors, and
fault-tolerance (checkpoint/restart) errors.  Everything derives from
:class:`ReproError` so callers can catch the whole family.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro stack."""


# --------------------------------------------------------------------------
# MCA (Modular Component Architecture)
# --------------------------------------------------------------------------


class MCAError(ReproError):
    """Base class for component-architecture errors."""


class ComponentNotFoundError(MCAError):
    """A component was requested by name but is not registered."""

    def __init__(self, framework: str, component: str):
        super().__init__(
            f"framework {framework!r} has no component named {component!r}"
        )
        self.framework = framework
        self.component = component


class ComponentSelectError(MCAError):
    """No component of a framework was selectable at open time."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimError(ReproError):
    """Base class for discrete-event kernel errors."""


class DeadlockError(SimError):
    """The event queue drained while runnable work remained blocked.

    Raised by the kernel when simulation cannot make progress: every
    live thread is waiting on a condition that no pending event can
    satisfy (e.g. a ``recv`` with no matching ``send`` anywhere).
    """

    def __init__(self, blocked: list[str]):
        super().__init__(
            "simulation deadlock; blocked threads: " + ", ".join(blocked)
        )
        self.blocked = blocked


class ProcessFailedError(SimError):
    """An operation touched a process that has been killed or crashed."""


class SimInterrupt(BaseException):
    """Out-of-band interrupt of a simulation run.

    Deliberately *not* a :class:`ReproError`: the kernel treats any
    exception escaping a thread step as that thread crashing, but a
    wall-clock watchdog (or Ctrl-C) that fires mid-step is aimed at
    the whole run, not at whichever thread it happened to land in.
    Subclasses pass straight through ``Kernel.run()`` to the caller.
    """


# --------------------------------------------------------------------------
# Substrates
# --------------------------------------------------------------------------


class NetworkError(ReproError):
    """Transport-level failure (down link, dead NIC, closed channel)."""


class VFSError(ReproError):
    """Simulated-filesystem failure (missing file, bad path, dead node)."""


# --------------------------------------------------------------------------
# MPI semantics
# --------------------------------------------------------------------------


class MPIError(ReproError):
    """MPI semantic error (bad rank, bad communicator, use before init)."""


class TruncationError(MPIError):
    """A received message was longer than the posted receive buffer."""


# --------------------------------------------------------------------------
# Fault tolerance
# --------------------------------------------------------------------------


class CheckpointError(ReproError):
    """A checkpoint request could not be completed."""


class NotCheckpointableError(CheckpointError):
    """A target process has checkpointing disabled.

    Per the paper (section 5.1), if *any* process in a checkpoint
    request cannot be checkpointed the user is notified and *no*
    participating process is affected.
    """

    def __init__(self, names: list[str]):
        super().__init__(
            "processes not checkpointable: " + ", ".join(names)
        )
        self.names = names


class RestartError(ReproError):
    """A restart request could not be completed."""


class SnapshotError(ReproError):
    """A snapshot reference is missing, malformed, or inconsistent."""


class LaunchError(ReproError):
    """The runtime failed to launch a job or daemon."""
