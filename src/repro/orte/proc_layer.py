"""ORTE per-application-process layer.

Hosts the process's runtime-facing state: its RML endpoint, the ORTE
INC (the middle of the three-layer notification stack, Figure 2), and
the *application coordinator* — the checkpoint notification thread of
paper section 6.5, which waits for checkpoint requests from the local
coordinator, drives the OPAL entry point, and reports the resulting
local snapshot back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.ft_event import FTState
from repro.opal.layer import CheckpointRequest
from repro.orte.oob import (
    RML,
    TAG_CKPT_ABORT,
    TAG_CKPT_DO,
    TAG_CKPT_DONE,
    TAG_CKPT_TERM_ACK,
)
from repro.simenv.kernel import SimGen
from repro.util.errors import NetworkError, ReproError
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.opal.layer import OpalLayer
    from repro.orte.universe import Universe
    from repro.simenv.process import SimProcess

log = get_logger("orte.proc")


class OrteProcLayer:
    """Per-app-process ORTE state."""

    SERVICE_KEY = "orte"

    def __init__(self, proc: "SimProcess", universe: "Universe", opal: "OpalLayer"):
        self.proc = proc
        self.universe = universe
        self.opal = opal
        self.rml = RML(universe, proc)
        #: trace of ft_event states seen (tests / Figure-2 reproduction)
        self.ft_trace: list[FTState] = []
        opal.inc_stack.register("orte", self._orte_inc)
        proc.register_service(self.SERVICE_KEY, self)
        self._notif_thread = proc.spawn_thread(
            self._notification_loop(), name="cr-notify", daemon=True
        )
        self._abort_thread = proc.spawn_thread(
            self._abort_loop(), name="cr-abort", daemon=True
        )

    # -- INC -----------------------------------------------------------------

    def _orte_inc(self, state: FTState, down) -> SimGen:
        # The ORTE layer's runtime connections (RML over TCP) survive a
        # checkpoint in-process; nothing to quiesce here beyond
        # recording the traversal, but the hook point exists exactly as
        # in Open MPI (one INC per layer).
        self.ft_trace.append(state)
        yield from down(state)
        return None

    # -- application coordinator (the checkpoint notification thread) -----------

    def _notification_loop(self) -> SimGen:
        while True:
            sender, payload = yield from self.rml.recv(TAG_CKPT_DO)
            reply = yield from self._handle_checkpoint(payload)
            try:
                yield from self.rml.send(
                    sender, TAG_CKPT_DONE, self.rml.reply_to(payload, reply)
                )
            except NetworkError:
                pass
            if reply.get("ok") and payload.get("terminate"):
                # Checkpoint-and-terminate: the INC stack already saw
                # HALT.  Wait for the local coordinator to acknowledge
                # receipt of our reply, then drop the process (exiting
                # immediately would race the in-flight CKPT_DONE).
                yield from self.rml.recv(TAG_CKPT_TERM_ACK)
                self.proc.exit("halted")

    def _abort_loop(self) -> SimGen:
        """Second service thread: abort notifications must be
        deliverable while the notification thread is busy coordinating."""
        while True:
            yield from self.rml.recv(TAG_CKPT_ABORT)
            ompi = self.proc.maybe_service("ompi")
            if ompi is not None and ompi.crcp is not None:
                ompi.crcp.abort()

    def _handle_checkpoint(self, payload: dict) -> SimGen:
        target_fs = self._resolve_fs(payload["fs"])
        request = CheckpointRequest(
            interval=payload["interval"],
            target_fs=target_fs,
            snapshot_dir=payload["dir"],
            terminate=bool(payload.get("terminate", False)),
            options=dict(payload.get("options", {})),
        )
        try:
            ref, meta = yield from self.opal.entry_point(request)
        except ReproError as exc:
            log.warning("%s: checkpoint failed: %s", self.proc.label, exc)
            return {"ok": False, "error": str(exc)}
        return {
            "ok": True,
            "path": ref.path,
            "fs": payload["fs"],
            "node": meta.origin_node,
            "crs": meta.crs_component,
            "os_tag": meta.os_tag,
            "portable": meta.portable,
            "kind": meta.kind,
            "bytes": meta.written_bytes,
            # CAS-ready manifest summary: lets the global coordinator
            # negotiate with the chunk store without reading remote
            # manifests first.
            "chunk_bytes": meta.chunk_bytes,
            "total_bytes": meta.total_bytes,
            "hashes": meta.chunk_hashes,
            "present": meta.present_chunks,
        }

    def _resolve_fs(self, kind: str):
        if kind == "stable":
            return self.universe.cluster.stable_fs
        local = self.proc.node.local_fs
        if local is None:
            raise ReproError(f"node {self.proc.node.name} has no local fs")
        return local
