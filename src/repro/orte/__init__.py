"""ORTE — Open Run-Time Environment (middle layer).

Provides the parallel runtime the paper's coordination machinery lives
in: the out-of-band control plane (OOB/RML), process launch (PLM
framework), per-node daemons (orteds), the head node process
(mpirun/HNP), the snapshot coordinator framework (**SNAPC**, section
6.1), the file management framework (**FILEM**, section 6.2), and the
error manager.
"""

from repro.orte.job import AppSpec, Job, JobState, ProcSpec
from repro.orte.universe import Universe

__all__ = ["AppSpec", "Job", "JobState", "ProcSpec", "Universe"]
