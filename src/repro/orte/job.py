"""Jobs, application specs, and process placement.

An :class:`AppSpec` names a registered application (see
:mod:`repro.apps.registry`) plus its arguments; because the name and
arguments are recorded in global snapshot metadata, ``ompi-restart``
can reconstruct the job without the user re-supplying anything (paper
section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.simenv.kernel import SimGen
from repro.util.ids import ProcessName

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.process import SimProcess
    from repro.snapshot import GlobalSnapshotRef


@dataclass(frozen=True)
class AppSpec:
    """What to run: a registered app name + arguments."""

    name: str
    args: dict = field(default_factory=dict)


@dataclass
class ProcSpec:
    """Launch instructions for a single rank."""

    jobid: int
    rank: int
    node_name: str
    app: AppSpec
    #: present on the restart path: where the preloaded local snapshot
    #: lives on the target node ("fs" is "local" or "stable")
    restart_from: dict | None = None


class JobState(enum.Enum):
    PENDING = "pending"
    LAUNCHING = "launching"
    RUNNING = "running"
    CHECKPOINTING = "checkpointing"
    FINISHED = "finished"
    FAILED = "failed"
    HALTED = "halted"  # checkpoint-and-terminate


class Job:
    """One parallel application instance."""

    def __init__(self, jobid: int, app: AppSpec, np: int, params):
        self.jobid = jobid
        self.app = app
        self.np = np
        self.params = params
        self.state = JobState.PENDING
        self.procs: dict[int, "SimProcess"] = {}
        self.placements: dict[int, str] = {}
        self.results: dict[int, Any] = {}
        self.exited: set[int] = set()
        self.failed_ranks: set[int] = set()
        self.done_event = None  # set by Universe (needs kernel)
        #: True while a checkpoint-and-terminate is in progress
        self.halting = False
        #: checkpoint interval counter (paper section 4: logical ordering)
        self.next_interval = 1
        #: global snapshot refs taken of this job, in interval order
        self.snapshots: list["GlobalSnapshotRef"] = []
        #: restarted-from reference, if this job came from ompi-restart
        self.restarted_from: "GlobalSnapshotRef | None" = None

    @property
    def is_done(self) -> bool:
        return self.state in (JobState.FINISHED, JobState.FAILED, JobState.HALTED)

    def rank_of(self, name: ProcessName) -> int:
        if name.jobid != self.jobid:
            raise ValueError(f"{name} is not in job {self.jobid}")
        return name.vpid

    def note_exit(self, rank: int, result: Any, failed: bool) -> None:
        self.exited.add(rank)
        if failed:
            self.failed_ranks.add(rank)
        else:
            self.results[rank] = result
        if len(self.exited) == self.np and not self.is_done:
            if self.failed_ranks:
                self.state = JobState.FAILED
            elif self.halting:
                self.state = JobState.HALTED
            else:
                self.state = JobState.FINISHED
            if self.done_event is not None and not self.done_event.fired:
                self.done_event.fire(self.state)

    def mark_failed(self) -> None:
        if not self.is_done:
            self.state = JobState.FAILED
            if self.done_event is not None and not self.done_event.fired:
                self.done_event.fire(self.state)

    def wait(self) -> SimGen:
        """Generator: block until the job reaches a terminal state."""
        from repro.simenv.kernel import WaitEvent

        if self.is_done:
            return self.state
        state = yield WaitEvent(self.done_event)
        return state

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Job {self.jobid} app={self.app.name} np={self.np} "
            f"{self.state.value}>"
        )
