"""Durable control-plane state store (write-ahead, crash-consistent).

The paper's global coordinator keeps everything that matters — the job
table, recovery lineages, the staging queue — in mpirun's memory, so
the HNP's node is the one machine whose death kills the universe.
Skjellum & Schafer's critique of C/R libraries applies to the C/R
runtime itself: the recovery machinery must survive its own failures.
This module externalizes the control plane the way arXiv:1906.05020
externalizes runtime state, so a re-elected HNP can rebuild it.

Design: a journaled key/value store on stable storage, one JSON record
per mutation::

    <root>/base.json              compacted snapshot of every table
    <root>/wal/<seq>.json         one record: {seq, table, key, value, sha}

Writes are *ordered*, not synchronous: :meth:`StateStore.put` updates
the in-memory tables immediately and appends the record to a FIFO the
writer thread drains in sequence order through the VFS (whose writes
are atomic-at-close, the fsync analogue).  ``sha`` is a content hash
over ``(seq, table, key, value)`` via the CAS digest helper, so replay
detects torn or corrupted records instead of trusting them.  Replay
applies the newest intact ``base.json`` (a torn base falls back to the
WAL alone), then every WAL record in sequence order up to the first
record that fails its hash or fails to parse — the torn suffix is
discarded, exactly like a database WAL.  Sequence *gaps* are legal and
do not stop replay: an HNP dying with unwritten appends queued leaves
a hole where :meth:`drop_pending` discarded them.

Compaction folds the WAL into ``base.json`` once it grows past
``statestore_wal_max_records``, and only at a quiet moment (no pending
appends), so the base always reflects exactly the records it replaces.
A crash between the base write and the WAL removal is safe: replay
ignores WAL records whose seq the base already covers.

The writer thread lives in the *current* HNP process (re-attached per
incarnation via :meth:`attach`), so it dies with the HNP and the next
incarnation's :meth:`replay` sees only what actually reached stable
storage.  With failover disabled the universe carries a
:class:`NullStateStore`, which performs no I/O and posts no kernel
events — default-configuration traces stay byte-identical.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.simenv.kernel import Delay, SimGen, WaitEvent
from repro.util.errors import VFSError
from repro.util.logging import get_logger
from repro.vfs import path as vpath
from repro.vfs.cas import chunk_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.universe import Universe
    from repro.simenv.kernel import SimEvent
    from repro.simenv.process import SimProcess

log = get_logger("orte.statestore")

DEFAULT_ROOT = "/universe/statestore"
BASE_FILE = "base.json"
WAL_DIR = "wal"
#: pseudo-table naming the base snapshot in its own hash
_BASE_TABLE = "__base__"


def _record_sha(seq: int, table: str, key: str, value: Any) -> str:
    """Torn-write detector: content hash of one record's payload."""
    blob = json.dumps([seq, table, key, value], sort_keys=True)
    return chunk_digest(blob.encode())


class StateStore:
    """Write-ahead control-plane store on the cluster's stable storage."""

    enabled = True

    def __init__(
        self,
        universe: "Universe",
        root: str = DEFAULT_ROOT,
        wal_max_records: int = 256,
        retry_s: float = 0.05,
    ):
        self.universe = universe
        self.kernel = universe.kernel
        self.fs = universe.cluster.stable_fs
        self.root = vpath.normalize(root)
        self.wal_max_records = max(1, int(wal_max_records))
        self.retry_s = max(1e-6, float(retry_s))
        self._wal_root = vpath.join(self.root, WAL_DIR)
        self._base_path = vpath.join(self.root, BASE_FILE)
        self.fs.mkdir(self._wal_root)
        #: the live view: table name -> {key: value}
        self.tables: dict[str, dict[str, Any]] = {}
        #: records accepted but not yet durable: (seq, serialized bytes)
        self._pending: deque[tuple[int, bytes]] = deque()
        #: flush waiters: (target seq, event)
        self._flush_waiters: list[tuple[int, "SimEvent"]] = []
        self._wake: "SimEvent | None" = None
        self._next_seq = 0
        self._written_seq = -1
        self._base_seq = -1
        # counters (tests, meta-reports)
        self.appended = 0
        self.compactions = 0
        self.dropped = 0

    # -- paths ----------------------------------------------------------------

    def _wal_path(self, seq: int) -> str:
        return vpath.join(self._wal_root, f"{seq:08d}.json")

    def _wal_entries(self) -> list[tuple[int, str]]:
        entries = []
        for path in self.fs.list_tree(self._wal_root):
            name = path.rsplit("/", 1)[-1]
            if not name.endswith(".json"):
                continue
            try:
                entries.append((int(name[: -len(".json")]), path))
            except ValueError:
                continue
        entries.sort()
        return entries

    # -- mutation -------------------------------------------------------------

    def put(self, table: str, key: str, value: Any) -> None:
        """Record ``tables[table][key] = value``; durable in order.

        Synchronous (callable from handlers and from outside the sim):
        the in-memory view updates now, the WAL append is queued for
        the writer thread.  *value* must be JSON-serializable; it is
        serialized here, so later caller-side mutation cannot change
        what lands on disk.
        """
        seq = self._next_seq
        self._next_seq += 1
        self.tables.setdefault(table, {})[key] = value
        record = {
            "seq": seq,
            "table": table,
            "key": key,
            "value": value,
            "sha": _record_sha(seq, table, key, value),
        }
        data = json.dumps(record, sort_keys=True).encode()
        self._pending.append((seq, data))
        if self._wake is not None and not self._wake.fired:
            self._wake.fire(None)

    def flush(self) -> SimGen:
        """Generator: block until every put so far is on stable storage."""
        if not self._pending:
            return None
        event = self.kernel.event("statestore.flush")
        self._flush_waiters.append((self._pending[-1][0], event))
        yield WaitEvent(event)
        return None

    def drop_pending(self) -> int:
        """Discard queued-but-unwritten appends (HNP death).

        Called synchronously by the election path *before* the new HNP
        attaches its writer: the dead incarnation's un-durable appends
        must not be written by the successor as if they had happened.
        Their seqs become permanent WAL gaps, which replay tolerates.
        The in-memory tables are not rewound here — the successor's
        :meth:`replay` rebuilds them from what is actually on disk.
        """
        count = len(self._pending)
        self._pending.clear()
        self._flush_waiters.clear()
        self.dropped += count
        return count

    # -- the writer ------------------------------------------------------------

    def attach(self, proc: "SimProcess") -> None:
        """Start this incarnation's writer thread inside *proc*."""
        proc.spawn_thread(
            self._writer_loop(), name="statestore-writer", daemon=True
        )

    def _writer_loop(self) -> SimGen:
        while True:
            if not self._pending:
                self._wake = self.kernel.event("statestore.wake")
                yield WaitEvent(self._wake)
                continue
            seq, data = self._pending[0]
            yield from self._write_record(seq, data)
            # Same synchronous segment as the write completing: a kill
            # can never land between "durable" and "dequeued".
            self._pending.popleft()
            self._written_seq = seq
            self.appended += 1
            self._fire_flush_waiters()
            if (
                not self._pending
                and self._written_seq - self._base_seq >= self.wal_max_records
            ):
                yield from self._compact()

    def _write_record(self, seq: int, data: bytes) -> SimGen:
        span = self.kernel.tracer.begin(
            "statestore.append", cat="statestore", seq=seq, bytes=len(data)
        )
        path = self._wal_path(seq)
        retries = 0
        while True:
            try:
                yield from self.fs.write(path, data)
                break
            except VFSError:
                # Stable storage is in an injected fault window; the
                # record is not allowed to be lost, so pace and retry
                # until the window closes.
                retries += 1
                yield Delay(self.retry_s)
        span.end(retries=retries)
        return None

    def _fire_flush_waiters(self) -> None:
        matured = [w for w in self._flush_waiters if w[0] <= self._written_seq]
        if not matured:
            return
        self._flush_waiters = [
            w for w in self._flush_waiters if w[0] > self._written_seq
        ]
        for _seq, event in matured:
            if not event.fired:
                event.fire(None)

    def _compact(self) -> SimGen:
        """Fold the WAL into ``base.json`` (quiet moments only).

        The caller guarantees no appends are pending, so the in-memory
        tables are exactly the state the written WAL describes.  A
        failed base write just postpones compaction; a crash after the
        base write but before the WAL removal leaves stale records that
        replay ignores (their seq is covered by the base).
        """
        span = self.kernel.tracer.begin(
            "statestore.compact", cat="statestore", seq=self._written_seq
        )
        doc = {
            "seq": self._written_seq,
            "tables": self.tables,
            "sha": _record_sha(
                self._written_seq, _BASE_TABLE, "", self.tables
            ),
        }
        data = json.dumps(doc, sort_keys=True).encode()
        try:
            yield from self.fs.write(self._base_path, data)
        except VFSError as exc:
            span.end(ok=False, error=str(exc))
            return None
        try:
            yield from self.fs.remove_tree(self._wal_root)
        except VFSError:
            pass
        self.fs.mkdir(self._wal_root)
        self._base_seq = self._written_seq
        self.compactions += 1
        span.end(ok=True)
        return None

    # -- replay ---------------------------------------------------------------

    def replay(self) -> SimGen:
        """Generator: rebuild the tables from stable storage.

        Returns the replayed ``{table: {key: value}}`` mapping (also
        installed as :attr:`tables`).  Torn records — a hash mismatch
        or unparsable JSON — end the replay at that point: everything
        after a torn record is untrusted, exactly like a torn WAL
        suffix.  Missing seqs are skipped over (dropped appends).
        """
        span = self.kernel.tracer.begin("statestore.replay", cat="statestore")
        tables: dict[str, dict[str, Any]] = {}
        base_seq = -1
        if self.fs.exists(self._base_path):
            try:
                raw = yield from self.fs.read(self._base_path)
                doc = json.loads(raw.decode())
                if doc.get("sha") == _record_sha(
                    doc["seq"], _BASE_TABLE, "", doc["tables"]
                ):
                    tables = doc["tables"]
                    base_seq = int(doc["seq"])
                else:
                    log.warning("statestore base is torn; replaying WAL only")
            except (VFSError, ValueError, KeyError, TypeError):
                log.warning("statestore base unreadable; replaying WAL only")
        applied = 0
        torn = 0
        last = base_seq
        for seq, path in self._wal_entries():
            if seq <= base_seq:
                continue  # compacted away; a stale record is harmless
            try:
                raw = yield from self.fs.read(path)
                doc = json.loads(raw.decode())
            except (VFSError, ValueError):
                torn = 1
                break
            if doc.get("seq") != seq or doc.get("sha") != _record_sha(
                seq, doc.get("table"), doc.get("key"), doc.get("value")
            ):
                torn = 1
                break
            tables.setdefault(doc["table"], {})[doc["key"]] = doc["value"]
            last = seq
            applied += 1
        self.tables = tables
        self._written_seq = last
        self._base_seq = base_seq
        # Never rewind the in-memory counter: un-durable seqs that were
        # dropped must not be re-minted for different records.
        self._next_seq = max(self._next_seq, last + 1)
        span.end(applied=applied, last_seq=last, torn=torn)
        return tables


class NullStateStore:
    """Store used when failover is off: no I/O, no kernel events.

    The determinism suite compares default-configuration runs event by
    event, so the disabled store must not even post wake events — its
    generators complete without a single yield.
    """

    enabled = False

    def __init__(self):
        self.tables: dict[str, dict[str, Any]] = {}

    def attach(self, proc: "SimProcess") -> None:
        return None

    def put(self, table: str, key: str, value: Any) -> None:
        return None

    def drop_pending(self) -> int:
        return 0

    def flush(self) -> SimGen:
        return None
        yield  # pragma: no cover - unreachable; makes flush a generator

    def replay(self) -> SimGen:
        return {}
        yield  # pragma: no cover - unreachable; makes replay a generator


def build_statestore(universe: "Universe") -> "StateStore | NullStateStore":
    """The universe's store per its MCA params (Null when disabled)."""
    params = universe.params
    failover = params.get_bool("orte_hnp_failover", False)
    if not params.get_bool("statestore_enabled", failover):
        return NullStateStore()
    return StateStore(
        universe,
        root=params.get("statestore_root", DEFAULT_ROOT),
        wal_max_records=params.get_int("statestore_wal_max_records", 256),
        retry_s=params.get_float("statestore_retry_s", 0.05),
    )
