"""PLM framework base.

``launch`` runs at the HNP: it groups the job's :class:`ProcSpec`s by
node, contacts each node's orted over RML, and waits for
acknowledgements.  Components control the cost and concurrency of the
node contacts (the part that is ``rsh`` vs ``slurm`` in real life).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import Component
from repro.orte.job import ProcSpec
from repro.orte.oob import TAG_LAUNCH, TAG_LAUNCH_ACK
from repro.simenv.kernel import Delay, SimGen, WaitAll, WaitEvent
from repro.util.errors import LaunchError, ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.orte.hnp import HNP


class PLMComponent(Component):
    """Base class for launch components."""

    framework_name = "plm"
    #: serial cost of contacting one node (component-specific)
    per_node_cost_s = 0.0
    #: how many node contacts may be in flight at once
    max_concurrency = 1

    def launch(self, hnp: "HNP", specs: list[ProcSpec]) -> SimGen:
        """Launch all *specs*; returns when every orted has ACKed."""
        by_node: dict[str, list[ProcSpec]] = {}
        for spec in specs:
            by_node.setdefault(spec.node_name, []).append(spec)

        kernel = hnp.proc.kernel
        slots = {"free": self.max_concurrency}
        slot_event = [kernel.event("plm.slot")]
        done_events = []
        # Failures are collected rather than raised so that every node
        # contact settles before launch reports the error — otherwise a
        # fast failure would let slower contacts create orphan ranks
        # after the caller has already cleaned up.
        errors: list[str] = []

        def contact(node_name: str, node_specs: list[ProcSpec]) -> SimGen:
            while slots["free"] <= 0:
                yield WaitEvent(slot_event[0])
            slots["free"] -= 1
            try:
                if self.per_node_cost_s:
                    yield Delay(self.per_node_cost_s)
                # Resolve the orted from the universe — node naming
                # schemes are configurable, so the daemon address must
                # not be derived from the node name string.
                _, reply = yield from hnp.rml.rpc(
                    hnp.universe.orted_for(node_name).proc.name,
                    TAG_LAUNCH,
                    {"specs": node_specs},
                    TAG_LAUNCH_ACK,
                )
                if not reply.get("ok", False):
                    errors.append(
                        f"orted on {node_name} refused launch: "
                        f"{reply.get('error', 'unknown')}"
                    )
            except ReproError as exc:
                errors.append(f"{node_name}: {exc}")
            finally:
                slots["free"] += 1
                old, slot_event[0] = slot_event[0], kernel.event("plm.slot")
                if not old.fired:
                    old.fire(None)
            return node_name

        for node_name, node_specs in sorted(by_node.items()):
            thread = hnp.proc.spawn_thread(
                contact(node_name, node_specs),
                name=f"plm-launch-{node_name}",
                daemon=True,
            )
            done_events.append(thread.done)
        yield WaitAll(done_events)
        if errors:
            raise LaunchError("; ".join(errors))
        return len(by_node)


def register_plm_components(registry: "FrameworkRegistry") -> None:
    from repro.orte.plm.rsh import RshPLM
    from repro.orte.plm.slurm import SlurmPLM

    registry.add_component("plm", RshPLM)
    registry.add_component("plm", SlurmPLM)
