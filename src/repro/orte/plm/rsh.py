"""``rsh`` PLM component: remote-shell launch.

Each node contact opens an rsh/ssh session (tens of milliseconds) with
bounded concurrency (``plm_rsh_num_concurrent``), like Open MPI's
``plm_rsh_num_concurrent`` default behaviour.
"""

from __future__ import annotations

from repro.mca.component import component_of
from repro.orte.plm.base import PLMComponent


@component_of("plm", "rsh", priority=10)
class RshPLM(PLMComponent):
    def open(self, context: object | None = None) -> None:
        super().open(context)
        self.per_node_cost_s = self.params.get_float("plm_rsh_session_cost", 0.030)
        self.max_concurrency = self.params.get_int("plm_rsh_num_concurrent", 8)
