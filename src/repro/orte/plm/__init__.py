"""PLM — process lifecycle management (launch) framework.

The MCA example from paper section 3: the process-launch framework has
interchangeable components (SLURM, RSH).  Both are reproduced: ``rsh``
pays a per-node remote-shell session cost with bounded concurrency,
``slurm`` pays one cheap batched allocation call.
"""

from repro.orte.plm.base import PLMComponent, register_plm_components
from repro.orte.plm.rsh import RshPLM
from repro.orte.plm.slurm import SlurmPLM

__all__ = ["PLMComponent", "register_plm_components", "RshPLM", "SlurmPLM"]
