"""``slurm`` PLM component: batch-scheduler launch.

One cheap allocation call covers all nodes (the scheduler already has
daemons everywhere), so node contacts are fast and fully concurrent.
Selected automatically when the environment advertises a SLURM
allocation (``plm_slurm_jobid`` parameter set), mirroring Open MPI's
environment-sensing selection.
"""

from __future__ import annotations

from repro.mca.component import component_of
from repro.orte.plm.base import PLMComponent


@component_of("plm", "slurm", priority=20)
class SlurmPLM(PLMComponent):
    def query(self, context: object | None = None) -> bool:
        return "plm_slurm_jobid" in self.params

    def open(self, context: object | None = None) -> None:
        super().open(context)
        self.per_node_cost_s = self.params.get_float("plm_slurm_step_cost", 0.005)
        self.max_concurrency = self.params.get_int("plm_slurm_num_concurrent", 64)
