"""Error manager: failure detection and hardened recovery policy.

The paper lists "automatic, transparent recovery" as an intended
extension of the design; this module implements it as a resilience
subsystem rather than a one-shot gesture.  With
``orte_errmgr_autorecover=1`` the HNP reacts to a rank or node failure
by aborting the damaged job (and its in-flight staging pipeline) and
restarting it from a usable global snapshot on the surviving nodes.

The recovery path itself tolerates faults (the failure mode Skjellum &
Schafer call out for C/R libraries):

* **Bounded, backoff-paced retry** — a lineage (the original job plus
  every job recovered from it) gets ``orte_errmgr_max_recoveries``
  restart attempts total; retries after a failed attempt are paced by
  an exponential backoff starting at ``orte_errmgr_backoff`` simulated
  seconds.
* **Node death during recovery** — a node dying while the restart is
  in flight fails that attempt; the next attempt re-plans placement,
  which only ever uses nodes that are still up.
* **Snapshot walk-back** — the newest entry of ``job.snapshots`` may
  be unusable (staging aborted, failed, or a delta whose base chain
  broke); recovery walks back to the newest COMMITTED interval whose
  base chain is intact on stable storage, verifying the persisted
  metadata rather than trusting in-memory state.
* **No permanent blacklist** — a ref that fails a restart is skipped
  only for the remainder of that episode (and any interval chained on
  it is treated as broken too).  A later episode re-verifies from
  scratch: transient stable-storage faults do not poison a good
  COMMITTED interval, and CAS-backed intervals are checked chunk by
  chunk against the store, so a missing chunk repaired by re-staging
  makes the interval usable again.
* **Recovered jobs are seeded** — a restarted job begins life with the
  snapshot it came from (and its committed ancestors) as its recovery
  baseline, so a re-failure before its first checkpoint still has
  something to recover to.

Detection and recovery are traced as ``errmgr.detect`` /
``errmgr.recover`` spans when the observability layer is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.orte.job import Job, JobState
from repro.simenv.kernel import Delay, SimGen
from repro.snapshot import (
    STAGE_COMMITTED,
    GlobalSnapshotRef,
    parse_global_dirname,
    read_global_meta,
)
from repro.util.errors import ReproError, RestartError, SnapshotError
from repro.util.ids import ProcessName
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP
    from repro.simenv.kernel import SimEvent

log = get_logger("orte.errmgr")


@dataclass
class RecoveryRecord:
    """The audit trail of one failure-to-recovery episode."""

    failed_jobid: int
    detected_at: float
    new_jobid: int | None = None
    recovered_at: float | None = None
    #: restart attempts spent on this episode (>= 1 once recovery ran)
    attempts: int = 0
    #: snapshot the successful restart used
    snapshot: str | None = None
    #: sim time that snapshot's image was captured (work-lost baseline)
    snapshot_sim_time: float | None = None
    #: why recovery gave up (None on success)
    error: str | None = None

    @property
    def recovered(self) -> bool:
        return self.new_jobid is not None

    @property
    def latency_s(self) -> float | None:
        """Detection to restarted-and-running."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.detected_at

    @property
    def work_lost_s(self) -> float | None:
        """Progress rolled back: failure time minus snapshot capture."""
        if self.snapshot_sim_time is None:
            return None
        return self.detected_at - self.snapshot_sim_time

    def to_dict(self) -> dict:
        return {
            "failed_jobid": self.failed_jobid,
            "new_jobid": self.new_jobid,
            "detected_at": self.detected_at,
            "recovered_at": self.recovered_at,
            "attempts": self.attempts,
            "snapshot": self.snapshot,
            "snapshot_sim_time": self.snapshot_sim_time,
            "latency_s": self.latency_s,
            "work_lost_s": self.work_lost_s,
            "error": self.error,
        }


class ErrMgr:
    """Per-HNP failure policy engine."""

    def __init__(self, hnp: "HNP"):
        self.hnp = hnp
        params = hnp.universe.params
        self.autorecover = params.get_bool("orte_errmgr_autorecover", False)
        #: restart attempts allowed per job lineage
        self.max_recoveries = max(
            1, params.get_int("orte_errmgr_max_recoveries", 5)
        )
        #: base retry pacing (exponential: backoff, 2x, 4x, ...)
        self.backoff = max(
            0.0, params.get_float("orte_errmgr_backoff", 0.05)
        )
        #: jobs recovered: (failed_jobid, new_jobid)
        self.recoveries: list[tuple[int, int]] = []
        #: one record per failure episode, recovered or not
        self.recovery_log: list[RecoveryRecord] = []
        #: recovered jobid -> the jobid it was recovered from
        self._lineage: dict[int, int] = {}
        #: lineage root -> restart attempts spent
        self._attempts: dict[int, int] = {}
        #: lineage roots with a recovery currently in flight
        self._recovering: set[int] = set()
        #: lineage root -> detection timestamps of its failures (fed to
        #: the adaptive checkpoint scheduler's MTBF estimate)
        self._failures_by_root: dict[int, list[float]] = {}
        hnp.universe.cluster.failures.on_failure(self._on_injected_failure)

    # -- detection -------------------------------------------------------------

    def _on_injected_failure(self, description: str) -> None:
        """Failure-injector callback (runs synchronously in the kernel).

        ``node:`` injections kill the orted too, so no PROC_EXIT will
        arrive for ranks on that node — the heartbeat-loss path.
        ``process:`` injections are routed through the same rank-failure
        policy rather than relying on the PROC_EXIT message surviving.
        """
        universe = self.hnp.universe
        if universe.hnp is not self.hnp:
            # A newer incarnation owns failure handling; this instance
            # (subscribed by a replaced HNP) stands down.
            return
        if not self.hnp.proc.alive:
            # The HNP died with (or before) this failure.  Giving up
            # here used to silently drop the recovery work; with the
            # durable control plane the failure is buffered and handed
            # to the next incarnation during rehydration instead.
            universe.note_orphaned_failure(description)
            return
        kind, _, target = description.partition(":")
        if kind == "node":
            for job in list(self.hnp.universe.jobs.values()):
                if job.is_done:
                    continue
                lost = [r for r, n in job.placements.items() if n == target]
                if not lost:
                    continue
                self.hnp.proc.spawn_thread(
                    self._handle_lost_ranks(job, lost, f"node {target} failed"),
                    name=f"errmgr-node-{target}-job{job.jobid}",
                    daemon=True,
                )
        elif kind == "process":
            located = self._locate_rank(target)
            if located is None:
                return
            job, rank = located
            if job.is_done:
                return
            self.hnp.proc.spawn_thread(
                self._handle_lost_ranks(job, [rank], "killed by injector"),
                name=f"errmgr-proc-{target}",
                daemon=True,
            )

    @staticmethod
    def _parse_app_label(label: str) -> tuple[int, int] | None:
        """``appJ.R`` -> ``(jobid, rank)``; None for daemons/tools."""
        if not label.startswith("app"):
            return None
        try:
            jobid_s, rank_s = label[3:].split(".", 1)
            return int(jobid_s), int(rank_s)
        except ValueError:
            return None

    def _locate_rank(self, label: str) -> tuple[Job, int] | None:
        parsed = self._parse_app_label(label)
        if parsed is None:
            return None
        job = self.hnp.universe.jobs.get(parsed[0])
        if job is None:
            return None
        return job, parsed[1]

    def _handle_lost_ranks(self, job: Job, lost: list[int], detail: str) -> SimGen:
        for rank in lost:
            yield from self.on_rank_failure(job, rank, detail)
        return None

    # -- lineage ---------------------------------------------------------------

    def _root_of(self, job: Job) -> int:
        """The original jobid of *job*'s recovery lineage.

        Jobs created by ``ompi-restart`` (including half-launched
        recovery attempts the error manager has not registered yet)
        are folded into their ancestor's lineage via the jobid encoded
        in the snapshot they restarted from.
        """
        jobid = job.jobid
        if jobid not in self._lineage and job.restarted_from is not None:
            parsed = parse_global_dirname(job.restarted_from.path)
            if parsed is not None and parsed[0] != jobid:
                self._lineage[jobid] = parsed[0]
        seen: set[int] = set()
        while jobid in self._lineage and jobid not in seen:
            seen.add(jobid)
            jobid = self._lineage[jobid]
        return jobid

    def _root_of_jobid(self, jobid: int) -> int:
        """Lineage root by jobid alone (no Job object needed)."""
        seen: set[int] = set()
        while jobid in self._lineage and jobid not in seen:
            seen.add(jobid)
            jobid = self._lineage[jobid]
        return jobid

    def lineage_root(self, job: Job) -> int:
        """Public lineage-root lookup (scheduler, campaign reporting)."""
        return self._root_of(job)

    def lineage_jobids(self, job: Job) -> set[int]:
        """Every jobid in *job*'s recovery lineage (root included)."""
        root = self._root_of(job)
        members = {root, job.jobid}
        for jobid in self._lineage:
            if self._root_of_jobid(jobid) == root:
                members.add(jobid)
        return members

    def lineage_failure_times(self, job: Job) -> list[float]:
        """Detection timestamps of every failure in *job*'s lineage.

        Recorded on first detection regardless of whether recovery is
        enabled or succeeds — the adaptive checkpoint scheduler divides
        observed lifetime by this count for its online MTBF estimate.
        """
        return list(self._failures_by_root.get(self._root_of(job), ()))

    def is_recovering(self, job: Job) -> bool:
        """True while *job*'s lineage has a recovery in flight."""
        return self._root_of(job) in self._recovering

    def attempts_spent(self, job: Job) -> int:
        return self._attempts.get(self._root_of(job), 0)

    # -- outcome plumbing --------------------------------------------------------

    def recovery_outcome(self, jobid: int) -> "SimEvent":
        """Event fired once failure handling of *jobid* settles.

        Fires with the successor :class:`Job` when recovery succeeded,
        or ``None`` when recovery was disabled, impossible, or
        exhausted.  Campaign harnesses follow lineages with this.  The
        events live on the universe, not this instance: a follower
        waiting on an outcome must still be woken when the episode is
        finished by a *different* ErrMgr after an HNP failover.
        """
        outcomes = self.hnp.universe.recovery_outcomes
        event = outcomes.get(jobid)
        if event is None:
            event = self.hnp.proc.kernel.event(f"errmgr.outcome.job{jobid}")
            outcomes[jobid] = event
        return event

    def _settle(self, jobid: int, successor: "Job | None") -> None:
        event = self.recovery_outcome(jobid)
        if not event.fired:
            event.fire(successor)

    # -- durable state (HNP failover) --------------------------------------------

    #: RecoveryRecord fields that persist (derived properties such as
    #: latency_s must not round-trip into the constructor)
    _RECORD_FIELDS = (
        "failed_jobid", "detected_at", "new_jobid", "recovered_at",
        "attempts", "snapshot", "snapshot_sim_time", "error",
    )

    def _persist(self) -> None:
        """Journal lineages, budgets, and the episode log to the store."""
        store = self.hnp.statestore
        if not store.enabled:
            return
        store.put(
            "errmgr", "lineage",
            {str(k): v for k, v in self._lineage.items()},
        )
        store.put(
            "errmgr", "attempts",
            {str(k): v for k, v in self._attempts.items()},
        )
        store.put(
            "errmgr", "failures",
            {str(k): list(v) for k, v in self._failures_by_root.items()},
        )
        store.put(
            "errmgr", "log",
            [
                {f: getattr(r, f) for f in self._RECORD_FIELDS}
                for r in self.recovery_log
            ],
        )

    def rehydrate(self, table: dict) -> None:
        """Restore lineages, recovery budgets, and the episode log.

        The budget restore is the safety-critical part: a failed-over
        HNP that forgot ``_attempts`` would grant every lineage a fresh
        ``max_recoveries`` budget after each crash of the control
        plane, unbounding recovery.
        """
        self._lineage = {
            int(k): int(v) for k, v in table.get("lineage", {}).items()
        }
        self._attempts = {
            int(k): int(v) for k, v in table.get("attempts", {}).items()
        }
        self._failures_by_root = {
            int(k): list(v) for k, v in table.get("failures", {}).items()
        }
        self.recovery_log = [
            RecoveryRecord(
                **{f: d.get(f) for f in self._RECORD_FIELDS if f in d}
            )
            for d in table.get("log", [])
        ]
        self.recoveries = [
            (r.failed_jobid, r.new_jobid)
            for r in self.recovery_log
            if r.recovered
        ]

    def resume_pending(self) -> None:
        """Resume recovery episodes the dead incarnation left open.

        An episode is open when its job is FAILED but its outcome event
        never fired.  Lineage roots already being recovered (for
        instance via an orphaned-failure hand-off moments ago) are
        skipped — their in-flight episode settles the outcome.
        """
        universe = self.hnp.universe
        scheduled: set[int] = set()
        for jobid in sorted(universe.jobs):
            job = universe.jobs[jobid]
            if job.state != JobState.FAILED:
                continue
            if self.recovery_outcome(jobid).fired:
                continue
            root = self._root_of(job)
            if root in self._recovering or root in scheduled:
                continue
            scheduled.add(root)
            record = next(
                (
                    r for r in self.recovery_log
                    if r.failed_jobid == jobid
                    and not r.recovered
                    and r.error is None
                ),
                None,
            )
            self.hnp.proc.spawn_thread(
                self._resume(job, root, record),
                name=f"errmgr-resume-job{jobid}",
                daemon=True,
            )

    def _resume(
        self, job: Job, root: int, record: "RecoveryRecord | None"
    ) -> SimGen:
        log.warning(
            "resuming interrupted recovery of job %d after HNP failover",
            job.jobid,
        )
        if self.autorecover and job.snapshots:
            yield from self._autorecover(job, root, record)
        else:
            self._settle(job.jobid, None)
        return None

    # -- policy ------------------------------------------------------------------

    def on_rank_failure(self, job: Job, rank: int, detail) -> SimGen:
        if job.is_done and job.state != JobState.FAILED:
            return None
        first_failure = job.state != JobState.FAILED
        log.warning("job %d rank %d failed: %s", job.jobid, rank, detail)
        job.failed_ranks.add(rank)
        job.mark_failed()
        if not first_failure:
            return None
        root = self._root_of(job)
        self._failures_by_root.setdefault(root, []).append(
            self.hnp.proc.kernel.now
        )
        self._persist()
        span = self.hnp.proc.kernel.tracer.begin(
            "errmgr.detect", cat="errmgr", jobid=job.jobid, rank=rank,
            root=root, detail=str(detail),
        )
        # A dead job's staging pipeline must stop before anything else:
        # the stager would otherwise keep draining its intervals and
        # could append to job.snapshots after recovery has begun.
        self._abort_staging(job)
        self._abort_survivors(job)
        in_recovery = root in self._recovering
        span.end(recovering=in_recovery)
        if in_recovery:
            # The failure hit a half-recovered incarnation; the active
            # recovery loop observes it as a failed attempt and retries.
            return None
        if self.autorecover and job.snapshots:
            yield from self._autorecover(job, root)
        else:
            self._settle(job.jobid, None)
        return None

    def _abort_staging(self, job: Job) -> None:
        stager_fn = getattr(self.hnp.snapc, "stager", None)
        if stager_fn is not None:
            stager_fn(self.hnp).abort_job(job.jobid)

    def _abort_survivors(self, job: Job) -> None:
        """mpirun aborts the whole job on any rank failure (MPI default)."""
        for rank in range(job.np):
            if rank in job.failed_ranks:
                continue
            proc = self.hnp.universe.lookup(ProcessName(job.jobid, rank))
            if proc is not None and proc.alive:
                proc.kill(ReproError(f"job {job.jobid} aborted by errmgr"))

    # -- recovery ----------------------------------------------------------------

    def _autorecover(
        self, job: Job, root: int, record: "RecoveryRecord | None" = None
    ) -> SimGen:
        if root in self._recovering:
            # A concurrent path (failover resume racing a fresh
            # detection) already owns this lineage's episode.
            return None
        kernel = self.hnp.proc.kernel
        if record is None:
            record = RecoveryRecord(
                failed_jobid=job.jobid, detected_at=kernel.now
            )
            self.recovery_log.append(record)
        self._persist()
        self._recovering.add(root)
        retry = 0
        #: refs that failed a restart *this episode* — skipped until the
        #: episode ends, then re-verified from scratch next time (a
        #: transient fault must not poison a committed interval forever)
        skip: set[str] = set()
        try:
            while True:
                spent = self._attempts.get(root, 0)
                if spent >= self.max_recoveries:
                    record.error = (
                        f"recovery budget exhausted "
                        f"({spent}/{self.max_recoveries} attempts)"
                    )
                    log.warning("job %d: %s", job.jobid, record.error)
                    self._persist()
                    self._settle(job.jobid, None)
                    return None
                picked = yield from self._pick_snapshot(job, skip)
                if picked is None:
                    record.error = (
                        "no committed snapshot with an intact base chain"
                    )
                    log.warning("job %d: %s", job.jobid, record.error)
                    self._persist()
                    self._settle(job.jobid, None)
                    return None
                ref, meta = picked
                if retry:
                    yield Delay(self.backoff * (2 ** (retry - 1)))
                self._attempts[root] = spent + 1
                record.attempts += 1
                retry += 1
                # Durable *before* the restart runs: a failed-over HNP
                # must charge this attempt against the lineage budget.
                self._persist()
                span = kernel.tracer.begin(
                    "errmgr.recover", cat="errmgr", jobid=job.jobid,
                    attempt=record.attempts, snapshot=ref.path,
                )
                log.warning(
                    "autorecovering job %d from %s (attempt %d/%d)",
                    job.jobid, ref.path, record.attempts, self.max_recoveries,
                )
                try:
                    new_job = yield from self.hnp.snapc.global_restart(
                        self.hnp, ref, {}
                    )
                except (RestartError, SnapshotError) as exc:
                    # The snapshot is unusable *right now* (failed
                    # staging, missing metadata, absent chunks): skip it
                    # for the rest of this episode and walk back.  It is
                    # not blacklisted — the next episode re-verifies it,
                    # so a transient fault or a since-repaired chunk
                    # store does not cost the interval forever.
                    skip.add(ref.path)
                    span.end(ok=False, error=str(exc))
                    log.warning(
                        "recovery attempt from %s failed: %s", ref.path, exc
                    )
                    continue
                except ReproError as exc:
                    # Transient failure — typically another node dying
                    # mid-restart.  Back off and retry: placement
                    # re-plans over the nodes still up.
                    span.end(ok=False, error=str(exc))
                    log.warning(
                        "recovery attempt of job %d failed: %s", job.jobid, exc
                    )
                    continue
                span.end(ok=True, new_jobid=new_job.jobid)
                self._lineage[new_job.jobid] = root
                self.recoveries.append((job.jobid, new_job.jobid))
                record.new_jobid = new_job.jobid
                record.recovered_at = kernel.now
                record.snapshot = ref.path
                record.snapshot_sim_time = meta.sim_time
                self._persist()
                self._seed_baseline(job, new_job, ref)
                self._settle(job.jobid, new_job)
                log.warning(
                    "job %d recovered as job %d (attempt %d)",
                    job.jobid, new_job.jobid, record.attempts,
                )
                return new_job
        finally:
            self._recovering.discard(root)

    def _pick_snapshot(self, job: Job, skip: set[str] | None = None) -> SimGen:
        """Newest usable ``(ref, meta)`` from *job*'s snapshot list.

        Walks ``job.snapshots`` newest-first, skipping refs that
        already failed a restart this episode (*skip*), intervals whose
        persisted staging state is not COMMITTED, delta intervals whose
        base chain is no longer intact on stable storage *or* runs
        through a ref in *skip*, and CAS intervals with chunks missing
        from the store.  Returns None if nothing survives.
        """
        skip = skip or set()
        stable = self.hnp.universe.cluster.stable_fs
        for ref in list(reversed(job.snapshots)):
            if ref.path in skip:
                continue
            ok, meta = yield from self._verify_committed(stable, ref.path)
            if not ok or meta is None:
                log.warning(
                    "job %d: snapshot %s is not committed; walking back",
                    job.jobid, ref.path,
                )
                continue
            intact = True
            for dep in meta.base_chain:
                if dep == ref.path:
                    continue
                # A dep that failed a restart this episode breaks every
                # chain through it — selecting such a chain would just
                # burn a recovery attempt on a known-bad base.
                if dep in skip:
                    intact = False
                    break
                dep_ok, _ = yield from self._verify_committed(stable, dep)
                if not dep_ok:
                    intact = False
                    break
            if intact and getattr(meta, "cas", False):
                intact = yield from self._verify_cas_chunks(stable, ref, meta)
            if intact:
                return ref, meta
            log.warning(
                "job %d: snapshot %s has a broken base chain; walking back",
                job.jobid, ref.path,
            )
        return None

    def _verify_cas_chunks(self, stable, ref, meta) -> SimGen:
        """Presence check of a CAS interval's chunks in the store.

        Content is verified chunk-by-chunk during the restart fetch;
        this pre-check only keeps recovery from spending an attempt on
        an interval whose chunks are already known to be gone.
        """
        from repro.opal.crs import chunks as chunkstore

        stager_fn = getattr(self.hnp.snapc, "stager", None)
        if stager_fn is None:
            return True
        store = stager_fn(self.hnp).store
        for rank in sorted(meta.locals):
            try:
                manifest = yield from chunkstore.read_manifest(
                    stable, ref.local_dir(rank)
                )
            except ReproError:
                return False
            if store.missing(manifest.hashes):
                log.warning(
                    "job %d: snapshot %s rank %d has chunks missing from "
                    "the store; walking back",
                    meta.jobid, ref.path, rank,
                )
                return False
        return True

    def _verify_committed(self, stable, path: str) -> SimGen:
        """``(committed, meta)`` for a global snapshot directory."""
        parsed = parse_global_dirname(path)
        stager_fn = getattr(self.hnp.snapc, "stager", None)
        if parsed is not None and stager_fn is not None:
            live = stager_fn(self.hnp).record_for(*parsed)
            if live is not None and live.state != STAGE_COMMITTED:
                return False, None
        try:
            meta = yield from read_global_meta(stable, GlobalSnapshotRef(path))
        except ReproError:
            return False, None
        staging = meta.staging or {}
        state = staging.get("state", STAGE_COMMITTED)
        return state == STAGE_COMMITTED, meta

    @staticmethod
    def _seed_baseline(old: Job, new_job: Job, ref: GlobalSnapshotRef) -> None:
        """Give the recovered job the failed job's committed history.

        ``global_restart`` already seeds the restarted-from ref and its
        base chain; recovery knows more — every committed interval of
        the failed lineage up to the one used — and hands the whole
        prefix over so walk-back has depth on a re-failure.
        """
        try:
            idx = old.snapshots.index(ref)
        except ValueError:
            return
        prefix = list(old.snapshots[: idx + 1])
        tail = [r for r in new_job.snapshots if r not in prefix]
        new_job.snapshots = prefix + tail
