"""Error manager: failure detection and recovery policy.

The paper lists "automatic, transparent recovery" as an intended
extension of the design; this module implements it as an optional
policy.  With ``orte_errmgr_autorecover=1`` the HNP reacts to a rank or
node failure by aborting the damaged job and restarting it from its
most recent global snapshot on the surviving nodes — the workflow of
the recovery integration tests and examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.orte.job import Job, JobState
from repro.simenv.kernel import SimGen
from repro.util.errors import ReproError
from repro.util.ids import ProcessName
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP

log = get_logger("orte.errmgr")


class ErrMgr:
    """Per-HNP failure policy engine."""

    def __init__(self, hnp: "HNP"):
        self.hnp = hnp
        self.autorecover = hnp.universe.params.get_bool(
            "orte_errmgr_autorecover", False
        )
        #: jobs recovered: (failed_jobid, new_jobid)
        self.recoveries: list[tuple[int, int]] = []
        hnp.universe.cluster.failures.on_failure(self._on_injected_failure)

    # -- detection -------------------------------------------------------------

    def _on_injected_failure(self, description: str) -> None:
        """Failure-injector callback (runs synchronously in the kernel).

        Node crashes kill the orted too, so no PROC_EXIT will arrive
        for ranks on that node — this is the heartbeat-loss path.
        """
        if not description.startswith("node:"):
            return
        node_name = description.split(":", 1)[1]
        for job in list(self.hnp.universe.jobs.values()):
            if job.is_done:
                continue
            lost = [r for r, n in job.placements.items() if n == node_name]
            if not lost:
                continue
            self.hnp.proc.spawn_thread(
                self._handle_lost_ranks(job, lost),
                name=f"errmgr-node-{node_name}-job{job.jobid}",
                daemon=True,
            )

    def _handle_lost_ranks(self, job: Job, lost: list[int]) -> SimGen:
        for rank in lost:
            yield from self.on_rank_failure(job, rank, "node failure")
        return None

    # -- policy ------------------------------------------------------------------

    def on_rank_failure(self, job: Job, rank: int, detail) -> SimGen:
        if job.is_done and job.state != JobState.FAILED:
            return None
        first_failure = job.state != JobState.FAILED
        log.warning("job %d rank %d failed: %s", job.jobid, rank, detail)
        job.failed_ranks.add(rank)
        job.mark_failed()
        if first_failure:
            self._abort_survivors(job)
            if self.autorecover and job.snapshots:
                yield from self._autorecover(job)
        return None

    def _abort_survivors(self, job: Job) -> None:
        """mpirun aborts the whole job on any rank failure (MPI default)."""
        for rank in range(job.np):
            if rank in job.failed_ranks:
                continue
            proc = self.hnp.universe.lookup(ProcessName(job.jobid, rank))
            if proc is not None and proc.alive:
                proc.kill(ReproError(f"job {job.jobid} aborted by errmgr"))

    def _autorecover(self, job: Job) -> SimGen:
        ref = job.snapshots[-1]
        log.warning(
            "autorecovering job %d from %s", job.jobid, ref.path
        )
        try:
            new_job = yield from self.hnp.snapc.global_restart(self.hnp, ref, {})
        except ReproError as exc:
            log.warning("autorecovery of job %d failed: %s", job.jobid, exc)
            return None
        self.recoveries.append((job.jobid, new_job.jobid))
        return None
