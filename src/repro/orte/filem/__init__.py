"""FILEM — remote file management framework (paper sections 5.2, 6.2).

Supports the three required operations: **gather** (move remote local
snapshots to stable storage), **broadcast** (preload checkpoint files
onto remote machines before restart), and **remove** (clean up
temporary checkpoint data).  Requests are given as lists so components
can batch/parallelize (paper: "this interface allows it to use
collective algorithms to optimize the operation").
"""

from repro.orte.filem.base import FILEMComponent, register_filem_components
from repro.orte.filem.rsh import RshFILEM
from repro.orte.filem.shared import SharedFILEM

__all__ = [
    "FILEMComponent",
    "register_filem_components",
    "RshFILEM",
    "SharedFILEM",
]
