"""FILEM framework base.

Runs at the HNP (the global coordinator requests remote file transfer,
Figure 1-F).  Entries are ``(node_name, src_path, dst_path)`` triples;
the component decides transfer mechanics and concurrency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import Component
from repro.simenv.kernel import SimGen, WaitAll, WaitEvent
from repro.util.errors import VFSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.orte.hnp import HNP


class FILEMComponent(Component):
    """Base class for file-management components."""

    framework_name = "filem"
    #: True if local snapshots should be written directly to stable
    #: storage, making gather a metadata check (the ``shared`` case).
    wants_direct_stable = False
    #: True if the component implements the chunk-level offer/ship
    #: protocol against a content-addressed store (ship_chunks /
    #: fetch_chunks) — the deduplicating stage-out path.
    supports_cas = False

    # Each op takes a list of work items and returns total bytes moved.

    def gather(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        """Move node-local trees to stable storage.

        ``entries``: ``(node_name, local_src_dir, stable_dst_dir)``.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def broadcast(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        """Preload stable-storage trees onto nodes.

        ``entries``: ``(node_name, stable_src_dir, local_dst_dir)``.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def remove(self, hnp: "HNP", entries: list[tuple[str, str]]) -> SimGen:
        """Delete node-local trees.  ``entries``: ``(node_name, dir)``."""
        total = 0
        for node_name, tree in entries:
            node = hnp.universe.cluster.node(node_name)
            if node.local_fs is None or not node.local_fs.reachable:
                continue
            total += yield from node.local_fs.remove_tree(tree)
        return total

    def stage_out(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        """Gather local trees to stable storage and clean up the sources.

        Default: gather, then remove everything.  Components override
        to fold the cleanup into a per-node continuation of each
        transfer so a node's local staging frees as soon as its own
        copy finishes.
        """
        moved = yield from self.gather(hnp, entries)
        yield from self.remove(
            hnp, [(node, src) for node, src, _dst in entries]
        )
        return moved

    # -- chunk-level CAS protocol (components with supports_cas) -------------

    def ship_chunks(self, hnp: "HNP", store, entries: list[tuple]) -> SimGen:
        """Ship chunk payloads from node-local snapshots into *store*.

        ``entries``: ``(node_name, local_src_dir, manifest, indices)``
        — only the listed chunk indices of each source directory move
        over the network.  Returns total bytes shipped.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def fetch_chunks(self, hnp: "HNP", store, entries: list[tuple[str, str, str]]) -> SimGen:
        """Materialize CAS-backed snapshots onto nodes for restart.

        ``entries``: ``(node_name, stable_src_dir, local_dst_dir)`` —
        the stable directory holds the rank manifest + metadata; every
        chunk is fetched from *store* (verified per chunk) and the
        reassembled image is written to the node-local destination.
        Returns total bytes fetched.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared helper: run per-entry generators with bounded concurrency ---

    def _run_bounded(self, hnp: "HNP", gens: list, limit: int, label: str) -> SimGen:
        kernel = hnp.proc.kernel
        slots = {"free": max(1, limit)}
        gate = [kernel.event(f"filem.{label}.slot")]
        totals = {"bytes": 0}

        def bounded(gen) -> SimGen:
            while slots["free"] <= 0:
                yield WaitEvent(gate[0])
            slots["free"] -= 1
            try:
                moved = yield from gen
                totals["bytes"] += int(moved or 0)
            finally:
                slots["free"] += 1
                old, gate[0] = gate[0], kernel.event(f"filem.{label}.slot")
                if not old.fired:
                    old.fire(None)
            return None

        events = []
        for i, gen in enumerate(gens):
            thread = hnp.proc.spawn_thread(
                bounded(gen), name=f"filem-{label}-{i}", daemon=True
            )
            events.append(thread.done)
        yield WaitAll(events)
        return totals["bytes"]


def node_local_fs(hnp: "HNP", node_name: str):
    node = hnp.universe.cluster.node(node_name)
    if node.local_fs is None:
        raise VFSError(f"node {node_name} has no local filesystem")
    if not node.up or not node.local_fs.reachable:
        raise VFSError(f"node {node_name} local filesystem unreachable")
    return node.local_fs


def register_filem_components(registry: "FrameworkRegistry") -> None:
    from repro.orte.filem.rsh import RshFILEM
    from repro.orte.filem.shared import SharedFILEM

    registry.add_component("filem", RshFILEM)
    registry.add_component("filem", SharedFILEM)
