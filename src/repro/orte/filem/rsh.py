"""``rsh`` FILEM component (the paper's first implementation).

Uses remote-execution + copy semantics: each tree copy pays an rsh
session setup latency and streams bytes over the Ethernet model, with
bounded concurrency (``filem_rsh_max_concurrent``) so simultaneous
gathers don't model an impossible network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import component_of
from repro.orte.filem.base import FILEMComponent, node_local_fs
from repro.simenv.kernel import SimGen
from repro.util.errors import VFSError
from repro.vfs.transfer import copy_tree

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP


@component_of("filem", "rsh", priority=10)
class RshFILEM(FILEMComponent):
    def open(self, context: object | None = None) -> None:
        super().open(context)
        self.session_cost_s = self.params.get_float("filem_rsh_session_cost", 0.020)
        self.max_concurrent = self.params.get_int("filem_rsh_max_concurrent", 4)

    def _eth_bw(self, hnp: "HNP") -> float:
        return hnp.universe.cluster.eth.model.bandwidth_Bps

    def _traced_copy(self, hnp: "HNP", op: str, node_name: str, gen) -> SimGen:
        """Run one tree copy under a ``filem.transfer`` span."""
        span = hnp.proc.kernel.tracer.begin(
            "filem.transfer", cat="filem", op=op, node=node_name
        )
        moved = yield from gen
        span.end(bytes=int(moved or 0))
        return moved

    def gather(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        span = hnp.proc.kernel.tracer.begin(
            "filem.gather", cat="filem", entries=len(entries)
        )
        gens = []
        for node_name, src_dir, dst_dir in entries:
            src_fs = node_local_fs(hnp, node_name)
            gens.append(
                self._traced_copy(
                    hnp,
                    "gather",
                    node_name,
                    copy_tree(
                        src_fs,
                        src_dir,
                        hnp.universe.cluster.stable_fs,
                        dst_dir,
                        extra_net_Bps=self._eth_bw(hnp),
                        extra_latency_s=self.session_cost_s,
                    ),
                )
            )
        moved = yield from self._run_bounded(hnp, gens, self.max_concurrent, "gather")
        span.end(bytes=moved)
        return moved

    def stage_out(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        span = hnp.proc.kernel.tracer.begin(
            "filem.gather", cat="filem", entries=len(entries)
        )

        def one(node_name: str, src_dir: str, dst_dir: str) -> SimGen:
            src_fs = node_local_fs(hnp, node_name)
            moved = yield from self._traced_copy(
                hnp,
                "gather",
                node_name,
                copy_tree(
                    src_fs,
                    src_dir,
                    hnp.universe.cluster.stable_fs,
                    dst_dir,
                    extra_net_Bps=self._eth_bw(hnp),
                    extra_latency_s=self.session_cost_s,
                ),
            )
            # Continuation: drop this node's local staging right away,
            # overlapping the cleanup with the remaining transfers.  A
            # node dying between its copy and the cleanup is harmless —
            # the snapshot is already on stable storage.
            try:
                yield from src_fs.remove_tree(src_dir)
            except VFSError:
                pass
            return moved

        gens = [one(node, src, dst) for node, src, dst in entries]
        moved = yield from self._run_bounded(hnp, gens, self.max_concurrent, "gather")
        span.end(bytes=moved)
        return moved

    def broadcast(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        span = hnp.proc.kernel.tracer.begin(
            "filem.broadcast", cat="filem", entries=len(entries)
        )
        gens = []
        for node_name, src_dir, dst_dir in entries:
            dst_fs = node_local_fs(hnp, node_name)
            gens.append(
                self._traced_copy(
                    hnp,
                    "broadcast",
                    node_name,
                    copy_tree(
                        hnp.universe.cluster.stable_fs,
                        src_dir,
                        dst_fs,
                        dst_dir,
                        extra_net_Bps=self._eth_bw(hnp),
                        extra_latency_s=self.session_cost_s,
                    ),
                )
            )
        moved = yield from self._run_bounded(
            hnp, gens, self.max_concurrent, "broadcast"
        )
        span.end(bytes=moved)
        return moved
