"""``rsh`` FILEM component (the paper's first implementation).

Uses remote-execution + copy semantics: each tree copy pays an rsh
session setup latency and streams bytes over the Ethernet model, with
bounded concurrency (``filem_rsh_max_concurrent``) so simultaneous
gathers don't model an impossible network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import component_of
from repro.opal.crs import chunks as chunkstore
from repro.orte.filem.base import FILEMComponent, node_local_fs
from repro.simenv.kernel import Delay, SimGen
from repro.snapshot import IMAGE_FILE, LOCAL_META
from repro.util.errors import SnapshotError, VFSError
from repro.vfs import path as vpath
from repro.vfs.transfer import copy_tree

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP


@component_of("filem", "rsh", priority=10)
class RshFILEM(FILEMComponent):
    supports_cas = True

    def open(self, context: object | None = None) -> None:
        super().open(context)
        self.session_cost_s = self.params.get_float("filem_rsh_session_cost", 0.020)
        self.max_concurrent = self.params.get_int("filem_rsh_max_concurrent", 4)

    def _eth_bw(self, hnp: "HNP") -> float:
        return hnp.universe.cluster.eth.model.bandwidth_Bps

    @staticmethod
    def _link_check(hnp: "HNP", node_name: str):
        """Data-plane partition probe for transfers touching a node.

        Returns a callable that raises :class:`NetworkError` while the
        node is partitioned from the storage network — tree copies and
        chunk ship/fetch call it mid-transfer, so an injected partition
        fails the stage exactly the way a dying link would.
        """
        failures = hnp.universe.cluster.failures
        return lambda: failures.check_link(node_name)

    def _traced_copy(self, hnp: "HNP", op: str, node_name: str, gen) -> SimGen:
        """Run one tree copy under a ``filem.transfer`` span."""
        span = hnp.proc.kernel.tracer.begin(
            "filem.transfer", cat="filem", op=op, node=node_name
        )
        moved = yield from gen
        span.end(bytes=int(moved or 0))
        return moved

    def gather(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        span = hnp.proc.kernel.tracer.begin(
            "filem.gather", cat="filem", entries=len(entries)
        )
        gens = []
        for node_name, src_dir, dst_dir in entries:
            src_fs = node_local_fs(hnp, node_name)
            gens.append(
                self._traced_copy(
                    hnp,
                    "gather",
                    node_name,
                    copy_tree(
                        src_fs,
                        src_dir,
                        hnp.universe.cluster.stable_fs,
                        dst_dir,
                        extra_net_Bps=self._eth_bw(hnp),
                        extra_latency_s=self.session_cost_s,
                        link_ok=self._link_check(hnp, node_name),
                    ),
                )
            )
        moved = yield from self._run_bounded(hnp, gens, self.max_concurrent, "gather")
        span.end(bytes=moved)
        return moved

    def stage_out(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        span = hnp.proc.kernel.tracer.begin(
            "filem.stage_out", cat="filem", entries=len(entries)
        )

        def one(node_name: str, src_dir: str, dst_dir: str) -> SimGen:
            src_fs = node_local_fs(hnp, node_name)
            moved = yield from self._traced_copy(
                hnp,
                "stage_out",
                node_name,
                copy_tree(
                    src_fs,
                    src_dir,
                    hnp.universe.cluster.stable_fs,
                    dst_dir,
                    extra_net_Bps=self._eth_bw(hnp),
                    extra_latency_s=self.session_cost_s,
                    link_ok=self._link_check(hnp, node_name),
                ),
            )
            # Continuation: drop this node's local staging right away,
            # overlapping the cleanup with the remaining transfers.  A
            # node dying between its copy and the cleanup is harmless —
            # the snapshot is already on stable storage.
            try:
                yield from src_fs.remove_tree(src_dir)
            except VFSError:
                pass
            return moved

        gens = [one(node, src, dst) for node, src, dst in entries]
        moved = yield from self._run_bounded(
            hnp, gens, self.max_concurrent, "stage_out"
        )
        span.end(bytes=moved)
        return moved

    def ship_chunks(self, hnp: "HNP", store, entries: list[tuple]) -> SimGen:
        """Ship only the negotiated chunk payloads into the CAS store.

        Each entry pays one rsh session plus Ethernet time for the
        chunks it actually moves; a chunk already stored by a
        concurrent entry costs its wire time but no storage write.
        Local sources are *not* removed here — the staging coordinator
        cleans up once the whole interval commits, so a failed ship can
        be retried from the same sources.
        """
        n_chunks = sum(len(indices) for _, _, _, indices in entries)
        span = hnp.proc.kernel.tracer.begin(
            "filem.ship", cat="filem", entries=len(entries), chunks=n_chunks
        )
        eth = self._eth_bw(hnp)

        def one(node_name: str, src_dir: str, manifest, indices) -> SimGen:
            src_fs = node_local_fs(hnp, node_name)
            link_ok = self._link_check(hnp, node_name)
            inner = hnp.proc.kernel.tracer.begin(
                "filem.transfer", cat="filem", op="ship", node=node_name,
                chunks=len(indices),
            )
            link_ok()
            payloads = yield from chunkstore.load_chunks(
                src_fs, src_dir, manifest, indices, IMAGE_FILE
            )
            yield Delay(self.session_cost_s)
            link_ok()
            if hnp.proc.kernel.fast_paths:
                # one aggregate wire delay + one batched store write:
                # O(1) kernel events per entry instead of O(chunks)
                ordered = [
                    (manifest.hashes[i], payloads[i]) for i in sorted(payloads)
                ]
                moved = sum(len(data) for _, data in ordered)
                if moved:
                    yield Delay(moved / eth)
                yield from store.put_many(ordered)
            else:
                moved = 0
                for index in sorted(payloads):
                    data = payloads[index]
                    yield Delay(len(data) / eth)
                    yield from store.put(manifest.hashes[index], data)
                    moved += len(data)
            inner.end(bytes=moved)
            return moved

        gens = [one(node, src, man, idx) for node, src, man, idx in entries]
        moved = yield from self._run_bounded(hnp, gens, self.max_concurrent, "ship")
        span.end(bytes=moved)
        return moved

    def fetch_chunks(self, hnp: "HNP", store, entries: list[tuple[str, str, str]]) -> SimGen:
        """Rebuild CAS-backed rank snapshots on their restart nodes.

        Every chunk is read out of the store (which re-hashes it — the
        per-chunk verification restart relies on), pays Ethernet time
        to the node, and the reassembled full image lands on the node's
        local filesystem next to the manifest and metadata copied from
        the stable rank directory.
        """
        span = hnp.proc.kernel.tracer.begin(
            "filem.fetch", cat="filem", entries=len(entries)
        )
        eth = self._eth_bw(hnp)
        stable = hnp.universe.cluster.stable_fs

        def one(node_name: str, src_dir: str, dst_dir: str) -> SimGen:
            dst_fs = node_local_fs(hnp, node_name)
            link_ok = self._link_check(hnp, node_name)
            inner = hnp.proc.kernel.tracer.begin(
                "filem.transfer", cat="filem", op="fetch", node=node_name
            )
            link_ok()
            manifest = yield from chunkstore.read_manifest(stable, src_dir)
            meta_raw = yield from stable.read(vpath.join(src_dir, LOCAL_META))
            yield Delay(self.session_cost_s)
            link_ok()
            if hnp.proc.kernel.fast_paths:
                parts = yield from store.get_many(list(manifest.hashes))
                wire = sum(len(data) for data in parts)
                if wire:
                    yield Delay(wire / eth)
            else:
                parts = []
                for digest in manifest.hashes:
                    data = yield from store.get(digest)
                    yield Delay(len(data) / eth)
                    parts.append(data)
            blob = b"".join(parts)
            if len(blob) != manifest.total_bytes:
                raise SnapshotError(
                    f"{src_dir}: fetched image is {len(blob)} bytes, "
                    f"manifest says {manifest.total_bytes}"
                )
            yield from dst_fs.write(vpath.join(dst_dir, IMAGE_FILE), blob)
            yield from chunkstore.write_full_manifest(
                dst_fs, dst_dir, manifest.chunk_bytes, len(blob),
                manifest.hashes, manifest.interval,
            )
            yield from dst_fs.write(vpath.join(dst_dir, LOCAL_META), meta_raw)
            inner.end(bytes=len(blob))
            return len(blob)

        gens = [one(node, src, dst) for node, src, dst in entries]
        moved = yield from self._run_bounded(hnp, gens, self.max_concurrent, "fetch")
        span.end(bytes=moved)
        return moved

    def broadcast(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        span = hnp.proc.kernel.tracer.begin(
            "filem.broadcast", cat="filem", entries=len(entries)
        )
        gens = []
        for node_name, src_dir, dst_dir in entries:
            dst_fs = node_local_fs(hnp, node_name)
            gens.append(
                self._traced_copy(
                    hnp,
                    "broadcast",
                    node_name,
                    copy_tree(
                        hnp.universe.cluster.stable_fs,
                        src_dir,
                        dst_fs,
                        dst_dir,
                        extra_net_Bps=self._eth_bw(hnp),
                        extra_latency_s=self.session_cost_s,
                        link_ok=self._link_check(hnp, node_name),
                    ),
                )
            )
        moved = yield from self._run_bounded(
            hnp, gens, self.max_concurrent, "broadcast"
        )
        span.end(bytes=moved)
        return moved
