"""``shared`` FILEM component: snapshots live on stable storage directly.

When every node mounts the shared RAID filesystem, local snapshots can
be written straight to their final location; gather degenerates to a
metadata existence check and broadcast to a no-op (restarted processes
read images from stable storage).  This is the configuration many
production sites use and the natural baseline for the E5 experiment.

Selected by ``--mca filem shared``; by default ``rsh`` wins (as in the
paper, whose first component was rsh-based).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import component_of
from repro.orte.filem.base import FILEMComponent
from repro.simenv.kernel import Delay, SimGen
from repro.util.errors import VFSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP


@component_of("filem", "shared", priority=5)
class SharedFILEM(FILEMComponent):
    wants_direct_stable = True

    def _probe(self, hnp: "HNP", entries, span_name: str) -> SimGen:
        """Snapshots already sit at their destination; verify presence."""
        span = hnp.proc.kernel.tracer.begin(
            span_name, cat="filem", entries=len(entries)
        )
        stable = hnp.universe.cluster.stable_fs
        yield Delay(stable.op_latency_s * max(1, len(entries)))
        for _node, src_dir, dst_dir in entries:
            # Snapshots were written directly at their destination.
            probe = dst_dir if stable.isdir(dst_dir) else src_dir
            if not stable.isdir(probe):
                span.end(bytes=0)
                raise VFSError(f"expected snapshot tree missing: {dst_dir}")
        span.end(bytes=0)
        return 0

    def gather(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        moved = yield from self._probe(hnp, entries, "filem.gather")
        return moved

    def broadcast(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        span = hnp.proc.kernel.tracer.begin(
            "filem.broadcast", cat="filem", entries=len(entries)
        )
        stable = hnp.universe.cluster.stable_fs
        yield Delay(stable.op_latency_s * max(1, len(entries)))
        for _node, src_dir, _dst in entries:
            if not stable.isdir(src_dir):
                span.end(bytes=0)
                raise VFSError(f"snapshot tree missing on stable storage: {src_dir}")
        span.end(bytes=0)
        return 0

    def remove(self, hnp: "HNP", entries: list[tuple[str, str]]) -> SimGen:
        # Nothing was staged on node-local disks.
        yield Delay(0.0)
        return 0

    def stage_out(self, hnp: "HNP", entries: list[tuple[str, str, str]]) -> SimGen:
        # Snapshots were written directly at their final location;
        # verify presence, nothing to move and nothing to clean up.
        moved = yield from self._probe(hnp, entries, "filem.stage_out")
        return moved
