"""Periodic checkpoint scheduler — the HNP-side companion of recovery.

Automatic recovery is only as good as the newest committed snapshot
(CRAFT's observation: pair automatic restart with periodic
checkpointing so there is always something recent to recover to).  With
``snapc_full_checkpoint_every`` set to a positive number of simulated
seconds, the HNP checkpoints every RUNNING job on that cadence without
any tool process driving it.

A tick is skipped — not queued — while the job is not RUNNING (a
checkpoint is already in flight, the job is launching) or while its
lineage has a recovery in flight; the next tick fires one period
later.  Failed ticks (vetoed ranks, staging backpressure timeouts) are
recorded and skipped the same way: the scheduler never aborts a job.

Recovered jobs pass through :meth:`~repro.orte.hnp.HNP.launch_and_init`
like any other launch, so they are re-attached automatically and keep
checkpointing on the same cadence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.orte.job import Job, JobState
from repro.simenv.kernel import Delay, SimGen
from repro.util.errors import ReproError
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP

log = get_logger("orte.sched")


class CheckpointScheduler:
    """Per-HNP periodic checkpoint driver (one daemon loop per job)."""

    def __init__(self, hnp: "HNP"):
        self.hnp = hnp
        self.every = hnp.universe.params.get_float(
            "snapc_full_checkpoint_every", 0.0
        )
        #: successful ticks: (jobid, snapshot path)
        self.taken: list[tuple[int, str]] = []
        #: skipped/failed ticks: (jobid, reason)
        self.skipped: list[tuple[int, str]] = []
        self._attached: set[int] = set()

    @property
    def enabled(self) -> bool:
        return self.every > 0

    def attach(self, job: Job) -> None:
        """Start (once) the periodic loop for *job*."""
        if not self.enabled or job.jobid in self._attached:
            return
        if not self.hnp.proc.alive:
            return
        self._attached.add(job.jobid)
        self.hnp.proc.spawn_thread(
            self._loop(job), name=f"ckpt-sched-job{job.jobid}", daemon=True
        )

    def _loop(self, job: Job) -> SimGen:
        while True:
            yield Delay(self.every)
            if job.is_done:
                return None
            if job.state != JobState.RUNNING:
                self.skipped.append((job.jobid, f"job is {job.state.value}"))
                continue
            if self.hnp.errmgr.is_recovering(job):
                self.skipped.append((job.jobid, "recovery in flight"))
                continue
            try:
                ref = yield from self.hnp.snapc.global_checkpoint(
                    self.hnp, job, {}
                )
            except ReproError as exc:
                if job.is_done:
                    return None
                self.skipped.append((job.jobid, str(exc)))
                log.info(
                    "scheduled checkpoint of job %d skipped: %s",
                    job.jobid, exc,
                )
                continue
            self.taken.append((job.jobid, ref.path))
            self.hnp.proc.kernel.tracer.count("snapc.scheduled_ckpts")
