"""Periodic checkpoint scheduler — the HNP-side companion of recovery.

Automatic recovery is only as good as the newest committed snapshot
(CRAFT's observation: pair automatic restart with periodic
checkpointing so there is always something recent to recover to).  With
``snapc_full_checkpoint_every`` set to a positive number of simulated
seconds, the HNP checkpoints every RUNNING job on that cadence without
any tool process driving it.

With ``snapc_sched_adaptive=1`` the cadence is *closed-loop*: each tick
the scheduler re-computes the Young/Daly optimal interval
``sqrt(2 · MTBF · C)`` from two online estimates —

* **MTBF** — the lineage's observed lifetime divided by its failure
  count, from the error manager's per-lineage detection timestamps
  (:meth:`~repro.orte.errmgr.ErrMgr.lineage_failure_times`);
* **C** — the checkpoint cost as the *app-blocked* window, measured
  directly as the duration of each ``global_checkpoint`` call (the
  request returns when the job resumes; background staging is not the
  application's problem).

The result is clamped into ``[snapc_sched_min_every,
snapc_sched_max_every]``; before the first failure or the first cost
sample the fixed ``snapc_full_checkpoint_every`` serves as the
cold-start fallback.  Estimator state is keyed by lineage root, so a
recovered incarnation inherits its ancestors' observations.

Cadence is measured from tick *start*: the next tick fires one interval
after the previous tick began, not after the checkpoint finished, so
checkpoint duration does not drift the cadence.  A tick is skipped —
not queued — while the job is not RUNNING (a checkpoint is already in
flight, the job is launching) or while its lineage has a recovery in
flight; skip reasons land in ``scheduler.skipped`` and every tick's
interval decision in ``scheduler.decisions``.  Failed ticks (vetoed
ranks, staging backpressure timeouts) are recorded and skipped the same
way: the scheduler never aborts a job.

Recovered jobs pass through :meth:`~repro.orte.hnp.HNP.launch_and_init`
like any other launch, so they are re-attached automatically and keep
checkpointing on the same (re-tuned) cadence.  A job's loop exits
promptly when the job settles (it waits on the job's done event, not
just the timer) and its jobid is pruned from the attach set.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.orte.job import Job, JobState
from repro.simenv.kernel import SimGen, WaitAny
from repro.util.errors import ReproError
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP

log = get_logger("orte.sched")


class DalyEstimator:
    """Online Young/Daly interval calculator.

    Pure bookkeeping (no kernel access), so the convergence, clamping,
    and cold-start behaviour are unit-testable in isolation.  Keeps a
    bounded window of recent checkpoint-cost samples; the interval is
    ``clamp(sqrt(2 · MTBF · mean_cost))``, or the clamped fallback
    while either estimate is missing.
    """

    #: cost samples kept (recent window, so cost drift is tracked)
    WINDOW = 8

    def __init__(self, fallback: float, min_every: float, max_every: float):
        self.fallback = fallback
        self.min_every = min_every
        self.max_every = max_every
        self._costs: list[float] = []

    def observe_cost(self, cost_s: float) -> None:
        if cost_s > 0:
            self._costs.append(cost_s)
            del self._costs[: -self.WINDOW]

    @property
    def cost_s(self) -> float | None:
        """Mean app-blocked checkpoint cost over the recent window."""
        if not self._costs:
            return None
        return sum(self._costs) / len(self._costs)

    def clamp(self, interval: float) -> float:
        out = max(self.min_every, interval)
        if self.max_every > 0:
            out = min(self.max_every, out)
        return out

    def interval(self, mtbf_s: float | None) -> float:
        """The Daly interval for *mtbf_s*, or the fallback cold-start."""
        cost = self.cost_s
        if mtbf_s is None or mtbf_s <= 0 or cost is None:
            return self.clamp(self.fallback)
        return self.clamp(math.sqrt(2.0 * mtbf_s * cost))


class CheckpointScheduler:
    """Per-HNP periodic checkpoint driver (one daemon loop per job)."""

    def __init__(self, hnp: "HNP"):
        self.hnp = hnp
        params = hnp.universe.params
        self.every = params.get_float("snapc_full_checkpoint_every", 0.0)
        self.adaptive = params.get_bool("snapc_sched_adaptive", False)
        self.min_every = max(
            1e-6, params.get_float("snapc_sched_min_every", 0.05)
        )
        self.max_every = params.get_float("snapc_sched_max_every", 1.0)
        #: successful ticks: (jobid, snapshot path)
        self.taken: list[tuple[int, str]] = []
        #: skipped/failed ticks: (jobid, reason)
        self.skipped: list[tuple[int, str]] = []
        #: per-tick cadence decisions:
        #: {"jobid", "at", "interval_s", "mtbf_s", "cost_s", "adaptive"}
        self.decisions: list[dict] = []
        self._attached: set[int] = set()
        #: lineage root -> Daly estimator (recovered incarnations
        #: inherit their ancestors' cost/failure observations)
        self._estimators: dict[int, DalyEstimator] = {}
        #: lineage root -> sim time observation started (first attach)
        self._observe_start: dict[int, float] = {}

    @property
    def enabled(self) -> bool:
        return self.every > 0

    # -- estimation ----------------------------------------------------------

    def _estimator(self, root: int) -> DalyEstimator:
        est = self._estimators.get(root)
        if est is None:
            est = DalyEstimator(self.every, self.min_every, self.max_every)
            self._estimators[root] = est
        return est

    def _persist_cadence(self, root: int) -> None:
        """Journal *root*'s cadence observations to the state store."""
        store = self.hnp.statestore
        if not store.enabled:
            return
        est = self._estimators.get(root)
        store.put(
            "sched",
            str(root),
            {
                "observe_start": self._observe_start.get(root),
                "costs": list(est._costs) if est is not None else [],
            },
        )

    def rehydrate(self, table: dict) -> None:
        """Restore per-lineage cadence state after an HNP failover.

        Without this a failed-over adaptive scheduler would restart its
        MTBF observation window and forget every cost sample, snapping
        every lineage back to the cold-start cadence.
        """
        for key, rec in table.items():
            root = int(key)
            start = rec.get("observe_start")
            if start is not None:
                self._observe_start.setdefault(root, float(start))
            costs = [float(c) for c in rec.get("costs", [])]
            if costs:
                self._estimator(root)._costs = costs[-DalyEstimator.WINDOW:]

    def _mtbf(self, job: Job, root: int) -> float | None:
        """Observed lineage lifetime over failure count (None cold)."""
        times = self.hnp.errmgr.lineage_failure_times(job)
        if not times:
            return None
        start = self._observe_start.get(root)
        if start is None:
            return None
        elapsed = self.hnp.proc.kernel.now - start
        if elapsed <= 0:
            return None
        return elapsed / len(times)

    def interval_for(self, job: Job) -> float:
        """The cadence this job's next tick should use (records why)."""
        if not self.adaptive:
            self.decisions.append({
                "jobid": job.jobid,
                "at": self.hnp.proc.kernel.now,
                "interval_s": self.every,
                "mtbf_s": None,
                "cost_s": None,
                "adaptive": False,
            })
            return self.every
        root = self.hnp.errmgr.lineage_root(job)
        est = self._estimator(root)
        mtbf = self._mtbf(job, root)
        interval = est.interval(mtbf)
        self.decisions.append({
            "jobid": job.jobid,
            "at": self.hnp.proc.kernel.now,
            "interval_s": interval,
            "mtbf_s": mtbf,
            "cost_s": est.cost_s,
            "adaptive": True,
        })
        return interval

    # -- attach / loop --------------------------------------------------------

    def attach(self, job: Job) -> None:
        """Start (once) the periodic loop for *job*."""
        if not self.enabled or job.jobid in self._attached:
            return
        if not self.hnp.proc.alive:
            return
        self._attached.add(job.jobid)
        root = self.hnp.errmgr.lineage_root(job)
        self._observe_start.setdefault(root, self.hnp.proc.kernel.now)
        self._persist_cadence(root)
        self.hnp.proc.spawn_thread(
            self._loop(job), name=f"ckpt-sched-job{job.jobid}", daemon=True
        )

    def _sleep_until(self, job: Job, wake_at: float) -> SimGen:
        """Block until *wake_at* or the job settling, whichever first."""
        kernel = self.hnp.proc.kernel
        delay = max(0.0, wake_at - kernel.now)
        timer = kernel.event(f"sched.tick.job{job.jobid}")

        def fire() -> None:
            if not timer.fired:
                timer.fire(None)

        handle = kernel.call_later(delay, fire)
        yield WaitAny([job.done_event, timer])
        # Cancelled either way: if the timer won, the heap entry is
        # already gone and cancel() is a no-op; if the job settled
        # first, the orphaned timer must not drag the clock forward.
        handle.cancel()
        return None

    def _loop(self, job: Job) -> SimGen:
        kernel = self.hnp.proc.kernel
        try:
            next_at = kernel.now + self.interval_for(job)
            while True:
                yield from self._sleep_until(job, next_at)
                if job.is_done:
                    return None
                # Cadence anchor: measure the next interval from tick
                # start, so however long the checkpoint takes, the
                # spacing between tick starts stays the interval.
                tick_start = kernel.now
                if job.state != JobState.RUNNING:
                    self.skipped.append(
                        (job.jobid, f"job is {job.state.value}")
                    )
                elif self.hnp.errmgr.is_recovering(job):
                    self.skipped.append((job.jobid, "recovery in flight"))
                else:
                    yield from self._tick(job)
                    if job.is_done:
                        return None
                next_at = max(kernel.now, tick_start + self.interval_for(job))
        finally:
            self._attached.discard(job.jobid)

    def _tick(self, job: Job) -> SimGen:
        kernel = self.hnp.proc.kernel
        root = self.hnp.errmgr.lineage_root(job)
        started = kernel.now

        def attempt() -> SimGen:
            result = yield from self.hnp.snapc.global_checkpoint(
                self.hnp, job, {}
            )
            return result

        # Race the request against the job settling: a node dying
        # mid-coordination leaves an orted RPC unanswered forever, and
        # a loop blocked on it would leak its attach-set entry and
        # never reach a recovered incarnation.
        worker = self.hnp.proc.spawn_thread(
            attempt(), name=f"ckpt-tick-job{job.jobid}", daemon=True
        )
        index, ref, exc = yield WaitAny([job.done_event, worker.done])
        if index == 0:
            self.skipped.append((job.jobid, "job settled mid-checkpoint"))
            return None
        if exc is not None:
            if isinstance(exc, ReproError):
                if not job.is_done:
                    self.skipped.append((job.jobid, str(exc)))
                    log.info(
                        "scheduled checkpoint of job %d skipped: %s",
                        job.jobid, exc,
                    )
                return None
            raise exc
        # The request returns at app resume: its duration is the
        # app-blocked cost C of the Young/Daly formula.
        self._estimator(root).observe_cost(kernel.now - started)
        self._persist_cadence(root)
        self.taken.append((job.jobid, ref.path))
        kernel.tracer.count("snapc.scheduled_ckpts")
        return None
