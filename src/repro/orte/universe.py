"""The ORTE universe: HNP + per-node daemons + the job table.

``Universe`` boots the runtime over a :class:`repro.simenv.Cluster`:
one **HNP** ("head node process", the ``mpirun`` analogue) on the first
node and one **orted** daemon per node, all addressable over the OOB
control plane.  It also plays the role of Open MPI's name service —
mapping :class:`ProcessName` to live processes — and allocates jobids.

Everything user-facing goes through the tools layer
(:mod:`repro.tools`): ``ompi_run`` submits jobs here, and
``ompi-checkpoint``/``ompi-restart`` talk RML to the HNP exactly as the
paper's command-line tools talk to ``mpirun`` (Figure 1-A).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from repro.mca.params import MCAParams
from repro.orte.job import AppSpec, Job
from repro.util.errors import LaunchError
from repro.util.ids import DAEMON_JOBID, ProcessName, daemon_name, hnp_name
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.orte.hnp import HNP
    from repro.orte.orted import Orted
    from repro.orte.oob import RML
    from repro.simenv.cluster import Cluster
    from repro.simenv.process import SimProcess

log = get_logger("orte.universe")

#: jobid used for tool processes (ompi-checkpoint etc.)
TOOL_JOBID = 999


class Universe:
    """One booted runtime over one cluster."""

    def __init__(
        self,
        cluster: "Cluster",
        params: MCAParams | None = None,
        make_registry: Callable[[], "FrameworkRegistry"] | None = None,
    ):
        from repro.mca.registry import default_registry

        self.cluster = cluster
        self.kernel = cluster.kernel
        self.params = params or MCAParams()
        if self.params.get_bool("obs_trace_enabled", False):
            self.kernel.tracer.enable()
        self.make_registry = make_registry or default_registry
        self._next_jobid = itertools.count(1)
        self._next_tool_vpid = itertools.count(0)
        self.jobs: dict[int, Job] = {}
        #: name service: ProcessName -> SimProcess
        self.directory: dict[ProcessName, "SimProcess"] = {}
        self.hnp: "HNP | None" = None
        self.orteds: dict[str, "Orted"] = {}
        self._boot()

    # -- boot ------------------------------------------------------------------

    def _boot(self) -> None:
        from repro.orte.hnp import HNP
        from repro.orte.orted import Orted
        from repro.simenv.process import SimProcess

        hnp_node = self.cluster.nodes[0]
        hnp_proc = SimProcess(hnp_node, hnp_name(), label="mpirun")
        self.register(hnp_proc)
        self.hnp = HNP(self, hnp_proc)
        for i, node in enumerate(self.cluster.nodes):
            orted_proc = SimProcess(node, daemon_name(i), label=f"orted@{node.name}")
            self.register(orted_proc)
            self.orteds[node.name] = Orted(self, orted_proc)

    # -- name service ---------------------------------------------------------

    def register(self, proc: "SimProcess") -> None:
        self.directory[proc.name] = proc

    def deregister(self, name: ProcessName) -> None:
        self.directory.pop(name, None)

    def lookup(self, name: ProcessName) -> "SimProcess | None":
        proc = self.directory.get(name)
        if proc is not None and not proc.alive:
            return None
        return proc

    def lookup_rml(self, name: ProcessName) -> "RML | None":
        proc = self.lookup(name)
        if proc is None:
            return None
        return proc.maybe_service("rml")

    # -- ids --------------------------------------------------------------------

    def new_jobid(self) -> int:
        return next(self._next_jobid)

    def new_tool_name(self) -> ProcessName:
        return ProcessName(TOOL_JOBID, next(self._next_tool_vpid))

    # -- jobs ------------------------------------------------------------------

    def create_job(self, app: AppSpec, np: int, params: MCAParams | None = None) -> Job:
        if np < 1:
            raise LaunchError("np must be >= 1")
        merged = self.params.copy()
        if params is not None:
            merged.update(params)
        job = Job(self.new_jobid(), app, np, merged)
        job.done_event = self.kernel.event(f"job{job.jobid}.done")
        self.jobs[job.jobid] = job
        return job

    def submit(self, app: AppSpec, np: int, params: MCAParams | None = None) -> Job:
        """Create a job and hand it to the HNP for launching."""
        job = self.create_job(app, np, params)
        assert self.hnp is not None
        self.hnp.submit(job)
        return job

    def job(self, jobid: int) -> Job:
        try:
            return self.jobs[jobid]
        except KeyError:
            raise LaunchError(f"no job {jobid}") from None

    # -- convenience -------------------------------------------------------------

    def orted_for(self, node_name: str) -> "Orted":
        try:
            return self.orteds[node_name]
        except KeyError:
            raise LaunchError(f"no orted on node {node_name}") from None

    @property
    def daemon_names(self) -> list[ProcessName]:
        return [
            name
            for name in self.directory
            if name.jobid == DAEMON_JOBID and not name.is_hnp
        ]

    def run_job_to_completion(self, job: Job):
        """Drive the kernel until *job* finishes; returns its state."""

        def waiter():
            state = yield from job.wait()
            return state

        thread = self.kernel.spawn(waiter(), name=f"wait-job{job.jobid}")
        return self.kernel.run_until_complete(thread)
