"""The ORTE universe: HNP + per-node daemons + the job table.

``Universe`` boots the runtime over a :class:`repro.simenv.Cluster`:
one **HNP** ("head node process", the ``mpirun`` analogue) on the first
node and one **orted** daemon per node, all addressable over the OOB
control plane.  It also plays the role of Open MPI's name service —
mapping :class:`ProcessName` to live processes — and allocates jobids.

Everything user-facing goes through the tools layer
(:mod:`repro.tools`): ``ompi_run`` submits jobs here, and
``ompi-checkpoint``/``ompi-restart`` talk RML to the HNP exactly as the
paper's command-line tools talk to ``mpirun`` (Figure 1-A).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from repro.mca.params import MCAParams
from repro.orte.job import AppSpec, Job
from repro.util.errors import LaunchError
from repro.util.ids import DAEMON_JOBID, ProcessName, daemon_name, hnp_name
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.orte.hnp import HNP
    from repro.orte.orted import Orted
    from repro.orte.oob import RML
    from repro.orte.snapc.admission import StagingAdmission
    from repro.simenv.cluster import Cluster
    from repro.simenv.kernel import SimEvent
    from repro.simenv.process import SimProcess

log = get_logger("orte.universe")

#: jobid used for tool processes (ompi-checkpoint etc.)
TOOL_JOBID = 999


class Universe:
    """One booted runtime over one cluster."""

    def __init__(
        self,
        cluster: "Cluster",
        params: MCAParams | None = None,
        make_registry: Callable[[], "FrameworkRegistry"] | None = None,
    ):
        from repro.mca.registry import default_registry
        from repro.orte.statestore import build_statestore

        self.cluster = cluster
        self.kernel = cluster.kernel
        self.params = params or MCAParams()
        if self.params.get_bool("obs_trace_enabled", False):
            self.kernel.tracer.enable()
        self.make_registry = make_registry or default_registry
        self._next_jobid = itertools.count(1)
        self._next_tool_vpid = itertools.count(0)
        self.jobs: dict[int, Job] = {}
        #: name service: ProcessName -> SimProcess
        self.directory: dict[ProcessName, "SimProcess"] = {}
        self.hnp: "HNP | None" = None
        self.orteds: dict[str, "Orted"] = {}
        #: orteds elect a successor HNP on HNP-node death
        self.failover_enabled = self.params.get_bool("orte_hnp_failover", False)
        #: failover-window probe pacing (the healthy path posts no timers)
        self.heartbeat_s = max(
            0.01, self.params.get_float("orte_hnp_heartbeat_s", 0.25)
        )
        #: durable control-plane store (Null unless failover/statestore on)
        self.statestore = build_statestore(self)
        #: failed jobid -> recovery outcome event; lives here rather than
        #: in the ErrMgr so campaign threads waiting on an outcome survive
        #: the HNP (and its ErrMgr) being replaced by failover
        self.recovery_outcomes: dict[int, "SimEvent"] = {}
        #: universe-wide staging admission gate (also HNP-independent:
        #: replacing it at failover would let a token-limited universe
        #: briefly double its staging capacity)
        self.staging_admission: "StagingAdmission | None" = None
        #: injected failures observed while no live HNP existed; the
        #: next incarnation drains them during rehydration
        self._orphaned_failures: list[str] = []
        #: completed HNP elections
        self.failovers = 0
        self._failover_in_flight = False
        self._boot()

    # -- boot ------------------------------------------------------------------

    def _boot(self) -> None:
        from repro.orte.hnp import HNP
        from repro.orte.orted import Orted
        from repro.simenv.process import SimProcess

        hnp_node = self.cluster.nodes[0]
        hnp_proc = SimProcess(hnp_node, hnp_name(), label="mpirun")
        self.register(hnp_proc)
        self.hnp = HNP(self, hnp_proc)
        for i, node in enumerate(self.cluster.nodes):
            orted_proc = SimProcess(node, daemon_name(i), label=f"orted@{node.name}")
            self.register(orted_proc)
            self.orteds[node.name] = Orted(self, orted_proc)

    # -- name service ---------------------------------------------------------

    def register(self, proc: "SimProcess") -> None:
        self.directory[proc.name] = proc

    def deregister(self, name: ProcessName) -> None:
        self.directory.pop(name, None)

    def lookup(self, name: ProcessName) -> "SimProcess | None":
        proc = self.directory.get(name)
        if proc is not None and not proc.alive:
            return None
        return proc

    def lookup_rml(self, name: ProcessName) -> "RML | None":
        proc = self.lookup(name)
        if proc is None:
            return None
        return proc.maybe_service("rml")

    # -- ids --------------------------------------------------------------------

    def new_jobid(self) -> int:
        return next(self._next_jobid)

    def new_tool_name(self) -> ProcessName:
        return ProcessName(TOOL_JOBID, next(self._next_tool_vpid))

    # -- jobs ------------------------------------------------------------------

    def create_job(self, app: AppSpec, np: int, params: MCAParams | None = None) -> Job:
        if np < 1:
            raise LaunchError("np must be >= 1")
        merged = self.params.copy()
        if params is not None:
            merged.update(params)
        job = Job(self.new_jobid(), app, np, merged)
        job.done_event = self.kernel.event(f"job{job.jobid}.done")
        self.jobs[job.jobid] = job
        # Persist the jobid floor so a failed-over HNP never re-mints a
        # jobid that already names snapshot directories on disk.
        self.statestore.put("universe", "jobid_floor", job.jobid)
        return job

    def submit(self, app: AppSpec, np: int, params: MCAParams | None = None) -> Job:
        """Create a job and hand it to the HNP for launching."""
        job = self.create_job(app, np, params)
        assert self.hnp is not None
        self.hnp.submit(job)
        return job

    def job(self, jobid: int) -> Job:
        try:
            return self.jobs[jobid]
        except KeyError:
            raise LaunchError(f"no job {jobid}") from None

    # -- HNP failover ------------------------------------------------------------

    @property
    def failover_in_flight(self) -> bool:
        """True from election until the new HNP finishes rehydrating."""
        return self._failover_in_flight

    def electable_orteds(self) -> list["Orted"]:
        """Surviving orteds in election order (lowest daemon vpid wins).

        Every orted watcher computes this list independently at the
        same simulated instant, so they all agree on the winner without
        exchanging a single vote message — the deterministic election
        rule of the control plane.
        """
        return sorted(
            (o for o in self.orteds.values() if o.node.up and o.proc.alive),
            key=lambda o: o.proc.name.vpid,
        )

    def note_orphaned_failure(self, description: str) -> None:
        """Buffer an injected failure seen while no HNP was alive."""
        self._orphaned_failures.append(description)

    def drain_orphaned_failures(self) -> list[str]:
        out, self._orphaned_failures = self._orphaned_failures, []
        return out

    def restore_jobid_floor(self, floor: int) -> None:
        """Never allocate at or below *floor* (or any live jobid)."""
        highest = max([floor, *self.jobs.keys()]) if self.jobs else floor
        self._next_jobid = itertools.count(highest + 1)

    def elect_hnp(self, orted: "Orted") -> bool:
        """Install *orted*'s node as the new HNP; returns False if an
        election already ran (or the incumbent turned out alive).

        Synchronous up to the point the new HNP process exists and is
        registered — a second watcher resuming at the same instant sees
        ``failover_in_flight`` and stands down.  The rehydration itself
        (store replay, staging rebuild, job re-attach) runs in a thread
        of the new HNP process, so a failover *of the failover* is just
        another HNP death: the flag clears in its ``finally`` and the
        next election proceeds.
        """
        from repro.orte.hnp import HNP
        from repro.simenv.kernel import SimGen
        from repro.simenv.process import SimProcess

        if self._failover_in_flight:
            return False
        if self.hnp is not None and self.hnp.proc.alive:
            return False
        self._failover_in_flight = True
        # The dead incarnation's un-durable appends must not survive it.
        self.statestore.drop_pending()
        proc = SimProcess(
            orted.node, hnp_name(), label=f"mpirun@{orted.node.name}"
        )
        self.register(proc)
        hnp = HNP(self, proc, recovered=True)
        self.hnp = hnp
        self.failovers += 1
        log.warning(
            "HNP failover: orted on %s elected as the new mpirun",
            orted.node.name,
        )

        def rehydrate() -> SimGen:
            try:
                yield from hnp.rehydrate()
            finally:
                self._failover_in_flight = False

        proc.spawn_thread(rehydrate(), name="hnp-rehydrate", daemon=True)
        return True

    # -- convenience -------------------------------------------------------------

    def orted_for(self, node_name: str) -> "Orted":
        try:
            return self.orteds[node_name]
        except KeyError:
            raise LaunchError(f"no orted on node {node_name}") from None

    @property
    def daemon_names(self) -> list[ProcessName]:
        return [
            name
            for name in self.directory
            if name.jobid == DAEMON_JOBID and not name.is_hnp
        ]

    def run_job_to_completion(self, job: Job):
        """Drive the kernel until *job* finishes; returns its state."""

        def waiter():
            state = yield from job.wait()
            return state

        thread = self.kernel.spawn(waiter(), name=f"wait-job{job.jobid}")
        return self.kernel.run_until_complete(thread)
