"""HNP — the head node process (``mpirun`` analogue).

Hosts the global snapshot coordinator (paper Figure 1), the PLM and
FILEM frameworks, the job init/modex rendezvous, and the tool-facing
request handlers (checkpoint, restart, ps).  All incoming control
traffic is served by per-tag daemon threads so a long-running
checkpoint never blocks job management.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.orte.errmgr import ErrMgr
from repro.orte.job import Job, JobState, ProcSpec
from repro.orte.scheduler import CheckpointScheduler
from repro.orte.oob import (
    RML,
    TAG_CKPT_READY,
    TAG_CKPT_REPLY,
    TAG_CKPT_REQUEST,
    TAG_HNP_HEARTBEAT,
    TAG_INIT_GO,
    TAG_INIT_READY,
    TAG_MIGRATE_REPLY,
    TAG_MIGRATE_REQUEST,
    TAG_PROC_EXIT,
    TAG_PS_REPLY,
    TAG_PS_REQUEST,
    TAG_RESTART_REPLY,
    TAG_RESTART_REQUEST,
)
from repro.simenv.kernel import Queue, SimGen
from repro.snapshot import GlobalSnapshotRef, parse_global_dirname
from repro.util.errors import LaunchError, NetworkError, ReproError
from repro.util.ids import ProcessName
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.universe import Universe
    from repro.simenv.process import SimProcess

log = get_logger("orte.hnp")


class HNP:
    """The mpirun process's brain."""

    def __init__(
        self, universe: "Universe", proc: "SimProcess", recovered: bool = False
    ):
        self.universe = universe
        self.proc = proc
        #: True for an incarnation installed by HNP failover
        self.recovered = recovered
        self.rml = RML(universe, proc)
        #: durable control-plane store; the writer thread runs in this
        #: incarnation's process, so it dies (and is re-attached) with it
        self.statestore = universe.statestore
        self.statestore.attach(proc)
        self.registry = universe.make_registry()
        self.plm = self.registry.framework("plm").open(universe.params, context=self)
        self.snapc = self.registry.framework("snapc").open(universe.params, context=self)
        self.filem = self.registry.framework("filem").open(universe.params, context=self)
        self.errmgr = ErrMgr(self)
        self.ckpt_scheduler = CheckpointScheduler(self)
        #: jobid -> set of ranks registered checkpointable (section 5.1)
        self.ckpt_ready: dict[int, set[int]] = {}
        #: jobid -> queue of INIT_READY payloads
        self._init_queues: dict[int, Queue] = {}
        self._start_handlers()
        if universe.failover_enabled:
            self.proc.spawn_thread(
                self._drain_heartbeats(), name="hnp-heartbeat", daemon=True
            )

    # -- handler plumbing ---------------------------------------------------

    def _start_handlers(self) -> None:
        handlers = {
            TAG_INIT_READY: self._on_init_ready,
            TAG_PROC_EXIT: self._on_proc_exit,
            TAG_CKPT_READY: self._on_ckpt_ready,
            TAG_CKPT_REQUEST: self._on_ckpt_request,
            TAG_RESTART_REQUEST: self._on_restart_request,
            TAG_MIGRATE_REQUEST: self._on_migrate_request,
            TAG_PS_REQUEST: self._on_ps_request,
        }
        for tag, handler in handlers.items():
            self.proc.spawn_thread(
                self._serve(tag, handler), name=f"hnp-{tag}", daemon=True
            )

    def _serve(self, tag: str, handler) -> SimGen:
        while True:
            sender, payload = yield from self.rml.recv(tag)
            # Spawn a worker per message so slow handlers don't starve
            # the tag queue.
            self.proc.spawn_thread(
                handler(sender, payload), name=f"hnp-{tag}-worker", daemon=True
            )

    def _drain_heartbeats(self) -> SimGen:
        """Answer route-probes by existing: orted watchers only need
        the send to succeed, so draining the tag is the whole job."""
        while True:
            yield from self.rml.recv(TAG_HNP_HEARTBEAT)

    # -- control-plane persistence -------------------------------------------

    def _persist_job(self, job: Job) -> None:
        """Journal *job*'s control-plane view to the state store."""
        self.statestore.put(
            "jobs",
            str(job.jobid),
            {
                "app": job.app.name,
                "app_args": dict(job.app.args),
                "np": job.np,
                "state": job.state.value,
                "placements": {str(r): n for r, n in job.placements.items()},
                "restarted_from": (
                    job.restarted_from.path
                    if job.restarted_from is not None
                    else None
                ),
                "next_interval": job.next_interval,
                "snapshots": [ref.path for ref in job.snapshots],
            },
        )

    def _persist_ready(self, jobid: int) -> None:
        self.statestore.put(
            "ready", str(jobid), sorted(self.ckpt_ready.get(jobid, set()))
        )

    # -- job launch -----------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Asynchronously launch *job* (called from outside the sim)."""
        specs = self._plan_placement(job)
        self._persist_job(job)
        self.proc.spawn_thread(
            self._launch_wrapper(job, specs), name=f"hnp-launch-job{job.jobid}",
            daemon=True,
        )

    def _launch_wrapper(self, job: Job, specs: list[ProcSpec]) -> SimGen:
        try:
            yield from self.launch_and_init(job, specs)
        except ReproError as exc:
            log.warning("launch of job %d failed: %s", job.jobid, exc)
            job.mark_failed()
            # Ranks that did come up are orphans of a dead launch.
            self.errmgr._abort_survivors(job)
        return None

    def _plan_placement(self, job: Job) -> list[ProcSpec]:
        up = [n for n in self.universe.cluster.nodes if n.up]
        if not up:
            raise LaunchError("no nodes available")
        specs = []
        for rank in range(job.np):
            node = up[rank % len(up)]
            specs.append(
                ProcSpec(
                    jobid=job.jobid,
                    rank=rank,
                    node_name=node.name,
                    app=job.app,
                )
            )
        return specs

    def launch_and_init(self, job: Job, specs: list[ProcSpec]) -> SimGen:
        """PLM launch + the MPI_INIT rendezvous (modex exchange)."""
        job.state = JobState.LAUNCHING
        job.placements = {s.rank: s.node_name for s in specs}
        self._persist_job(job)
        init_queue = self.proc.kernel.queue(f"init.job{job.jobid}")
        self._init_queues[job.jobid] = init_queue
        yield from self.plm.launch(self, specs)
        # Gather one INIT_READY (with a business card) per rank.  A
        # rank dying before initializing (e.g. a corrupt restart image)
        # aborts the whole launch rather than waiting forever.
        cards: dict[int, dict] = {}
        while len(cards) < job.np:
            payload = yield from init_queue.get()
            if "launch_abort" in payload:
                self._init_queues.pop(job.jobid, None)
                job.mark_failed()
                self.errmgr._abort_survivors(job)
                raise LaunchError(payload["launch_abort"])
            cards[payload["rank"]] = payload["card"]
        # Broadcast the modex: every rank learns every endpoint.
        modex = {rank: cards[rank] for rank in sorted(cards)}
        for rank in sorted(cards):
            yield from self.rml.send(
                ProcessName(job.jobid, rank),
                TAG_INIT_GO,
                {"modex": modex, "np": job.np},
            )
        job.state = JobState.RUNNING
        self._persist_job(job)
        self._init_queues.pop(job.jobid, None)
        # Recovered jobs come through here too, so every incarnation
        # keeps checkpointing on the configured cadence.
        self.ckpt_scheduler.attach(job)
        return job

    # -- handlers ------------------------------------------------------------

    def _on_init_ready(self, sender, payload: dict) -> SimGen:
        queue = self._init_queues.get(payload["jobid"])
        if queue is not None:
            queue.put(payload)
        yield from ()
        return None

    def _on_proc_exit(self, sender, payload: dict) -> SimGen:
        jobid, rank = payload["jobid"], payload["rank"]
        job = self.universe.jobs.get(jobid)
        if job is None:
            return None
        failed = payload.get("failed", False)
        job.note_exit(rank, payload.get("result"), failed)
        self.ckpt_ready.get(jobid, set()).discard(rank)
        if self.statestore.enabled:
            self._persist_job(job)
            self._persist_ready(jobid)
        if failed:
            init_queue = self._init_queues.get(jobid)
            if init_queue is not None:
                # Still mid-init: wake the launch so it can abort.
                init_queue.put(
                    {
                        "launch_abort": (
                            f"rank {rank} died during init: "
                            f"{payload.get('result')}"
                        )
                    }
                )
            yield from self.errmgr.on_rank_failure(job, rank, payload.get("result"))
        return None

    def _on_ckpt_ready(self, sender, payload: dict) -> SimGen:
        ready = self.ckpt_ready.setdefault(payload["jobid"], set())
        if payload.get("ready", True):
            ready.add(payload["rank"])
        else:
            ready.discard(payload["rank"])
        if self.statestore.enabled:
            self._persist_ready(payload["jobid"])
        yield from ()
        return None

    def _on_ckpt_request(self, sender, payload: dict) -> SimGen:
        jobid = payload.get("jobid")
        options = payload.get("options", {})
        try:
            job = self.universe.job(jobid)
            ref = yield from self.snapc.global_checkpoint(self, job, options)
            # Parse the interval from the snapshot name itself —
            # ``job.next_interval - 1`` races when checkpoints overlap.
            parsed = parse_global_dirname(ref.path)
            reply = {
                "ok": True,
                "snapshot": ref.path,
                "interval": parsed[1] if parsed else None,
            }
        except ReproError as exc:
            reply = {"ok": False, "error": str(exc)}
        try:
            yield from self.rml.send(
                sender, TAG_CKPT_REPLY, self.rml.reply_to(payload, reply)
            )
        except NetworkError:
            pass  # requester vanished; nothing to do
        return None

    def _on_restart_request(self, sender, payload: dict) -> SimGen:
        try:
            ref = GlobalSnapshotRef(payload["snapshot"])
            job = yield from self.snapc.global_restart(
                self, ref, payload.get("options", {})
            )
            reply = {"ok": True, "jobid": job.jobid}
        except ReproError as exc:
            reply = {"ok": False, "error": str(exc)}
        try:
            yield from self.rml.send(
                sender, TAG_RESTART_REPLY, self.rml.reply_to(payload, reply)
            )
        except NetworkError:
            pass
        return None

    def _on_migrate_request(self, sender, payload: dict) -> SimGen:
        """Process migration (a paper section 8 extension): checkpoint
        the job to stable storage, let it terminate, and restart it
        with the requested rank→node placement."""
        from repro.simenv.kernel import WaitEvent

        from repro.orte.job import JobState
        from repro.simenv.kernel import Delay
        from repro.util.errors import CheckpointError

        try:
            job = self.universe.job(payload["jobid"])
            # A periodic checkpoint may be in flight; wait it out.
            for _attempt in range(200):
                if job.state != JobState.CHECKPOINTING:
                    break
                yield Delay(0.01)
            else:
                raise CheckpointError(
                    f"job {job.jobid} stuck checkpointing; cannot migrate"
                )
            ref = yield from self.snapc.global_checkpoint(
                self, job, {"terminate": True}
            )
            if not job.is_done:
                yield WaitEvent(job.done_event)
            new_job = yield from self.snapc.global_restart(
                self, ref, {"placement": payload.get("placement", {})}
            )
            reply = {"ok": True, "jobid": new_job.jobid, "snapshot": ref.path}
        except ReproError as exc:
            reply = {"ok": False, "error": str(exc)}
        try:
            yield from self.rml.send(
                sender, TAG_MIGRATE_REPLY, self.rml.reply_to(payload, reply)
            )
        except NetworkError:
            pass
        return None

    def _on_ps_request(self, sender, payload: dict) -> SimGen:
        table = []
        for job in self.universe.jobs.values():
            table.append(
                {
                    "jobid": job.jobid,
                    "app": job.app.name,
                    "np": job.np,
                    "state": job.state.value,
                    "placements": dict(job.placements),
                    "snapshots": [ref.path for ref in job.snapshots],
                    "checkpointable": sorted(
                        self.ckpt_ready.get(job.jobid, set())
                    ),
                }
            )
        try:
            yield from self.rml.send(
                sender, TAG_PS_REPLY, self.rml.reply_to(payload, {"jobs": table})
            )
        except NetworkError:
            pass
        return None

    # -- failover rehydration --------------------------------------------------

    def rehydrate(self) -> SimGen:
        """Rebuild the control plane from the durable store (new HNP).

        Ordering is load-bearing: (1) replay the store; (2) restore the
        jobid floor before anything can mint a job; (3) error-manager
        lineages/budgets and scheduler cadence state, which later steps
        consult; (4) checkpointable-rank registrations, filtered to
        ranks still alive; (5) reclaim admission tokens orphaned by the
        dead incarnation's transfers, then rebuild staging from the
        persisted interval records (committed intervals adopted,
        in-flight ones re-staged idempotently); (6) hand off failures
        injected while no HNP was alive; (7) re-attach live jobs and
        re-plan half-launched incarnations; (8) resume recovery
        episodes the old HNP left unsettled.
        """
        from repro.simenv.kernel import Delay

        universe = self.universe
        span = self.proc.kernel.tracer.begin(
            "hnp.failover", cat="orte", node=self.proc.node.name
        )
        tables = yield from self.statestore.replay()
        floor = int(tables.get("universe", {}).get("jobid_floor", 0) or 0)
        universe.restore_jobid_floor(floor)
        # Live Job objects survive in universe.jobs (campaign followers
        # hold references to them and their done events); the persisted
        # records contribute the counters only the store kept durable.
        for key, rec in tables.get("jobs", {}).items():
            job = universe.jobs.get(int(key))
            if job is not None and rec.get("next_interval"):
                job.next_interval = max(
                    job.next_interval, int(rec["next_interval"])
                )
        self.errmgr.rehydrate(tables.get("errmgr", {}))
        self.ckpt_scheduler.rehydrate(tables.get("sched", {}))
        self._rehydrate_ready(tables.get("ready", {}))
        tokens_freed = 0
        restaged = lost = adopted = 0
        stager_fn = getattr(self.snapc, "stager", None)
        if stager_fn is not None:
            stager = stager_fn(self)
            tokens_freed = stager.admission.reclaim_all()
            restaged, lost, adopted = yield from stager.rehydrate(
                tables.get("staging", {})
            )
        # Failures injected while no HNP was alive hand off here; one
        # zero-delay hop lets the spawned handlers mark their jobs
        # FAILED before the re-attach pass assesses states.
        orphaned = universe.drain_orphaned_failures()
        for description in orphaned:
            self.errmgr._on_injected_failure(description)
        if orphaned:
            yield Delay(0.0)
        reattached, replanned = self._reattach_jobs()
        self.errmgr.resume_pending()
        span.end(
            tokens_freed=tokens_freed,
            committed_adopted=adopted,
            restaged=restaged,
            lost=lost,
            orphaned=len(orphaned),
            reattached=reattached,
            replanned=replanned,
        )
        log.warning(
            "HNP on %s rehydrated: %d interval(s) adopted, %d restaged, "
            "%d lost, %d job(s) reattached, %d re-planned",
            self.proc.node.name, adopted, restaged, lost, reattached,
            replanned,
        )
        return None

    def _rehydrate_ready(self, table: dict) -> None:
        """Checkpointable-rank registrations, filtered to live ranks."""
        for key, ranks in table.items():
            jobid = int(key)
            job = self.universe.jobs.get(jobid)
            if job is None or job.is_done:
                continue
            live = {
                int(r) for r in ranks
                if self.universe.lookup(ProcessName(jobid, int(r)))
                is not None
            }
            if live:
                self.ckpt_ready[jobid] = live

    def _reattach_jobs(self) -> tuple[int, int]:
        """Adopt or re-plan every non-terminal job; returns the counts
        ``(reattached, replanned)``.

        RUNNING jobs with all ranks alive re-attach to the checkpoint
        scheduler.  CHECKPOINTING flips back to RUNNING first — the
        coordination RPCs died with the old HNP, but the orted-side
        local phase settles on its own and the ranks resume computing.
        A job caught LAUNCHING lost its modex rendezvous and cannot be
        completed, only re-planned through the error manager; PENDING
        jobs are simply re-submitted.  Jobs with dead ranks go down the
        ordinary rank-failure path (detection the PROC_EXIT message
        never got to deliver).
        """
        universe = self.universe
        reattached = replanned = 0
        for jobid in sorted(universe.jobs):
            job = universe.jobs[jobid]
            if job.is_done:
                continue
            if job.state == JobState.PENDING:
                self.submit(job)
                replanned += 1
                continue
            if job.state == JobState.LAUNCHING:
                job.mark_failed()
                self.errmgr._abort_survivors(job)
                self._persist_job(job)
                replanned += 1
                continue
            if job.state == JobState.CHECKPOINTING:
                job.state = JobState.RUNNING
            dead = [
                rank for rank in range(job.np)
                if self.universe.lookup(ProcessName(job.jobid, rank)) is None
            ]
            if dead:
                self.proc.spawn_thread(
                    self.errmgr._handle_lost_ranks(
                        job, dead, "rank lost across HNP failover"
                    ),
                    name=f"errmgr-failover-job{job.jobid}",
                    daemon=True,
                )
                replanned += 1
            else:
                self.ckpt_scheduler.attach(job)
                reattached += 1
            self._persist_job(job)
        return reattached, replanned
