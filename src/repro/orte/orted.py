"""orted — the per-node runtime daemon.

Creates application processes on launch commands from the HNP, hosts
the SNAPC *local coordinator* (paper Figure 1-C/D: initiate the
checkpoint of each local process and relay the results), and watches
its processes so exits and failures are reported upstream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.orte.job import ProcSpec
from repro.orte.oob import (
    RML,
    TAG_HNP_HEARTBEAT,
    TAG_LAUNCH,
    TAG_LAUNCH_ACK,
    TAG_PROC_EXIT,
    TAG_SNAPC_LOCAL,
    TAG_SNAPC_LOCAL_DONE,
)
from repro.simenv.kernel import Delay, SimGen, WaitEvent
from repro.util.errors import NetworkError, ReproError, SimInterrupt
from repro.util.ids import hnp_name
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.universe import Universe
    from repro.simenv.process import SimProcess

log = get_logger("orte.orted")


class Orted:
    """One node's runtime daemon."""

    def __init__(self, universe: "Universe", proc: "SimProcess"):
        self.universe = universe
        self.proc = proc
        self.node = proc.node
        self.rml = RML(universe, proc)
        self.registry = universe.make_registry()
        self.snapc = self.registry.framework("snapc").open(
            universe.params, context=self
        )
        self.local_procs: list["SimProcess"] = []
        self.proc.spawn_thread(self._serve_launch(), name="orted-launch", daemon=True)
        self.proc.spawn_thread(self._serve_snapc(), name="orted-snapc", daemon=True)
        if universe.failover_enabled:
            self.proc.spawn_thread(
                self._watch_hnp(), name="orted-hnp-watch", daemon=True
            )

    # -- launch ----------------------------------------------------------------

    def _serve_launch(self) -> SimGen:
        while True:
            sender, payload = yield from self.rml.recv(TAG_LAUNCH)
            try:
                for spec in payload["specs"]:
                    self._create_proc(spec)
                reply = {"ok": True}
            except ReproError as exc:
                reply = {"ok": False, "error": str(exc)}
            yield from self.rml.send(
                sender, TAG_LAUNCH_ACK, self.rml.reply_to(payload, reply)
            )

    def _create_proc(self, spec: ProcSpec) -> "SimProcess":
        from repro.ompi.launch import build_app_process

        proc = build_app_process(self.universe, self.node, spec)
        self.local_procs.append(proc)
        self.proc.spawn_thread(
            self._watch(proc, spec), name=f"orted-watch-{spec.rank}", daemon=True
        )
        log.debug("%s: launched %s", self.node.name, proc.label)
        return proc

    def _watch(self, proc: "SimProcess", spec: ProcSpec) -> SimGen:
        failed = False
        result = None
        try:
            result = yield WaitEvent(proc.exit_event)
        except (GeneratorExit, SimInterrupt):
            raise
        except BaseException as exc:  # noqa: BLE001 - report any failure
            failed = True
            result = f"{type(exc).__name__}: {exc}"
        self.universe.deregister(proc.name)
        if proc in self.local_procs:
            self.local_procs.remove(proc)
        try:
            yield from self.rml.send(
                hnp_name(),
                TAG_PROC_EXIT,
                {
                    "jobid": spec.jobid,
                    "rank": spec.rank,
                    "failed": failed,
                    "result": result,
                },
            )
        except NetworkError:
            pass  # we are probably going down with the node
        return None

    # -- HNP failover watch ------------------------------------------------------

    def _watch_hnp(self) -> SimGen:
        """Monitor the HNP; run the deterministic election on its death.

        Zero-cost while healthy: the watcher parks on the HNP process's
        exit event and posts no timers (a free-running heartbeat clock
        would keep the simulation from ever draining).  Only after the
        HNP goes down does it enter a timed probe loop over the OOB
        heartbeat tag, which ends as soon as a successor binds the
        mpirun name — every surviving watcher computes the same
        election order (:meth:`Universe.electable_orteds`), so exactly
        one of them calls the election and the rest stand down.
        """
        universe = self.universe
        while True:
            hnp = universe.hnp
            if hnp is None:
                return None
            if hnp.proc.alive:
                try:
                    yield WaitEvent(hnp.proc.exit_event)
                except (GeneratorExit, SimInterrupt):
                    raise
                except BaseException:  # noqa: BLE001 - a killed HNP fails the event
                    pass
            # Failover-window pacing: one heartbeat of grace, then
            # probe.  The timers stop once a live HNP answers the
            # route, so the kernel can drain after the handoff.
            yield Delay(universe.heartbeat_s)
            try:
                yield from self.rml.send(
                    hnp_name(),
                    TAG_HNP_HEARTBEAT,
                    {"vpid": self.proc.name.vpid, "node": self.node.name},
                )
                continue  # a (possibly new) HNP answered the route
            except NetworkError:
                pass
            if universe.failover_in_flight:
                continue
            candidates = universe.electable_orteds()
            if not candidates:
                return None  # no survivors; the universe is lost
            if candidates[0] is not self:
                continue  # the lowest-id survivor runs the election
            span = self.proc.kernel.tracer.begin(
                "hnp.election", cat="orte", node=self.node.name,
                vpid=self.proc.name.vpid,
            )
            elected = universe.elect_hnp(self)
            span.end(elected=elected)

    # -- SNAPC local coordinator -------------------------------------------------

    def _serve_snapc(self) -> SimGen:
        while True:
            sender, payload = yield from self.rml.recv(TAG_SNAPC_LOCAL)
            self.proc.spawn_thread(
                self._handle_snapc(sender, payload),
                name="orted-snapc-worker",
                daemon=True,
            )

    def _handle_snapc(self, sender, payload: dict) -> SimGen:
        # Payload rank/target keys may have been stringified in transit.
        payload = dict(payload)
        payload["targets"] = {
            int(k): v for k, v in payload.get("targets", {}).items()
        }
        try:
            results = yield from self.snapc.local_checkpoint(self, payload)
            reply = {"ok": True, "results": results}
        except ReproError as exc:
            reply = {"ok": False, "error": str(exc), "results": {}}
        try:
            yield from self.rml.send(
                sender, TAG_SNAPC_LOCAL_DONE, self.rml.reply_to(payload, reply)
            )
        except NetworkError:
            pass
        return None
