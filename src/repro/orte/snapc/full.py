"""``full`` SNAPC component — the paper's centralized coordinator.

Reproduces Figure 1's message flow:

* **A** — a tool (or an application's synchronous request) reaches the
  global coordinator in mpirun over OOB;
* **B/C** — the global coordinator fans the request to the local
  coordinators (orteds), which relay it to the application coordinators
  (the checkpoint notification threads);
* **D/E** — completion notifications flow back up;
* **F** — the global coordinator drives FILEM to aggregate the local
  snapshots into the global snapshot on stable storage *while the
  application resumes normal operation*: the request is answered and
  the job returns to RUNNING as soon as D/E are in; the gather, local
  cleanup, and metadata commit run in the background staging
  coordinator (:mod:`repro.orte.snapc.staging`).  Callers who want the
  old synchronous behaviour pass ``wait_stable``.
* **A** — the global snapshot reference is returned to the requester.

Section 5.1's veto rule is enforced before anything happens: if any
process in the request is not checkpointable, the request fails and no
process is affected.

Incremental checkpointing rides the same flow: the staging coordinator
plans each interval as full or delta (``snapc_full_interval_every``),
the ranks are told which base interval to diff against, and the global
metadata records the base-chain of directories a delta restart needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import component_of
from repro.mca.params import MCAParams
from repro.opal.crs import chunks as chunkstore
from repro.orte.job import AppSpec, JobState, ProcSpec
from repro.orte.oob import (
    TAG_CKPT_ABORT,
    TAG_CKPT_DO,
    TAG_CKPT_DONE,
    TAG_CKPT_TERM_ACK,
    TAG_SNAPC_LOCAL,
    TAG_SNAPC_LOCAL_DONE,
)
from repro.orte.snapc.base import SNAPCComponent
from repro.orte.snapc.staging import StagingCoordinator, StagingRecord
from repro.simenv.kernel import Delay, WaitAll, WaitAny
from repro.snapshot import (
    STAGE_COMMITTED,
    STAGE_FAILED,
    STAGE_STAGING,
    GlobalSnapshotMeta,
    GlobalSnapshotRef,
    global_snapshot_dirname,
    parse_global_dirname,
    read_global_meta,
)
from repro.util.errors import (
    CheckpointError,
    NetworkError,
    NotCheckpointableError,
    ReproError,
    RestartError,
)
from repro.util.ids import ProcessName
from repro.util.logging import get_logger
from repro.vfs import path as vpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP
    from repro.orte.job import Job
    from repro.orte.orted import Orted
    from repro.simenv.kernel import SimGen

log = get_logger("orte.snapc")

SNAPSHOT_ROOT = "/snapshots"
LOCAL_STAGING_ROOT = "/ckpt"
RESTART_STAGING_ROOT = "/restart"

#: request options consumed by the coordinator, not forwarded to ranks
_COORDINATOR_OPTIONS = ("wait_stable",)


@component_of("snapc", "full", priority=10)
class FullSNAPC(SNAPCComponent):
    # ------------------------------------------------------------------
    # Staging coordinator plumbing
    # ------------------------------------------------------------------

    def stager(self, hnp: "HNP") -> StagingCoordinator:
        """The per-HNP background staging coordinator (lazily built)."""
        stager = getattr(self, "_stager", None)
        if stager is None or stager.hnp is not hnp:
            stager = StagingCoordinator(self, hnp)
            self._stager = stager
        return stager

    @staticmethod
    def _daemon_for(hnp: "HNP", node_name: str) -> ProcessName:
        """Resolve a node's orted address from the universe, not the
        node's name string (node naming schemes are configurable)."""
        return hnp.universe.orted_for(node_name).proc.name

    # ------------------------------------------------------------------
    # Global coordinator (runs in mpirun)
    # ------------------------------------------------------------------

    def global_checkpoint(self, hnp: "HNP", job: "Job", options: dict) -> "SimGen":
        if job.state != JobState.RUNNING:
            raise CheckpointError(
                f"job {job.jobid} is {job.state.value}, cannot checkpoint"
            )
        # Readiness registrations travel over OOB and may still be in
        # flight when a request arrives just after launch; give them a
        # short grace period before applying the section-5.1 veto.
        grace = self.params.get_float("snapc_full_ready_grace", 0.05)
        deadline = hnp.proc.kernel.now + grace
        while True:
            ready = hnp.ckpt_ready.get(job.jobid, set())
            missing = sorted(set(range(job.np)) - ready)
            if not missing:
                break
            if hnp.proc.kernel.now >= deadline or job.state != JobState.RUNNING:
                # Section 5.1: notify the user; affect no process.
                raise NotCheckpointableError(
                    [str(ProcessName(job.jobid, r)) for r in missing]
                )
            yield Delay(grace / 10)

        stager = self.stager(hnp)
        terminate = bool(options.get("terminate", False))
        wait_stable = bool(options.get("wait_stable", False))

        # Backpressure: a bounded number of intervals may be staging at
        # once; block here — before the application is disturbed —
        # until the pipeline has room.
        yield from stager.acquire_slot(job.jobid)
        if job.state != JobState.RUNNING:
            stager.release_slot(job.jobid)
            raise CheckpointError(
                f"job {job.jobid} is {job.state.value}, cannot checkpoint"
            )

        interval = job.next_interval
        job.next_interval += 1
        job.state = JobState.CHECKPOINTING
        tracer = hnp.proc.kernel.tracer
        ckpt_span = tracer.begin(
            "snapc.checkpoint", cat="snapc", jobid=job.jobid,
            interval=interval, np=job.np,
        )
        job.halting = terminate
        stable = hnp.universe.cluster.stable_fs
        global_dir = vpath.join(
            SNAPSHOT_ROOT, global_snapshot_dirname(job.jobid, interval)
        )
        stable.mkdir(global_dir)
        ref = GlobalSnapshotRef(global_dir)
        direct_stable = hnp.filem.wants_direct_stable

        # Full or delta?  The staging coordinator owns the chain state.
        plan = stager.plan_interval(job.jobid)
        rank_options = {
            k: v for k, v in options.items() if k not in _COORDINATOR_OPTIONS
        }
        if plan["kind"] == chunkstore.KIND_DELTA:
            rank_options["incremental"] = True
            rank_options["base_interval"] = plan["base_interval"]

        # Fan out to the local coordinators, one RPC per involved node.
        by_node: dict[str, list[int]] = {}
        for rank, node_name in job.placements.items():
            by_node.setdefault(node_name, []).append(rank)

        results: dict[int, dict] = {}
        errors: list[str] = []
        abort_sent = {"done": False}

        def abort_one(rank: int) -> "SimGen":
            try:
                yield from hnp.rml.send(
                    ProcessName(job.jobid, rank), TAG_CKPT_ABORT, {}
                )
            except NetworkError:
                pass
            return None

        def broadcast_abort() -> "SimGen":
            """One rank vetoed mid-flight: release everyone else.

            The sends fan out concurrently — a sequential loop would
            serialize OOB latency across np ranks while vetoed
            processes sit blocked.
            """
            if abort_sent["done"]:
                return None
            abort_sent["done"] = True
            abort_events = [
                hnp.proc.spawn_thread(
                    abort_one(rank), name=f"snapc-abort-{rank}", daemon=True
                ).done
                for rank in range(job.np)
            ]
            yield WaitAll(abort_events)
            return None

        def contact(node_name: str, ranks: list[int]) -> "SimGen":
            targets = {}
            for rank in ranks:
                if direct_stable:
                    targets[rank] = {"fs": "stable", "dir": ref.local_dir(rank)}
                else:
                    targets[rank] = {
                        "fs": "local",
                        "dir": vpath.join(
                            LOCAL_STAGING_ROOT,
                            f"job{job.jobid}",
                            f"interval{interval}",
                            f"rank{rank}",
                        ),
                    }
            try:
                _, reply = yield from hnp.rml.rpc(
                    self._daemon_for(hnp, node_name),
                    TAG_SNAPC_LOCAL,
                    {
                        "jobid": job.jobid,
                        "interval": interval,
                        "ranks": ranks,
                        "targets": targets,
                        "terminate": terminate,
                        "options": dict(rank_options),
                    },
                    TAG_SNAPC_LOCAL_DONE,
                )
            except NetworkError as exc:
                errors.append(f"{node_name}: {exc}")
                yield from broadcast_abort()
                return None
            failed_here = False
            for rank_str, result in reply.get("results", {}).items():
                rank = int(rank_str)
                if result.get("ok"):
                    results[rank] = result
                else:
                    errors.append(f"rank {rank}: {result.get('error')}")
                    failed_here = True
            if failed_here:
                yield from broadcast_abort()
            return None

        # Figure 1 B–E: request fan-out to the local coordinators and
        # the completion notifications flowing back.
        fanout_span = tracer.begin(
            "snapc.fanout", cat="snapc", jobid=job.jobid,
            interval=interval, nodes=len(by_node),
        )
        events = []
        for node_name, ranks in sorted(by_node.items()):
            thread = hnp.proc.spawn_thread(
                contact(node_name, ranks),
                name=f"snapc-global-{node_name}",
                daemon=True,
            )
            events.append(thread.done)
        yield WaitAll(events)
        fanout_span.end(errors=len(errors))

        if errors or len(results) != job.np:
            job.halting = False
            if job.state == JobState.CHECKPOINTING:
                job.state = JobState.RUNNING
            stager.release_slot(job.jobid)
            ckpt_span.end(ok=False)
            raise CheckpointError(
                f"checkpoint of job {job.jobid} failed: "
                + "; ".join(errors or ["missing local snapshots"])
            )

        # A delta interval where every rank fell back to a full image
        # (cold or mismatched chunk caches, e.g. after an aborted
        # attempt) is recorded as full so the chain does not grow.
        if plan["kind"] == chunkstore.KIND_DELTA and all(
            r.get("kind", chunkstore.KIND_FULL) == chunkstore.KIND_FULL
            for r in results.values()
        ):
            plan = {
                "kind": chunkstore.KIND_FULL,
                "base_interval": None,
                "base_chain": [],
                "compact": False,
            }

        # Content-addressed staging: every rank must have replied with
        # a CAS-ready manifest (chunk digests); a rank without one
        # (e.g. a CRS that bypasses the chunk format) falls the whole
        # interval back to tree staging.
        cas_active = (
            stager.cas_enabled
            and not direct_stable
            and getattr(hnp.filem, "supports_cas", False)
        )
        rank_manifests: dict[int, chunkstore.ChunkManifest] = {}
        if cas_active:
            for rank in sorted(results):
                reply = results[rank]
                if not reply.get("hashes"):
                    cas_active = False
                    rank_manifests = {}
                    break
                rank_manifests[rank] = chunkstore.ChunkManifest(
                    kind=reply.get("kind", chunkstore.KIND_FULL),
                    chunk_bytes=reply.get("chunk_bytes", 0),
                    total_bytes=reply.get("total_bytes", 0),
                    hashes=list(reply.get("hashes", [])),
                    present=list(reply.get("present", [])),
                    base_interval=plan["base_interval"],
                    interval=interval,
                )

        meta = GlobalSnapshotMeta(
            jobid=job.jobid,
            interval=interval,
            n_procs=job.np,
            sim_time=hnp.proc.kernel.now,
            app_name=job.app.name,
            app_args=dict(job.app.args),
            mca_params=job.params.to_dict(),
            locals={
                rank: {
                    "path": ref.local_dir(rank),
                    "node": results[rank]["node"],
                    "crs": results[rank]["crs"],
                    "os_tag": results[rank]["os_tag"],
                    "portable": results[rank].get("portable", True),
                    "last_rank": rank,
                    "kind": results[rank].get("kind", chunkstore.KIND_FULL),
                    "bytes": results[rank].get("bytes", 0),
                }
                for rank in sorted(results)
            },
            kind=plan["kind"],
            base_interval=plan["base_interval"],
            # A CAS interval's manifests list every chunk digest, so
            # restart never needs another directory — its persisted
            # chain is empty even when the ranks wrote deltas.
            base_chain=[] if cas_active else list(plan["base_chain"]),
            cas=cas_active,
            staging={
                "state": STAGE_STAGING,
                "committed_sim_time": None,
                "error": None,
            },
        )
        # For ``shared`` FILEM the snapshots already sit at their final
        # location, so every entry short-circuits the gather (src ==
        # dst, already complete) — the degenerate metadata check.
        gather_entries = [
            (results[rank]["node"], results[rank]["path"], ref.local_dir(rank))
            for rank in sorted(results)
        ]
        record = StagingRecord(
            jobid=job.jobid,
            interval=interval,
            ref=ref,
            meta=meta,
            kind=plan["kind"],
            base_chain=list(plan["base_chain"]),
            compact=plan["compact"],
            gather_entries=gather_entries,
            cas=cas_active,
            rank_manifests=rank_manifests,
            terminate=terminate,
            done=hnp.proc.kernel.event(
                f"snapc.commit.job{job.jobid}.{interval}"
            ),
            enqueued_at=hnp.proc.kernel.now,
        )
        # Figure 1-F: the application resumes normal operation NOW; the
        # aggregation runs in the background staging worker (our slot
        # transfers to the record and is released when it settles).
        stager.dispatch(record)
        ckpt_span.end(ok=True, kind=plan["kind"])
        if not terminate and job.state == JobState.CHECKPOINTING:
            job.state = JobState.RUNNING
        log.info(
            "job %d checkpoint interval %d (%s) local phase complete -> %s",
            job.jobid,
            interval,
            plan["kind"],
            ref.path,
        )
        if wait_stable:
            state = yield from stager.wait_settled(record)
            if state != STAGE_COMMITTED:
                raise CheckpointError(
                    f"checkpoint of job {job.jobid} interval {interval} "
                    f"failed to reach stable storage: {record.error}"
                )
        return ref

    # ------------------------------------------------------------------
    # Restart (global coordinator side)
    # ------------------------------------------------------------------

    def global_restart(self, hnp: "HNP", ref: GlobalSnapshotRef, options: dict) -> "SimGen":
        from repro.apps.registry import has_app

        universe = hnp.universe
        stable = universe.cluster.stable_fs

        # Restart of an interval must wait for its commit: if the
        # requested snapshot is still staging in this coordinator,
        # block until it settles (and fail if it failed).
        stager = self.stager(hnp)
        parsed = parse_global_dirname(ref.path)
        if parsed is not None:
            record = stager.record_for(*parsed)
            if record is not None:
                yield from stager.wait_committed(record)

        meta = yield from read_global_meta(stable, ref)
        staging = meta.staging or {}
        if staging.get("state") == STAGE_FAILED:
            raise RestartError(
                f"snapshot {ref.path} never reached stable storage: "
                f"{staging.get('error') or 'staging failed'}"
            )
        if staging.get("state") == STAGE_STAGING:
            # No live record (the coordinating HNP is gone) and the
            # metadata says the aggregation never finished.
            raise RestartError(
                f"snapshot {ref.path} is incomplete (staging never committed)"
            )
        if not has_app(meta.app_name):
            raise RestartError(
                f"snapshot references unknown application {meta.app_name!r}"
            )
        app = AppSpec(meta.app_name, dict(meta.app_args))
        params = MCAParams.from_dict(meta.mca_params)
        # Allow the restart request to override selected parameters
        # (e.g. a different BTL on the new topology).
        for key, value in options.get("mca_overrides", {}).items():
            params.set(key, value)
        job = universe.create_job(app, meta.n_procs, params)
        job.restarted_from = ref
        # Seed the new job's snapshot history with the interval it came
        # from (preceded by the committed ancestors that interval
        # depends on): a failure before the job's first own checkpoint
        # then still has a recovery baseline to walk back through.
        job.snapshots = [
            GlobalSnapshotRef(d) for d in meta.base_chain if d != ref.path
        ] + [ref]

        placements = self._plan_restart_placement(
            universe, meta, options.get("placement")
        )
        direct_stable = hnp.filem.wants_direct_stable

        # A delta interval is restored from its base-chain: every
        # directory the newest image depends on, oldest full first.
        chain_dirs = [d for d in meta.base_chain if d != ref.path]
        chain_dirs.append(ref.path)

        specs: list[ProcSpec] = []
        bcast_entries: list[tuple[str, str, str]] = []
        fetch_entries: list[tuple[str, str, str]] = []
        if meta.cas:
            # The rank directories hold only manifests; the image bytes
            # live in the content-addressed store and every chunk is
            # verified individually on the way out.
            if not getattr(hnp.filem, "supports_cas", False):
                raise RestartError(
                    f"snapshot {ref.path} is CAS-backed but FILEM "
                    f"{hnp.filem.name!r} cannot fetch chunks"
                )
            store = stager.store
            missing = 0
            for rank in range(meta.n_procs):
                try:
                    manifest = yield from chunkstore.read_manifest(
                        stable, ref.local_dir(rank)
                    )
                except ReproError as exc:
                    raise RestartError(
                        f"snapshot {ref.path}: rank {rank} manifest "
                        f"unreadable: {exc}"
                    ) from exc
                missing += len(store.missing(manifest.hashes))
            if missing:
                # Retryable: re-staging (any checkpoint that ships the
                # chunk again) repairs the store; nothing is poisoned.
                raise RestartError(
                    f"snapshot {ref.path}: {missing} chunk(s) absent "
                    "from the store"
                )
            for rank in range(meta.n_procs):
                node_name = placements[rank]
                dst_dir = vpath.join(
                    RESTART_STAGING_ROOT,
                    f"job{job.jobid}",
                    f"rank{rank}",
                    "part0",
                )
                fetch_entries.append((node_name, ref.local_dir(rank), dst_dir))
                specs.append(
                    ProcSpec(
                        jobid=job.jobid,
                        rank=rank,
                        node_name=node_name,
                        app=app,
                        restart_from={
                            "fs": "local",
                            "dir": dst_dir,
                            "chain": [dst_dir],
                        },
                    )
                )
        else:
            for rank in range(meta.n_procs):
                node_name = placements[rank]
                rank_chain = [vpath.join(d, f"rank{rank}") for d in chain_dirs]
                if direct_stable:
                    restart_from = {
                        "fs": "stable",
                        "dir": rank_chain[-1],
                        "chain": rank_chain,
                    }
                else:
                    local_chain = []
                    for part, src_dir in enumerate(rank_chain):
                        dst_dir = vpath.join(
                            RESTART_STAGING_ROOT,
                            f"job{job.jobid}",
                            f"rank{rank}",
                            f"part{part}",
                        )
                        bcast_entries.append((node_name, src_dir, dst_dir))
                        local_chain.append(dst_dir)
                    restart_from = {
                        "fs": "local",
                        "dir": local_chain[-1],
                        "chain": local_chain,
                    }
                specs.append(
                    ProcSpec(
                        jobid=job.jobid,
                        rank=rank,
                        node_name=node_name,
                        app=app,
                        restart_from=restart_from,
                    )
                )

        # Preload checkpoint files on the target machines (section 5.2).
        try:
            if fetch_entries:
                yield from hnp.filem.fetch_chunks(hnp, stager.store, fetch_entries)
            if bcast_entries:
                yield from hnp.filem.broadcast(hnp, bcast_entries)
            yield from hnp.launch_and_init(job, specs)
        except ReproError:
            # A node dying mid-restart (during preload or launch) must
            # not leave the half-built job PENDING/LAUNCHING forever —
            # mark it failed so retrying recovery can re-plan placement.
            job.mark_failed()
            hnp.errmgr._abort_survivors(job)
            raise
        log.info(
            "job %d restarted from %s as job %d", meta.jobid, ref.path, job.jobid
        )
        return job

    @staticmethod
    def _plan_restart_placement(
        universe, meta: GlobalSnapshotMeta, forced: dict | None = None
    ) -> dict[int, str]:
        """Map ranks to up nodes, honouring image portability.

        Prefer the origin node when it is still up; otherwise place on
        any up node whose OS tag matches (or any node if the image is
        portable) — restarting "in new process topologies" per section
        6.3.  ``forced`` (rank -> node name) overrides the preference
        per rank — the migration path — but still respects portability.
        """
        up = [n for n in universe.cluster.nodes if n.up]
        if not up:
            raise RestartError("no nodes available for restart")
        forced = {int(k): v for k, v in (forced or {}).items()}
        placements: dict[int, str] = {}
        spill = 0
        for rank in range(meta.n_procs):
            info = meta.locals.get(rank)
            if info is None:
                raise RestartError(f"global snapshot missing rank {rank}")
            if rank in forced:
                target = next((n for n in up if n.name == forced[rank]), None)
                if target is None:
                    raise RestartError(
                        f"rank {rank}: requested node {forced[rank]} is not up"
                    )
                portable = bool(info.get("portable", True))
                if not portable and target.os_tag != info.get("os_tag"):
                    raise RestartError(
                        f"rank {rank}: image ({info.get('os_tag')}) is not "
                        f"portable to {target.name} ({target.os_tag})"
                    )
                placements[rank] = target.name
                continue
            origin = info["node"]
            origin_node = next((n for n in up if n.name == origin), None)
            if origin_node is not None:
                placements[rank] = origin
                continue
            portable = bool(info.get("portable", True))
            candidates = [
                n for n in up if portable or n.os_tag == info.get("os_tag")
            ]
            if not candidates:
                raise RestartError(
                    f"rank {rank}: image from {origin} ({info.get('os_tag')}) "
                    "has no compatible up node"
                )
            placements[rank] = candidates[spill % len(candidates)].name
            spill += 1
        return placements

    # ------------------------------------------------------------------
    # Local coordinator (runs in each orted)
    # ------------------------------------------------------------------

    def local_checkpoint(self, orted: "Orted", payload: dict) -> "SimGen":
        jobid = payload["jobid"]
        results: dict[int, dict] = {}
        local_span = orted.proc.kernel.tracer.begin(
            "snapc.local", cat="snapc", jobid=jobid,
            node=orted.proc.node.name, ranks=len(payload["ranks"]),
        )

        def one_rank(rank: int) -> "SimGen":
            target = payload["targets"][rank]
            name = ProcessName(jobid, rank)
            proc = orted.universe.lookup(name)
            if proc is None:
                results[rank] = {"ok": False, "error": f"{name} not found"}
                return None
            request = {
                "interval": payload["interval"],
                "fs": target["fs"],
                "dir": target["dir"],
                "terminate": payload["terminate"],
                "options": payload.get("options", {}),
            }

            def do_rpc() -> "SimGen":
                _, reply = yield from orted.rml.rpc(
                    name, TAG_CKPT_DO, request, TAG_CKPT_DONE
                )
                return reply

            rpc_thread = orted.proc.spawn_thread(
                do_rpc(), name=f"snapc-local-rpc-{rank}", daemon=True
            )
            index, value, exc = yield WaitAny(
                [rpc_thread.done, proc.exit_event]
            )
            if index == 0 and exc is None and value is not None:
                results[rank] = value
                if payload["terminate"] and value.get("ok"):
                    try:
                        yield from orted.rml.send(name, TAG_CKPT_TERM_ACK, {})
                    except NetworkError:
                        pass
            elif index == 1:
                rpc_thread.kill()
                results[rank] = {
                    "ok": False,
                    "error": f"{name} exited during checkpoint",
                }
            else:
                results[rank] = {"ok": False, "error": str(exc or "rpc failed")}
            return None

        events = []
        for rank in payload["ranks"]:
            thread = orted.proc.spawn_thread(
                one_rank(rank), name=f"snapc-local-{rank}", daemon=True
            )
            events.append(thread.done)
        yield WaitAll(events)
        local_span.end(
            ok=all(r.get("ok") for r in results.values())
        )
        return {str(rank): result for rank, result in results.items()}
