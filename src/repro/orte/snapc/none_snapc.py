"""``none`` SNAPC component: distributed checkpointing disabled.

The runtime-level analogue of building without FT support: any
checkpoint or restart request is rejected at the global coordinator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import component_of
from repro.orte.snapc.base import SNAPCComponent
from repro.util.errors import CheckpointError, RestartError

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP
    from repro.orte.job import Job
    from repro.orte.orted import Orted
    from repro.simenv.kernel import SimGen


@component_of("snapc", "none", priority=0)
class NoneSNAPC(SNAPCComponent):
    def global_checkpoint(self, hnp: "HNP", job: "Job", options: dict) -> "SimGen":
        raise CheckpointError("snapshot coordination disabled (snapc=none)")
        yield  # pragma: no cover

    def global_restart(self, hnp: "HNP", ref, options: dict) -> "SimGen":
        raise RestartError("snapshot coordination disabled (snapc=none)")
        yield  # pragma: no cover

    def local_checkpoint(self, orted: "Orted", payload: dict) -> "SimGen":
        raise CheckpointError("snapshot coordination disabled (snapc=none)")
        yield  # pragma: no cover
