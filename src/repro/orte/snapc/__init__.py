"""SNAPC — snapshot coordinator framework (paper sections 5.1, 6.1).

Launches, monitors, and aggregates distributed checkpoint requests.
The ``full`` component reproduces the paper's centralized design with
three sub-coordinators: the **global coordinator** in mpirun, a **local
coordinator** in each orted, and an **application coordinator** (the
notification thread) in each application process.
"""

from repro.orte.snapc.base import SNAPCComponent, register_snapc_components
from repro.orte.snapc.full import FullSNAPC
from repro.orte.snapc.none_snapc import NoneSNAPC

__all__ = [
    "SNAPCComponent",
    "register_snapc_components",
    "FullSNAPC",
    "NoneSNAPC",
]
