"""SNAPC framework base.

A SNAPC component implements both coordinator sides:

* the *global* side runs in the HNP — validates requests against the
  set of checkpointable processes (the section 5.1 veto rule),
  sequences intervals, drives local coordinators, aggregates local
  snapshots into a global snapshot on stable storage, and serves
  restart requests;
* the *local* side runs in each orted — relays the request to the
  application coordinators on its node and reports their local
  snapshot references back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import Component
from repro.simenv.kernel import SimGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.orte.hnp import HNP
    from repro.orte.job import Job
    from repro.orte.orted import Orted
    from repro.snapshot import GlobalSnapshotRef


class SNAPCComponent(Component):
    """Base class for snapshot-coordinator components."""

    framework_name = "snapc"

    # -- global coordinator side (HNP) --------------------------------------

    def global_checkpoint(self, hnp: "HNP", job: "Job", options: dict) -> SimGen:
        """Coordinate one distributed checkpoint of *job*.

        Returns a :class:`GlobalSnapshotRef` on success.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def global_restart(self, hnp: "HNP", ref: "GlobalSnapshotRef", options: dict) -> SimGen:
        """Restart a job from *ref*; returns the new :class:`Job`."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- local coordinator side (orted) --------------------------------------

    def local_checkpoint(self, orted: "Orted", payload: dict) -> SimGen:
        """Relay a checkpoint request to this node's app coordinators.

        Returns ``{rank: result_dict}`` for the ranks handled here.
        """
        raise NotImplementedError
        yield  # pragma: no cover


def register_snapc_components(registry: "FrameworkRegistry") -> None:
    from repro.orte.snapc.full import FullSNAPC
    from repro.orte.snapc.none_snapc import NoneSNAPC

    registry.add_component("snapc", FullSNAPC)
    registry.add_component("snapc", NoneSNAPC)
