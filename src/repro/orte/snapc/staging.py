"""Background staging coordinator for SNAPC ``full`` (Figure 1-F).

The paper says the global coordinator aggregates local snapshots onto
stable storage *while the application resumes normal operation*.  This
module makes that true: once every local snapshot is written and the
D/E notifications are back, the checkpoint request is answered and the
job returns to RUNNING; the FILEM gather, local-staging cleanup, and
global-metadata commit run here, in a per-job background worker inside
the HNP.

Lifecycle of one interval (a :class:`StagingRecord`):

``STAGING`` (enqueued, metadata persisted with ``staging.state =
"staging"``) → ``COMMITTED`` (all local snapshots on stable storage,
metadata rewritten, the interval appended to ``job.snapshots``) or
``FAILED`` (a source node died mid-stage and retries were exhausted —
the application is never touched; the interval is simply not usable
and the next checkpoint is forced to a full image).

Ordering and backpressure: one worker per job drains a FIFO queue, so
intervals commit in request order; at most ``snapc_full_stage_depth``
intervals may be in flight (queued or staging), and a new checkpoint
request blocks — *before* the application is disturbed — until a slot
frees up.

The coordinator also owns the incremental-checkpoint planning state:
which interval the next delta should diff against, the base-chain of
global directories a delta interval depends on, full-image cadence
(``snapc_full_interval_every``), and chain-length compaction
(``snapc_full_max_chain`` — when a chain would grow past the bound the
newest interval is rewritten as a full image on stable storage during
its commit, resetting the chain without touching the application).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.opal.crs import chunks as chunkstore
from repro.orte.job import JobState
from repro.orte.snapc.admission import StagingAdmission
from repro.simenv.kernel import Delay, SimGen, WaitEvent
from repro.snapshot import (
    IMAGE_FILE,
    LOCAL_META,
    STAGE_COMMITTED,
    STAGE_FAILED,
    STAGE_STAGING,
    GlobalSnapshotMeta,
    GlobalSnapshotRef,
    LocalSnapshotMeta,
    LocalSnapshotRef,
    read_global_meta,
    read_local_meta,
    write_global_meta,
    write_local_meta,
)
from repro.util.errors import NetworkError, RestartError, SnapshotError, VFSError
from repro.util.logging import get_logger
from repro.vfs import path as vpath
from repro.vfs.cas import DEFAULT_ROOT as CAS_ROOT
from repro.vfs.cas import ChunkStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.hnp import HNP
    from repro.orte.job import Job
    from repro.orte.snapc.full import FullSNAPC
    from repro.simenv.kernel import Kernel, Queue, SimEvent

log = get_logger("orte.snapc.stage")


@dataclass
class StagingRecord:
    """One interval's journey from local snapshots to stable storage."""

    jobid: int
    interval: int
    ref: GlobalSnapshotRef
    meta: GlobalSnapshotMeta
    #: "full" or "delta" (what the ranks were asked to write)
    kind: str
    #: global snapshot dirs this interval depends on (oldest first)
    base_chain: list[str]
    #: rewrite this interval as a full image during commit
    compact: bool
    #: FILEM work: (node_name, local_src_dir, stable_dst_dir); empty
    #: when snapshots were written directly to stable storage
    gather_entries: list[tuple[str, str, str]]
    terminate: bool
    done: "SimEvent"
    enqueued_at: float
    #: stage via the content-addressed store (offer/ship protocol)
    cas: bool = False
    #: rank -> capture-side ChunkManifest (CAS mode; aligned with
    #: ``gather_entries``, both ordered by rank)
    rank_manifests: dict = field(default_factory=dict)
    state: str = STAGE_STAGING
    error: str | None = None
    bytes_moved: int = 0
    #: sum of the ranks' logical image sizes (CAS mode; the dedup
    #: ratio is bytes_logical / bytes_moved)
    bytes_logical: int = 0
    committed_at: float | None = None

    @property
    def settled(self) -> bool:
        return self.state != STAGE_STAGING


@dataclass
class _JobStaging:
    """Per-job staging pipeline state."""

    jobid: int
    queue: "Queue"
    slot_event: "SimEvent"
    inflight: int = 0
    worker_started: bool = False
    records: dict[int, StagingRecord] = field(default_factory=dict)
    #: global dirs whose staging failed — anything chained on them is doomed
    failed_dirs: set[str] = field(default_factory=set)
    #: next checkpoint must be a full image (set after a staging failure)
    force_full: bool = False
    #: delta intervals dispatched since the last full one
    since_full: int = 0
    #: global dirs since the last full interval, oldest (the full) first
    chain_dirs: list[str] = field(default_factory=list)
    #: last interval whose local snapshots were successfully written
    last_interval: int | None = None
    #: the job failed; queued and in-flight intervals must not commit
    aborted: bool = False


class StagingCoordinator:
    """Per-HNP owner of the background staging pipeline."""

    def __init__(self, snapc: "FullSNAPC", hnp: "HNP"):
        self.snapc = snapc
        self.hnp = hnp
        params = snapc.params
        self.depth = max(1, params.get_int("snapc_full_stage_depth", 2))
        self.retries = max(0, params.get_int("snapc_full_stage_retries", 1))
        self.every = max(1, params.get_int("snapc_full_interval_every", 1))
        self.max_chain = max(1, params.get_int("snapc_full_max_chain", 4))
        #: stage intervals through the content-addressed store
        #: (opt-in; needs a FILEM component with supports_cas)
        self.cas_enabled = params.get_bool("snapc_full_cas", False)
        self.cas_root = params.get("snapc_full_cas_root", CAS_ROOT)
        #: universe-level admission gate shared by every job's pipeline
        #: (the per-job depth above bounds one job; this bounds them all).
        #: Cached on the universe so an HNP failover replaces the
        #: coordinator but not the gate: counters survive, and the
        #: rehydrating HNP can reclaim tokens the dead one's transfers
        #: still held.
        universe = hnp.universe
        if universe.staging_admission is None:
            universe.staging_admission = StagingAdmission(
                hnp.proc.kernel,
                tokens=params.get_int("snapc_stage_admission_tokens", 0),
                bytes_per_s=params.get_float("snapc_stage_admission_Bps", 0.0),
            )
        self.admission = universe.staging_admission
        self._jobs: dict[int, _JobStaging] = {}

    @property
    def store(self) -> ChunkStore:
        """The cluster-wide chunk store on stable storage (lazy).

        All store state lives on the filesystem, so re-opening it (a
        new coordinator, a test, ``ompi-restart`` after HNP loss) sees
        the same blobs and references.
        """
        store = getattr(self, "_store", None)
        if store is None:
            store = ChunkStore(
                self.hnp.universe.cluster.stable_fs, root=self.cas_root
            )
            self._store = store
        return store

    @property
    def _kernel(self) -> "Kernel":
        return self.hnp.proc.kernel

    def _state(self, jobid: int) -> _JobStaging:
        st = self._jobs.get(jobid)
        if st is None:
            st = _JobStaging(
                jobid=jobid,
                queue=self._kernel.queue(f"snapc.stage.job{jobid}"),
                slot_event=self._kernel.event(f"snapc.stage.slot.job{jobid}"),
            )
            self._jobs[jobid] = st
        return st

    # -- backpressure --------------------------------------------------------

    def acquire_slot(self, jobid: int) -> SimGen:
        """Block until fewer than ``depth`` intervals are in flight."""
        st = self._state(jobid)
        while st.inflight >= self.depth:
            yield WaitEvent(st.slot_event)
        st.inflight += 1
        return None

    def release_slot(self, jobid: int) -> None:
        """Give a slot back without dispatching (aborted checkpoint)."""
        st = self._state(jobid)
        st.inflight = max(0, st.inflight - 1)
        self._fire_slot(st)

    def _fire_slot(self, st: _JobStaging) -> None:
        old, st.slot_event = st.slot_event, self._kernel.event(
            f"snapc.stage.slot.job{st.jobid}"
        )
        if not old.fired:
            old.fire(None)

    # -- incremental planning ------------------------------------------------

    def plan_interval(self, jobid: int) -> dict:
        """Decide full vs delta for the next interval (no state change).

        Returns ``{"kind", "base_interval", "base_chain", "compact"}``.
        """
        st = self._state(jobid)
        incremental = (
            self.every > 1
            and st.last_interval is not None
            and not st.force_full
            and st.since_full < self.every - 1
            and bool(st.chain_dirs)
        )
        if not incremental:
            return {
                "kind": chunkstore.KIND_FULL,
                "base_interval": None,
                "base_chain": [],
                "compact": False,
            }
        return {
            "kind": chunkstore.KIND_DELTA,
            "base_interval": st.last_interval,
            "base_chain": list(st.chain_dirs),
            "compact": len(st.chain_dirs) + 1 > self.max_chain,
        }

    # -- durable state -------------------------------------------------------

    def _persist_record(self, record: StagingRecord) -> None:
        """Journal *record*'s lifecycle state to the control-plane store.

        Written at dispatch (``staging``) and at every settle
        (``committed``/``failed``), so a failed-over HNP knows exactly
        which intervals were in flight and which are durable — the
        COMMITTED set in the store is the never-re-ship contract.
        """
        store = self.hnp.statestore
        if not store.enabled:
            return
        store.put(
            "staging",
            f"{record.jobid}.{record.interval}",
            {
                "jobid": record.jobid,
                "interval": record.interval,
                "path": record.ref.path,
                "kind": record.kind,
                "base_chain": list(record.base_chain),
                "compact": record.compact,
                "gather_entries": [list(e) for e in record.gather_entries],
                "cas": record.cas,
                "terminate": record.terminate,
                "state": record.state,
                "error": record.error,
                "committed_at": record.committed_at,
            },
        )

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, record: StagingRecord) -> None:
        """Hand a fanned-out interval to the background worker.

        The caller's backpressure slot transfers to the record; the
        worker releases it when the interval settles.
        """
        st = self._state(record.jobid)
        st.records[record.interval] = record
        st.last_interval = record.interval
        if record.kind == chunkstore.KIND_FULL or record.compact:
            st.since_full = 0
            st.chain_dirs = [record.ref.path]
            st.force_full = False
        else:
            st.since_full += 1
            st.chain_dirs.append(record.ref.path)
        self._persist_record(record)
        st.queue.put(record)
        if not st.worker_started:
            st.worker_started = True
            self.hnp.proc.spawn_thread(
                self._worker(st), name=f"snapc-stage-job{record.jobid}",
                daemon=True,
            )

    # -- abort (error manager) -------------------------------------------------

    def abort_job(self, jobid: int) -> None:
        """Stop staging for a failed job (called by the error manager).

        Queued (not yet started) intervals are failed immediately, and
        no interval of an aborted job is ever appended to its
        ``job.snapshots`` — recovery may already be walking that list.
        The one interval already mid-gather is allowed to settle on its
        own merits: its data predates the failure, so if the gather
        succeeds its COMMITTED metadata remains valid for an explicit
        ``ompi-restart``.
        """
        st = self._jobs.get(jobid)
        if st is None or st.aborted:
            return
        st.aborted = True
        st.force_full = True
        while True:
            ok, record = st.queue.try_get()
            if not ok:
                break
            self._abort_record(st, record)
            st.inflight = max(0, st.inflight - 1)
            self._fire_slot(st)
        # A dead job must not sit on the universe's staging capacity:
        # force-release any admission tokens its in-flight transfer
        # holds (the worker's own release then no-ops).
        self.admission.release_job(jobid)
        log.warning("job %d staging pipeline aborted", jobid)

    _ABORT_ERROR = "staging aborted: job failed"

    def _abort_record(self, st: _JobStaging, record: StagingRecord) -> None:
        record.meta.staging = {
            "state": STAGE_FAILED,
            "committed_sim_time": None,
            "error": self._ABORT_ERROR,
        }
        record.state = STAGE_FAILED
        record.error = self._ABORT_ERROR
        st.failed_dirs.add(record.ref.path)
        self._persist_record(record)
        if not record.done.fired:
            record.done.fire(record.state)
        if not self.hnp.proc.alive:
            return

        def persist() -> SimGen:
            try:
                yield from self._write_meta(record)
            except (VFSError, NetworkError):
                pass
            return None

        self.hnp.proc.spawn_thread(
            persist(),
            name=f"snapc-stage-abort-{record.jobid}.{record.interval}",
            daemon=True,
        )

    # -- lookup (restart / tools) ----------------------------------------------

    def record_for(self, jobid: int, interval: int) -> StagingRecord | None:
        st = self._jobs.get(jobid)
        return st.records.get(interval) if st is not None else None

    def wait_settled(self, record: StagingRecord) -> SimGen:
        """Block until *record* commits or fails; returns its state."""
        if not record.settled:
            yield WaitEvent(record.done)
        return record.state

    def wait_committed(self, record: StagingRecord) -> SimGen:
        """Block until commit; raises :class:`RestartError` on failure."""
        state = yield from self.wait_settled(record)
        if state != STAGE_COMMITTED:
            raise RestartError(
                f"snapshot {record.ref.path} never reached stable storage: "
                f"{record.error or 'staging failed'}"
            )
        return record

    def _write_meta(self, record: StagingRecord) -> SimGen:
        span = self._kernel.tracer.begin(
            "snapc.meta", cat="snapc", jobid=record.jobid,
            interval=record.interval,
        )
        yield from write_global_meta(
            self.hnp.universe.cluster.stable_fs, record.ref, record.meta
        )
        span.end(state=record.meta.staging.get("state"))

    # -- the worker ------------------------------------------------------------

    def _worker(self, st: _JobStaging) -> SimGen:
        while True:
            record = yield from st.queue.get()
            try:
                yield from self._stage_one(st, record)
            finally:
                st.inflight = max(0, st.inflight - 1)
                self._fire_slot(st)

    def _stage_one(self, st: _JobStaging, record: StagingRecord) -> SimGen:
        hnp = self.hnp
        span = self._kernel.tracer.begin(
            "snapc.stage", cat="snapc", jobid=record.jobid,
            interval=record.interval, kind=record.kind,
            entries=len(record.gather_entries),
        )
        # Persist the in-flight state first so the interval is never
        # observable as stable before it is.  An injected stable-storage
        # write fault here fails the interval, not the worker thread.
        record.meta.staging = {
            "state": STAGE_STAGING,
            "committed_sim_time": None,
            "error": None,
        }
        error: str | None = None
        try:
            yield from self._write_meta(record)
        except (VFSError, NetworkError) as exc:
            error = f"staging metadata write failed: {exc}"

        if error is not None:
            pass
        elif not record.cas and any(
            d in st.failed_dirs for d in record.base_chain
        ):
            error = "a base interval of this delta failed to stage"
        else:
            # The transfer itself runs under the universe-level
            # admission gate: a token bounds concurrent stagings across
            # all jobs, and the moved bytes are charged to the shared
            # bandwidth budget.  Both are unlimited by default.
            yield from self.admission.acquire(record.jobid)
            try:
                if record.cas:
                    # A failed base interval does not doom a CAS delta:
                    # its chunks may already sit in the store (shipped
                    # by another rank, interval, or job); the
                    # negotiation decides.
                    error = yield from self._stage_cas(record)
                else:
                    error = yield from self._gather_with_retry(record)
                if error is None and record.bytes_moved:
                    yield from self.admission.throttle(record.bytes_moved)
            finally:
                self.admission.release(record.jobid)

        if error is None and record.compact:
            if record.cas:
                self._compact_by_reference(record)
            else:
                try:
                    yield from self._compact(record)
                except (VFSError, RestartError) as exc:
                    error = f"compaction failed: {exc}"

        if error is None:
            record.meta.staging = {
                "state": STAGE_COMMITTED,
                "committed_sim_time": self._kernel.now,
                "error": None,
            }
            try:
                yield from self._write_meta(record)
            except (VFSError, NetworkError) as exc:
                # The data landed but the commit record did not: the
                # interval is not observably stable, so it fails (and
                # the next checkpoint is forced full).
                error = f"commit metadata write failed: {exc}"

        if error is None:
            record.state = STAGE_COMMITTED
            record.committed_at = self._kernel.now
            job = hnp.universe.jobs.get(record.jobid)
            # HALTED jobs (checkpoint-and-terminate) still collect their
            # final commit; FAILED jobs must not — recovery may already
            # be walking job.snapshots.
            if job is not None and not st.aborted and job.state != JobState.FAILED:
                job.snapshots.append(record.ref)
            self._persist_record(record)
            log.info(
                "job %d interval %d committed to stable storage (%s, %d bytes)",
                record.jobid, record.interval, record.kind, record.bytes_moved,
            )
        else:
            record.meta.staging = {
                "state": STAGE_FAILED,
                "committed_sim_time": None,
                "error": error,
            }
            try:
                yield from self._write_meta(record)
            except (VFSError, NetworkError):
                pass  # stable storage itself is down; the record still knows
            record.state = STAGE_FAILED
            record.error = error
            st.failed_dirs.add(record.ref.path)
            st.force_full = True
            self._persist_record(record)
            log.warning(
                "job %d interval %d failed to stage: %s",
                record.jobid, record.interval, error,
            )
        span.end(ok=error is None, bytes=record.bytes_moved)
        if not record.done.fired:
            record.done.fire(record.state)
        return None

    def _gather_with_retry(self, record: StagingRecord) -> SimGen:
        """Move local snapshots to stable storage; returns error or None.

        Retries skip entries already completely staged (their
        ``metadata.json`` — the last file a tree copy writes — is on
        stable storage), so a node that dies *after* its transfer only
        costs the retry of the others.
        """
        if not record.gather_entries:
            return None
        stable = self.hnp.universe.cluster.stable_fs
        last_error: str | None = None
        for _attempt in range(self.retries + 1):
            pending = [
                e for e in record.gather_entries
                if not stable.exists(vpath.join(e[2], LOCAL_META))
            ]
            if not pending:
                return None
            try:
                moved = yield from self.hnp.filem.stage_out(self.hnp, pending)
                record.bytes_moved += int(moved or 0)
            except (VFSError, NetworkError) as exc:
                last_error = str(exc)
                continue
            missing = [
                e for e in record.gather_entries
                if not stable.exists(vpath.join(e[2], LOCAL_META))
            ]
            if not missing:
                return None
            last_error = (
                f"{len(missing)} local snapshot(s) missing after gather"
            )
        return last_error or "gather failed"

    def _compact(self, record: StagingRecord) -> SimGen:
        """Rewrite a committed-to-be delta interval as a full image.

        Runs entirely on stable storage: reconstruct each rank's image
        from its chain, write ``image.pkl`` plus a full manifest into
        the interval's own directory, and drop the chain from the
        metadata.  Restart of this interval then needs no other
        directory, bounding chain length at ``snapc_full_max_chain``.
        """
        stable = self.hnp.universe.cluster.stable_fs
        chain = [d for d in record.base_chain if d != record.ref.path]
        chain.append(record.ref.path)
        for rank in sorted(record.meta.locals):
            dirs = [vpath.join(d, f"rank{rank}") for d in chain]
            blob, manifest = yield from chunkstore.reconstruct_chain(
                stable, dirs, IMAGE_FILE
            )
            dst = record.ref.local_dir(rank)
            yield from stable.write(vpath.join(dst, IMAGE_FILE), blob)
            if manifest is not None:
                yield from chunkstore.write_full_manifest(
                    stable, dst, manifest.chunk_bytes, len(blob),
                    manifest.hashes, record.interval,
                )
        record.kind = chunkstore.KIND_FULL
        record.meta.kind = chunkstore.KIND_FULL
        record.meta.base_interval = None
        record.meta.base_chain = []
        log.info(
            "job %d interval %d compacted to a full image (chain was %d long)",
            record.jobid, record.interval, len(chain),
        )
        return None

    # -- content-addressed staging (offer/ship) ----------------------------------

    def _compact_by_reference(self, record: StagingRecord) -> None:
        """CAS compaction: rewrite references, move no bytes.

        A CAS interval's rank manifests already list *every* chunk
        digest and the bytes live in the store, so "rewriting as a full
        image" is a pure metadata change — the chain resets without a
        single chunk being copied.
        """
        record.kind = chunkstore.KIND_FULL
        record.meta.kind = chunkstore.KIND_FULL
        record.meta.base_interval = None
        record.meta.base_chain = []
        log.info(
            "job %d interval %d compacted by reference (no bytes moved)",
            record.jobid, record.interval,
        )

    def _stage_cas(self, record: StagingRecord) -> SimGen:
        """Negotiate with the store, ship only missing chunks; returns
        an error string or None.

        The offer is the union of every rank manifest's digests; the
        store answers with what it lacks (``filem.offer`` span); each
        missing digest is assigned to exactly one provider directory
        that physically holds its bytes, so identical chunks across
        ranks ship once.  Retries re-negotiate from the store's current
        contents — chunks that landed before a failure are never
        shipped twice.  On success the interval's rank directories on
        stable storage hold only a manifest and metadata; the bytes
        live in the store, referenced per rank directory.
        """
        store = self.store
        stable = self.hnp.universe.cluster.stable_fs
        ranks = sorted(record.rank_manifests)
        entries = [
            (rank, node, src)
            for rank, (node, src, _dst) in zip(ranks, record.gather_entries)
        ]
        manifests = record.rank_manifests
        record.bytes_logical = sum(m.total_bytes for m in manifests.values())

        offer: list[str] = []
        providers: list[dict[str, int]] = []
        for rank, _node, _src in entries:
            manifest = manifests[rank]
            offer.extend(manifest.hashes)
            lookup: dict[str, int] = {}
            for index in manifest.present:
                lookup.setdefault(manifest.hashes[index], index)
            providers.append(lookup)

        span = self._kernel.tracer.begin(
            "filem.offer", cat="filem", jobid=record.jobid,
            interval=record.interval, chunks_offered=len(dict.fromkeys(offer)),
        )
        yield Delay(stable.op_latency_s)
        first_missing = store.missing(offer)
        span.end(chunks_missing=len(first_missing))

        last_error: str | None = None
        for _attempt in range(self.retries + 1):
            yield Delay(stable.op_latency_s)
            missing = store.missing(offer)
            if not missing:
                last_error = None
                break
            ship_by: dict[int, list[int]] = {}
            unsourced = 0
            for digest in missing:
                for pos, lookup in enumerate(providers):
                    if digest in lookup:
                        ship_by.setdefault(pos, []).append(lookup[digest])
                        break
                else:
                    unsourced += 1
            if unsourced:
                # A delta's clean chunks have no local bytes; they must
                # already be in the store from the base interval.  If
                # they are not, no amount of retrying helps.
                return (
                    f"{unsourced} chunk(s) absent from the store with no "
                    "local source"
                )
            ship_entries = [
                (entries[pos][1], entries[pos][2], manifests[entries[pos][0]],
                 sorted(indices))
                for pos, indices in sorted(ship_by.items())
            ]
            try:
                moved = yield from self.hnp.filem.ship_chunks(
                    self.hnp, store, ship_entries
                )
                record.bytes_moved += int(moved or 0)
            except (VFSError, NetworkError, SnapshotError) as exc:
                last_error = str(exc)
                continue
        still_missing = store.missing(offer)
        if still_missing:
            return last_error or (
                f"{len(still_missing)} chunk(s) missing after ship"
            )

        # Commit: per-rank manifest + metadata on stable storage, chunk
        # references registered against the rank directory.
        for rank, node, _src in entries:
            manifest = manifests[rank]
            dst = record.ref.local_dir(rank)
            stable.mkdir(dst)
            cas_manifest = chunkstore.ChunkManifest(
                kind=chunkstore.KIND_FULL,
                chunk_bytes=manifest.chunk_bytes,
                total_bytes=manifest.total_bytes,
                hashes=list(manifest.hashes),
                # No chunk bytes live in this directory; restart
                # fetches them from the store.
                present=[],
                base_interval=None,
                interval=record.interval,
            )
            yield from chunkstore.write_manifest(stable, dst, cas_manifest)
            info = record.meta.locals.get(rank, {})
            local_meta = LocalSnapshotMeta(
                rank=rank,
                jobid=record.jobid,
                crs_component=info.get("crs", "simcr"),
                origin_node=info.get("node", node),
                os_tag=info.get("os_tag", ""),
                interval=record.interval,
                sim_time=record.meta.sim_time,
                portable=bool(info.get("portable", True)),
                kind=chunkstore.KIND_FULL,
                chunk_bytes=manifest.chunk_bytes,
                total_bytes=manifest.total_bytes,
                chunk_hashes=list(manifest.hashes),
                present_chunks=[],
            )
            yield from write_local_meta(
                stable, LocalSnapshotRef(stable.name, dst), local_meta
            )
            yield from store.add_refs(dst, manifest.hashes)
        # Local staging is no longer needed (kept until now so a failed
        # ship could retry from the same sources).
        try:
            yield from self.hnp.filem.remove(
                self.hnp, [(node, src) for _rank, node, src in entries]
            )
        except (VFSError, NetworkError):
            pass
        return None

    # -- HNP failover rehydration -------------------------------------------------

    def rehydrate(self, table: dict) -> SimGen:
        """Rebuild the staging pipeline from the durable store.

        Returns ``(restaged, lost, adopted)``: in-flight STAGING
        intervals re-dispatched through the normal worker, STAGING
        intervals that could not be rebuilt (source node gone, local
        snapshots unreadable — failed durably, never silently dropped),
        and settled records adopted as bookkeeping.  COMMITTED
        intervals are **never re-shipped**: adoption only reinstates
        the record and the ``job.snapshots`` entry; the bytes already
        on stable storage are the source of truth.  Re-dispatch itself
        is idempotent — the gather skips entries whose ``metadata.json``
        already landed, and CAS staging re-negotiates against the
        store's current contents — so an interval half-staged by the
        dead HNP finishes instead of doubling.
        """
        restaged = lost = adopted = 0
        records = sorted(
            table.values(),
            key=lambda v: (int(v["jobid"]), int(v["interval"])),
        )
        for value in records:
            jobid = int(value["jobid"])
            interval = int(value["interval"])
            st = self._state(jobid)
            # Delta-chain planning state died with the old HNP; the
            # next checkpoint of every rehydrated job is forced full.
            st.force_full = True
            if st.last_interval is None or interval > st.last_interval:
                st.last_interval = interval
            job = self.hnp.universe.jobs.get(jobid)
            if job is not None and job.next_interval <= interval:
                job.next_interval = interval + 1
            if value.get("state") in (STAGE_COMMITTED, STAGE_FAILED):
                self._adopt_settled(st, value, job)
                adopted += 1
            else:
                ok = yield from self._restage(st, value)
                if ok:
                    restaged += 1
                else:
                    lost += 1
        return restaged, lost, adopted

    def _stub_meta(self, jobid: int, interval: int) -> GlobalSnapshotMeta:
        """Placeholder metadata for records whose real file is elsewhere.

        Adopted/failed records need a meta object structurally, but the
        on-disk ``metadata.json`` written by the previous incarnation
        stays authoritative — the stub is never written over it.
        """
        return GlobalSnapshotMeta(
            jobid=jobid, interval=interval, n_procs=0,
            sim_time=0.0, app_name="",
        )

    def _adopt_settled(
        self, st: _JobStaging, value: dict, job: "Job | None"
    ) -> None:
        """Reinstate a COMMITTED/FAILED record without touching bytes."""
        interval = int(value["interval"])
        ref = GlobalSnapshotRef(value["path"])
        done = self._kernel.event(f"snapc.commit.job{st.jobid}.{interval}")
        record = StagingRecord(
            jobid=st.jobid,
            interval=interval,
            ref=ref,
            meta=self._stub_meta(st.jobid, interval),
            kind=value.get("kind", "full"),
            base_chain=list(value.get("base_chain", [])),
            compact=bool(value.get("compact", False)),
            gather_entries=[],
            terminate=bool(value.get("terminate", False)),
            done=done,
            enqueued_at=self._kernel.now,
            cas=bool(value.get("cas", False)),
            state=value["state"],
            error=value.get("error"),
            committed_at=value.get("committed_at"),
        )
        done.fire(record.state)
        st.records[interval] = record
        if record.state == STAGE_FAILED:
            st.failed_dirs.add(ref.path)
        elif job is not None and all(
            s.path != ref.path for s in job.snapshots
        ):
            # Records arrive in interval order, so the newest committed
            # interval lands last — exactly what restart picks.
            job.snapshots.append(ref)

    def _restage(self, st: _JobStaging, value: dict) -> SimGen:
        """Re-dispatch one in-flight interval; True if it re-entered
        the pipeline, False if it had to be failed durably."""
        interval = int(value["interval"])
        ref = GlobalSnapshotRef(value["path"])
        stable = self.hnp.universe.cluster.stable_fs
        try:
            meta = yield from read_global_meta(stable, ref)
        except (SnapshotError, VFSError) as exc:
            yield from self._fail_restage(
                st, value, f"global metadata lost across failover: {exc}"
            )
            return False
        record = StagingRecord(
            jobid=st.jobid,
            interval=interval,
            ref=ref,
            meta=meta,
            kind=value.get("kind", meta.kind),
            base_chain=list(value.get("base_chain", [])),
            compact=bool(value.get("compact", False)),
            gather_entries=[
                tuple(e) for e in value.get("gather_entries", [])
            ],
            terminate=bool(value.get("terminate", False)),
            done=self._kernel.event(
                f"snapc.commit.job{st.jobid}.{interval}"
            ),
            enqueued_at=self._kernel.now,
            cas=bool(value.get("cas", False)),
        )
        if record.cas:
            error = yield from self._rebuild_manifests(record, meta)
            if error is not None:
                yield from self._fail_restage(st, value, error, meta=meta)
                return False
        yield from self.acquire_slot(st.jobid)
        self.dispatch(record)
        log.info(
            "job %d interval %d re-dispatched after HNP failover",
            st.jobid, interval,
        )
        return True

    def _fail_restage(
        self,
        st: _JobStaging,
        value: dict,
        error: str,
        meta: GlobalSnapshotMeta | None = None,
    ) -> SimGen:
        """Fail an unrecoverable in-flight interval, durably.

        Writes ``staging.state = failed`` into the interval's global
        metadata so an explicit ``ompi-restart`` never picks it up — a
        stub is written only when the real metadata was unreadable
        (readable metadata from the previous incarnation is updated,
        never clobbered with an empty stub).
        """
        interval = int(value["interval"])
        ref = GlobalSnapshotRef(value["path"])
        if meta is None:
            meta = self._stub_meta(st.jobid, interval)
        meta.staging = {
            "state": STAGE_FAILED,
            "committed_sim_time": None,
            "error": error,
        }
        done = self._kernel.event(f"snapc.commit.job{st.jobid}.{interval}")
        record = StagingRecord(
            jobid=st.jobid,
            interval=interval,
            ref=ref,
            meta=meta,
            kind=value.get("kind", "full"),
            base_chain=list(value.get("base_chain", [])),
            compact=bool(value.get("compact", False)),
            gather_entries=[],
            terminate=bool(value.get("terminate", False)),
            done=done,
            enqueued_at=self._kernel.now,
            cas=bool(value.get("cas", False)),
            state=STAGE_FAILED,
            error=error,
        )
        done.fire(record.state)
        st.records[interval] = record
        st.failed_dirs.add(ref.path)
        st.force_full = True
        self._persist_record(record)
        try:
            yield from self._write_meta(record)
        except (VFSError, NetworkError):
            pass
        log.warning(
            "job %d interval %d lost across HNP failover: %s",
            st.jobid, interval, error,
        )
        return None

    def _rebuild_manifests(
        self, record: StagingRecord, meta: GlobalSnapshotMeta
    ) -> SimGen:
        """Recover a CAS interval's rank manifests from the source
        nodes' local snapshot metadata; returns an error or None.

        The capture-side manifests lived only in the dead HNP's heap,
        but each rank's local ``metadata.json`` records the same chunk
        geometry (digests, chunk size, present set), so the ship
        negotiation can restart from the nodes that still hold bytes.
        """
        ranks = sorted(meta.locals)
        if len(ranks) != len(record.gather_entries):
            return (
                f"persisted record lists {len(record.gather_entries)} "
                f"gather entries for {len(ranks)} ranks"
            )
        for rank, (node_name, src, _dst) in zip(
            ranks, record.gather_entries
        ):
            try:
                node = self.hnp.universe.cluster.node(node_name)
            except KeyError:
                return f"source node {node_name} unknown"
            if not node.up or node.local_fs is None:
                return f"source node {node_name} is down"
            try:
                local = yield from read_local_meta(
                    node.local_fs,
                    LocalSnapshotRef(node.local_fs.name, src),
                )
            except (SnapshotError, VFSError) as exc:
                return f"local snapshot on {node_name} unreadable: {exc}"
            record.rank_manifests[rank] = chunkstore.ChunkManifest(
                kind=local.kind,
                chunk_bytes=local.chunk_bytes,
                total_bytes=local.total_bytes,
                hashes=list(local.chunk_hashes),
                present=list(local.present_chunks),
                base_interval=local.base_interval,
                interval=local.interval,
            )
        return None

    # -- retirement / garbage collection -----------------------------------------

    def purge_interval(
        self, ref: GlobalSnapshotRef, meta: GlobalSnapshotMeta
    ) -> SimGen:
        """Retire one CAS-backed interval from stable storage.

        Releases every rank directory's chunk references, removes the
        global directory, and garbage-collects blobs nothing references
        any more — other intervals and jobs keep the chunks they still
        share (the dedup contract).  Returns ``(blobs_removed,
        bytes_freed)``.
        """
        stable = self.hnp.universe.cluster.stable_fs
        for rank in sorted(meta.locals):
            yield from self.store.release(ref.local_dir(rank))
        yield from stable.remove_tree(ref.path)
        removed, freed = yield from self.store.gc()
        log.info(
            "purged %s: %d blob(s), %d bytes reclaimed", ref.path, removed, freed
        )
        return removed, freed

    def job_records(self, jobid: int) -> list[StagingRecord]:
        """All staging records of *jobid*, in interval order."""
        st = self._jobs.get(jobid)
        if st is None:
            return []
        return [st.records[i] for i in sorted(st.records)]
