"""Universe-level admission control for checkpoint staging traffic.

Multi-job universes used to give every job a private staging pipeline:
each job's FIFO worker respected only its own ``snapc_full_stage_depth``,
so ten jobs could aggregate ten intervals at once as if stable storage
scaled with the job count (and ``filem_rsh_max_concurrent`` bounds
transfers *within* one FILEM call, not across jobs).  The
:class:`StagingAdmission` gate restores the shared-medium reality:

* a token bucket bounds how many staging transfers may touch stable
  storage concurrently across **all** jobs of the universe
  (``snapc_stage_admission_tokens``; 0 = unlimited, the default), and
* an aggregate bytes/sec budget (``snapc_stage_admission_Bps``; 0 =
  unlimited) serializes the bytes themselves, so a burst of checkpoints
  from one job back-pressures every other job's drain exactly the way
  a shared RAID head does.

Waiters are woken strictly FIFO — a freed token is handed directly to
the oldest queued transfer, never returned to the pool while anyone
waits, so a chatty job cannot starve a quiet one.  A job that dies with
tokens held has them force-released (:meth:`release_job`, called from
the staging coordinator's ``abort_job``), so a crashed job cannot leak
the universe's staging capacity; the holder's own later ``release``
then becomes a no-op.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.simenv.kernel import Delay, SimGen, WaitEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel, SimEvent


class StagingAdmission:
    """Token-bucket + shared-bandwidth gate over staging transfers."""

    def __init__(
        self, kernel: "Kernel", tokens: int = 0, bytes_per_s: float = 0.0
    ):
        self.kernel = kernel
        #: concurrent-transfer budget (0 = unlimited)
        self.tokens = max(0, int(tokens))
        #: aggregate staging bandwidth in bytes/sec (0 = unlimited)
        self.bytes_per_s = max(0.0, float(bytes_per_s))
        self._available = self.tokens
        #: tokens currently held, per jobid
        self._held: dict[int, int] = {}
        #: FIFO of ``(event, jobid)`` waiting for a token
        self._waiters: deque[tuple["SimEvent", int]] = deque()
        #: sim time at which the shared byte budget is next free
        self._next_free = 0.0
        # counters (meta-reports, tests)
        self.admitted = 0
        self.queued = 0
        self.throttled_s = 0.0

    @property
    def unlimited(self) -> bool:
        return self.tokens <= 0

    def held_by(self, jobid: int) -> int:
        return self._held.get(jobid, 0)

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    # -- token bucket --------------------------------------------------------

    def acquire(self, jobid: int) -> SimGen:
        """Block until a transfer token is granted to *jobid*.

        Immediate when unlimited or a token is free with nobody queued
        (no kernel event is posted, so the default configuration leaves
        event traces byte-identical).
        """
        if self.unlimited:
            return None
        if self._available > 0 and not self._waiters:
            self._available -= 1
            self._held[jobid] = self._held.get(jobid, 0) + 1
            self.admitted += 1
            return None
        event = self.kernel.event(f"snapc.admission.job{jobid}")
        self._waiters.append((event, jobid))
        self.queued += 1
        span = self.kernel.tracer.begin(
            "snapc.admission", cat="snapc", jobid=jobid
        )
        t0 = self.kernel.now
        yield WaitEvent(event)
        span.end(waited_s=self.kernel.now - t0)
        self.admitted += 1
        return None

    def release(self, jobid: int) -> None:
        """Return *jobid*'s token; hand it straight to the oldest waiter.

        A no-op when the job holds nothing — either admission is
        unlimited, or :meth:`release_job` already force-released after
        the job died (the double-release guard).
        """
        held = self._held.get(jobid, 0)
        if held <= 0:
            return
        if held == 1:
            del self._held[jobid]
        else:
            self._held[jobid] = held - 1
        self._grant_next()

    def _grant_next(self) -> None:
        if self._waiters:
            event, next_job = self._waiters.popleft()
            # Direct handoff: the token never touches the pool, so FIFO
            # order cannot be jumped by a fresh acquire at the same time.
            self._held[next_job] = self._held.get(next_job, 0) + 1
            if not event.fired:
                event.fire(None)
        else:
            self._available = min(self.tokens, self._available + 1)

    def release_job(self, jobid: int) -> int:
        """Free every token *jobid* holds (job death); returns the count.

        Queued waiters of the dead job are left queued: they are granted
        in turn and their staging then fails fast against the aborted
        pipeline, releasing the token again — simpler than surgically
        unlinking them, and the FIFO stays intact.
        """
        freed = self._held.pop(jobid, 0)
        for _ in range(freed):
            self._grant_next()
        return freed

    def holders(self) -> list[int]:
        """Jobids currently holding tokens (diagnostics, failover)."""
        return sorted(j for j, n in self._held.items() if n > 0)

    def reclaim_all(self) -> int:
        """HNP failover: return every held token to the pool.

        Every holder and every queued waiter was a thread of the dead
        HNP process, so unlike :meth:`release_job` the freed tokens
        must *not* be handed to waiters — those threads will never run
        again, and a direct handoff would park the capacity on a corpse
        forever.  Clears the holder table and the waiter FIFO and
        refills the pool; returns how many tokens were reclaimed.
        """
        reclaimed = sum(self._held.values())
        self._held.clear()
        self._waiters.clear()
        self._available = self.tokens
        return reclaimed

    # -- shared byte budget --------------------------------------------------

    def throttle(self, nbytes: int) -> SimGen:
        """Charge *nbytes* against the universe-wide staging bandwidth.

        The budget is a serializer: each transfer reserves the next
        free slice of the shared pipe and delays until its slice ends,
        so concurrent stagings pay for each other's bytes.  Immediate
        (no event) when unlimited.
        """
        if self.bytes_per_s <= 0.0 or nbytes <= 0:
            return None
        now = self.kernel.now
        start = max(now, self._next_free)
        self._next_free = start + nbytes / self.bytes_per_s
        wait = self._next_free - now
        if wait > 0.0:
            self.throttled_s += wait
            yield Delay(wait)
        return None
