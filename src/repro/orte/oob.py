"""OOB/RML — the out-of-band control plane.

Open MPI's runtime messages (launch commands, checkpoint requests,
snapshot progress reports) travel out-of-band over TCP, not over the
MPI data path.  Here every runtime-visible process binds one endpoint
on the Ethernet fabric; the RML (routing message layer) multiplexes
*tags* over it and offers blocking ``send``/``recv`` plus a
correlation-id RPC helper.

Message payloads are ordinary picklable dicts; transfer cost is the
pickled size over the Ethernet model, so control-plane chatter has a
real (small) price in the experiments.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any

from repro.netsim.transport import Endpoint
from repro.simenv.kernel import Queue, SimGen
from repro.util.errors import NetworkError
from repro.util.ids import ProcessName
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.universe import Universe
    from repro.simenv.process import SimProcess

log = get_logger("orte.rml")

# Well-known RML tags ---------------------------------------------------------

TAG_LAUNCH = "plm.launch"
TAG_LAUNCH_ACK = "plm.launch_ack"
TAG_INIT_READY = "job.init_ready"
TAG_INIT_GO = "job.init_go"
TAG_PROC_EXIT = "job.proc_exit"
TAG_FINALIZE = "job.finalize"

TAG_CKPT_REQUEST = "snapc.request"        # tool/app -> HNP (global coordinator)
TAG_CKPT_REPLY = "snapc.reply"            # HNP -> tool/app
TAG_CKPT_READY = "snapc.ready"            # app -> HNP: checkpointable (un)registration
TAG_SNAPC_LOCAL = "snapc.local"           # HNP -> orted (local coordinators)
TAG_SNAPC_LOCAL_DONE = "snapc.local_done" # orted -> HNP
TAG_CKPT_DO = "snapc.app"                 # orted -> app coordinator
TAG_CKPT_DONE = "snapc.app_done"          # app coordinator -> orted
TAG_CKPT_TERM_ACK = "snapc.term_ack"      # orted -> app: safe to exit
TAG_CKPT_ABORT = "snapc.abort"            # HNP -> app: abandon coordination

TAG_RESTART_REQUEST = "snapc.restart"     # tool -> HNP
TAG_RESTART_REPLY = "snapc.restart_reply" # HNP -> tool
TAG_MIGRATE_REQUEST = "snapc.migrate"     # tool -> HNP
TAG_MIGRATE_REPLY = "snapc.migrate_reply" # HNP -> tool

TAG_CRCP_BOOKMARK = "crcp.bookmark"       # app <-> app: bookmark exchange
TAG_MODEX = "grpcomm.modex"               # endpoint/business-card exchange

TAG_PS_REQUEST = "tool.ps"                # ompi-ps
TAG_PS_REPLY = "tool.ps_reply"

TAG_HNP_HEARTBEAT = "orte.hnp_heartbeat"  # orted -> HNP: liveness probe


def payload_nbytes(payload: Any) -> int:
    """Wire size estimate of a control message."""
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 256


class RML:
    """Per-process routing message layer endpoint."""

    def __init__(self, universe: "Universe", proc: "SimProcess"):
        self.universe = universe
        self.proc = proc
        self.fabric = universe.cluster.eth
        port = f"oob.{proc.name.jobid}.{proc.name.vpid}.{proc.pid}"
        self.ep: Endpoint = self.fabric.bind(proc.node.name, port)
        self._queues: dict[str, Queue] = {}
        self._rpc_waiters: dict[int, object] = {}
        self._closed = False
        self._pump = proc.spawn_thread(self._pump_loop(), name="rml-pump", daemon=True)
        proc.register_service("rml", self)

    # -- internals ------------------------------------------------------------

    def _queue(self, tag: str) -> Queue:
        queue = self._queues.get(tag)
        if queue is None:
            queue = self.proc.kernel.queue(f"rml.{self.proc.label}.{tag}")
            self._queues[tag] = queue
        return queue

    def _pump_loop(self) -> SimGen:
        while True:
            dgram = yield from self.fabric.recv(self.ep)
            tag = dgram.meta.get("tag", "?")
            payload = dgram.payload
            # RPC replies are routed straight to their waiter so that
            # concurrent RPCs on the same reply tag cannot consume each
            # other's replies.
            if isinstance(payload, dict) and "rpc_id" in payload:
                waiter = self._rpc_waiters.pop(payload["rpc_id"], None)
                if waiter is not None:
                    waiter.fire((dgram.meta.get("from"), payload))
                    continue
            self._queue(tag).put((dgram.meta.get("from"), payload))

    # -- API -----------------------------------------------------------------

    def send(self, dst: ProcessName, tag: str, payload: Any) -> SimGen:
        """Blocking send of one control message."""
        if self._closed:
            raise NetworkError(f"{self.proc.label}: RML closed")
        target = self.universe.lookup_rml(dst)
        if target is None:
            raise NetworkError(f"{self.proc.label}: no route to {dst}")
        yield from self.fabric.send(
            self.ep,
            target.ep,
            payload,
            payload_nbytes(payload),
            meta={"tag": tag, "from": self.proc.name},
        )
        return None

    def recv(self, tag: str) -> SimGen:
        """Blocking receive; returns ``(sender_name, payload)``."""
        pair = yield from self._queue(tag).get()
        return pair

    def try_recv(self, tag: str) -> tuple[bool, Any]:
        return self._queue(tag).try_get()

    def rpc(self, dst: ProcessName, tag: str, payload: dict, reply_tag: str) -> SimGen:
        """Request/reply with correlation ids.

        The callee must echo ``rpc_id`` in its reply payload dict.
        """
        from repro.simenv.kernel import WaitEvent

        # kernel-scoped: universe-unique (the pump routes any payload
        # carrying a known rpc_id to its waiter) yet deterministic
        # across universes in one session
        rpc_id = self.proc.kernel.next_id("rml.rpc")
        request = dict(payload)
        request["rpc_id"] = rpc_id
        event = self.proc.kernel.event(f"rpc-{rpc_id}")
        self._rpc_waiters[rpc_id] = event
        try:
            yield from self.send(dst, tag, request)
            sender, reply = yield WaitEvent(event)
        finally:
            self._rpc_waiters.pop(rpc_id, None)
        return sender, reply

    def reply_to(self, request_payload: dict, reply_payload: dict) -> dict:
        """Build a reply echoing the request's correlation id."""
        out = dict(reply_payload)
        if "rpc_id" in request_payload:
            out["rpc_id"] = request_payload["rpc_id"]
        return out

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.fabric.unbind(self.ep)
            self._pump.kill()
