"""CRCP — Checkpoint/Restart Coordination Protocol framework.

Paper section 6.3: each component implements one distributed
coordination protocol; components see every message through a wrapper
PML, so researchers can swap protocols at run time with everything else
constant.  Shipped components:

* ``coord`` — the LAM/MPI-like coordinated bookmark-exchange protocol
  (operating on whole messages, the paper's refinement);
* ``none`` — a passthrough that interposes but does nothing, used to
  measure the interposition overhead itself (the paper's NetPIPE
  experiment).
"""

from repro.ompi.crcp.base import CRCPComponent, register_crcp_components
from repro.ompi.crcp.coord import CoordCRCP
from repro.ompi.crcp.none_crcp import NoneCRCP
from repro.ompi.crcp.wrapper import CRCPWrapperPML

__all__ = [
    "CRCPComponent",
    "register_crcp_components",
    "CoordCRCP",
    "NoneCRCP",
    "CRCPWrapperPML",
]
