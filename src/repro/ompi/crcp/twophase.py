"""``twophase`` — an alternative coordination protocol.

The point of the CRCP framework (paper §6.3) is that researchers can
drop in a different coordination technique and compare it against
``coord`` with everything else constant.  This component is that
demonstration: instead of the LAM/MPI-like *all-to-all bookmark
exchange* (O(n²) control messages, one round), it runs *centralized
quiescence detection* — world rank 0 aggregates global counters over
O(n) control messages per round, repeating until the channels are
provably empty:

1. **Gate** new sends (same as ``coord``).
2. Each process quiesces its own in-flight sends, enters drain mode
   (forced CTS for unmatched rendezvous), and reports its cumulative
   ``(sent_total, recvd_total)`` to the root.
3. The root declares quiescence when ``Σ sent == Σ recvd`` for two
   consecutive rounds with no count movement, else orders another
   round.

Trade-off vs ``coord``: fewer control messages per round on large jobs,
but at least two aggregation rounds of latency, and the root is a
serialization point.  The E4/E8 benchmarks can put numbers on that —
with one ``--mca crcp twophase`` flag and nothing else changed.
"""

from __future__ import annotations

from repro.mca.component import component_of
from repro.ompi.crcp.base import CRCPComponent
from repro.simenv.kernel import Delay, SimEvent, SimGen, WaitEvent
from repro.util.errors import CheckpointError
from repro.util.ids import ProcessName
from repro.util.logging import get_logger

log = get_logger("ompi.crcp.twophase")

TAG_ROUND_REPORT = "crcp.tp.report"   # member -> root: (sent, recvd)
TAG_ROUND_VERDICT = "crcp.tp.verdict" # root -> member: {"done": bool}


@component_of("crcp", "twophase", priority=5)
class TwoPhaseCRCP(CRCPComponent):
    def setup(self, ompi) -> None:
        super().setup(ompi)
        self.sent_count: dict[int, int] = {}
        self.recvd_count: dict[int, int] = {}
        self.gate_active = False
        self.aborted = False
        self._gate_event: SimEvent | None = None
        #: coordination attempt number (see coord.py on epoch tagging)
        self._epoch = 0
        #: current coordination phase, ``None`` when idle — one of
        #: ``"quiesce"`` (local quiesce within a round) or ``"round"``
        #: (reporting/aggregating).  Observability surface for tests.
        self.phase: str | None = None
        self._phase_span = None
        self._coord_span = None
        self.stats = {"coordinations": 0, "rounds": 0, "aborts": 0}

    # -- hot-path hooks (identical surface to coord) ------------------------

    def gate_wait(self) -> SimGen:
        while self.gate_active:
            if self._gate_event is None:
                self._gate_event = self.ompi.kernel.event("crcp-tp-gate")
            yield WaitEvent(self._gate_event)
        return None

    def note_send(self, dst_world: int) -> None:
        self.sent_count[dst_world] = self.sent_count.get(dst_world, 0) + 1

    def after_send(self, dst_world: int) -> None:
        pass

    def before_recv_post(self, src_world: int) -> None:
        pass

    def on_delivered(self, src_world: int) -> None:
        self.recvd_count[src_world] = self.recvd_count.get(src_world, 0) + 1

    # -- coordination -----------------------------------------------------------

    def _totals(self) -> tuple[int, int]:
        return sum(self.sent_count.values()), sum(self.recvd_count.values())

    def _enter_phase(self, name: str) -> None:
        tracer = self.ompi.kernel.tracer
        if self._phase_span is not None:
            self._phase_span.end()
        self.phase = name
        self._phase_span = tracer.begin(
            f"crcp.{name}",
            cat="crcp",
            rank=self.ompi.proc.name.vpid,
            epoch=self._epoch,
        )

    def _leave_phases(self, aborted: bool = False) -> None:
        if self._phase_span is not None:
            self._phase_span.end(aborted=aborted)
            self._phase_span = None
        if self._coord_span is not None:
            self._coord_span.end(aborted=aborted)
            self._coord_span = None
        self.phase = None

    def coordinate(self) -> SimGen:
        ompi = self.ompi
        self.stats["coordinations"] += 1
        self._epoch += 1
        self.gate_active = True
        self.aborted = False
        comm = ompi.comm_world
        if comm.size == 1:
            yield from ompi.pml_base.quiesce_sends()
            return None

        rml = ompi.rml
        jobid = ompi.proc.name.jobid
        root = ProcessName(jobid, comm.world_rank(0))
        i_am_root = comm.rank == 0
        self._coord_span = ompi.kernel.tracer.begin(
            "crcp.coordinate",
            cat="crcp",
            rank=ompi.proc.name.vpid,
            proto=self.name,
            epoch=self._epoch,
        )
        # Flush stragglers from a previously aborted coordination so a
        # stale report/verdict cannot pollute this one.  (In-flight
        # stragglers that land *after* this flush are rejected by the
        # epoch tag below.)
        for tag in (TAG_ROUND_REPORT, TAG_ROUND_VERDICT):
            while rml.try_recv(tag)[0]:
                pass
        pml = ompi.pml_base
        pml.enter_drain()
        try:
            while True:
                self.stats["rounds"] += 1
                # Local phase: let in-flight sends finish, let drain
                # progress settle briefly, then report totals.
                self._enter_phase("quiesce")
                yield from pml.quiesce_sends()
                yield Delay(2 * ompi.cluster.eth.model.latency_s)
                if self.aborted:
                    self._abort_cleanup()
                sent, recvd = self._totals()
                self._enter_phase("round")
                if i_am_root:
                    done = yield from self._root_round(comm, sent, recvd)
                else:
                    yield from rml.send(
                        root,
                        TAG_ROUND_REPORT,
                        {
                            "from": comm.rank,
                            "sent": sent,
                            "recvd": recvd,
                            "epoch": self._epoch,
                        },
                    )
                    while True:
                        _, verdict = yield from rml.recv(TAG_ROUND_VERDICT)
                        if self.aborted:
                            self._abort_cleanup()
                        if verdict.get("epoch", self._epoch) != self._epoch:
                            continue  # straggler from an aborted attempt
                        if verdict.get("abort"):
                            # The root saw a veto and told us to stand
                            # down even though nothing vetoed locally.
                            self._abort_cleanup()
                        break
                    done = bool(verdict.get("done"))
                if done:
                    break
        finally:
            pml.leave_drain()
            self._leave_phases(aborted=self.aborted)
        self._enter_phase("quiesce")
        try:
            yield from pml.quiesce_sends()
        finally:
            self._leave_phases(aborted=self.aborted)
        log.debug("%s quiesced after %d rounds", ompi.proc.label, self.stats["rounds"])
        return None

    def _root_round(self, comm, my_sent: int, my_recvd: int) -> SimGen:
        """Aggregate one round at the root; returns the verdict."""
        rml = self.ompi.rml
        jobid = self.ompi.proc.name.jobid
        totals = {"sent": my_sent, "recvd": my_recvd}
        seen = 0
        while seen < comm.size - 1:
            _, report = yield from rml.recv(TAG_ROUND_REPORT)
            if self.aborted:
                break
            if report.get("from", -1) < 0:
                continue  # abort poke
            if report.get("epoch", self._epoch) != self._epoch:
                continue  # straggler report from an aborted attempt
            totals["sent"] += report["sent"]
            totals["recvd"] += report["recvd"]
            seen += 1
        prev = getattr(self, "_prev_totals", None)
        settled = totals["sent"] == totals["recvd"] and prev == totals
        self._prev_totals = dict(totals)
        verdict = {"done": settled, "abort": self.aborted, "epoch": self._epoch}
        for peer in comm.peer_ranks():
            yield from rml.send(
                ProcessName(jobid, comm.world_rank(peer)),
                TAG_ROUND_VERDICT,
                dict(verdict),
            )
        if self.aborted:
            self._abort_cleanup()
        if settled:
            self._prev_totals = None
        return settled

    def _abort_cleanup(self) -> None:
        """Stand down from an aborted attempt.

        Lifts the gate before raising — ``entry_point`` skips the
        roll-forward INC(CONTINUE) when the CHECKPOINT descent itself
        raised, so nobody else would unblock the application's sends.
        The drain flag is restored by ``coordinate``'s ``finally``.
        """
        self.aborted = True
        self.resume(False)
        raise CheckpointError(
            f"{self.ompi.proc.label}: twophase coordination aborted"
        )

    def resume(self, restarting: bool) -> None:
        self.gate_active = False
        if self._gate_event is not None:
            event, self._gate_event = self._gate_event, None
            if not event.fired:
                event.fire(None)

    def abort(self) -> None:
        if not self.gate_active:
            return
        self.aborted = True
        self.stats["aborts"] += 1
        self.ompi.kernel.tracer.count("crcp.aborts")
        # Poke whichever wait the coordinator is in.  Pokes not consumed
        # by this attempt are flushed (or epoch-rejected) by the next.
        self.ompi.rml._queue(TAG_ROUND_REPORT).put(
            (None, {"from": -1, "sent": 0, "recvd": 0, "epoch": self._epoch})
        )
        self.ompi.rml._queue(TAG_ROUND_VERDICT).put(
            (None, {"done": False, "abort": True, "epoch": self._epoch})
        )

    # -- image ---------------------------------------------------------------

    def capture_image_state(self, crs_name: str):
        if self.gate_active is False:
            raise CheckpointError("CRCP image captured outside coordination")
        log.debug(
            "%s: counter state into %s image", self.ompi.proc.label, crs_name
        )
        return {
            "sent": dict(self.sent_count),
            "recvd": dict(self.recvd_count),
        }

    def restore_image_state(self, state) -> None:
        self.sent_count = {int(k): v for k, v in state["sent"].items()}
        self.recvd_count = {int(k): v for k, v in state["recvd"].items()}
