"""``coord`` — LAM/MPI-like coordinated checkpoint/restart protocol.

The protocol (paper section 6.3, after [19]) makes the global snapshot
consistent by emptying every channel:

1. **Gate** — new application sends block at the wrapper's
   ``before_send`` hook (in-flight sends keep progressing).
2. **Bookmark exchange** — every process tells every peer how many
   messages it has initiated toward them (cumulative, *whole messages*
   rather than bytes — this paper's refinement over LAM/MPI).
3. **Drain** — receive until the per-peer delivered count reaches the
   peer's bookmark; unmatched rendezvous RTS fragments are CTSed so
   their payloads land in the unexpected queue ("outstanding messages
   are posted by the receiving peer").
4. **Quiesce** — wait for the process's own in-flight sends to finish
   serializing.

After this, the channels are empty: everything counted is buffered in
some process's image.  ``resume`` lifts the gate on CONTINUE/RESTART.

Bookmarks travel over the OOB control plane (RML), not the MPI data
path, so the exchange itself never perturbs the counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import component_of
from repro.ompi.crcp.base import CRCPComponent
from repro.orte.oob import TAG_CRCP_BOOKMARK
from repro.simenv.kernel import SimEvent, SimGen, WaitEvent
from repro.util.errors import CheckpointError
from repro.util.ids import ProcessName
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    pass

log = get_logger("ompi.crcp.coord")


@component_of("crcp", "coord", priority=10)
class CoordCRCP(CRCPComponent):
    def setup(self, ompi) -> None:
        super().setup(ompi)
        #: cumulative messages initiated toward each world rank
        self.sent_count: dict[int, int] = {}
        #: cumulative payloads delivered from each world rank
        self.recvd_count: dict[int, int] = {}
        self.gate_active = False
        self.aborted = False
        self._gate_event: SimEvent | None = None
        self._delivery_event: SimEvent | None = None
        #: statistics for the drain-cost experiment (E4)
        self.stats = {"coordinations": 0, "drained_msgs": 0, "aborts": 0}

    # -- hot-path hooks -----------------------------------------------------------

    def gate_wait(self) -> SimGen:
        while self.gate_active:
            if self._gate_event is None:
                self._gate_event = self.ompi.kernel.event("crcp-gate")
            yield WaitEvent(self._gate_event)
        return None

    def note_send(self, dst_world: int) -> None:
        # Called with the gate known-inactive; the increment is atomic
        # with the gate check (single-threaded kernel, no yield between).
        self.sent_count[dst_world] = self.sent_count.get(dst_world, 0) + 1

    def after_send(self, dst_world: int) -> None:
        pass

    def before_recv_post(self, src_world: int) -> None:
        pass

    def on_delivered(self, src_world: int) -> None:
        self.recvd_count[src_world] = self.recvd_count.get(src_world, 0) + 1
        if self._delivery_event is not None:
            event, self._delivery_event = self._delivery_event, None
            if not event.fired:
                event.fire(None)

    # -- coordination --------------------------------------------------------------

    def coordinate(self) -> SimGen:
        ompi = self.ompi
        self.stats["coordinations"] += 1
        self.gate_active = True
        self.aborted = False
        comm = ompi.comm_world
        me = comm.rank
        peers = comm.peer_ranks()
        if peers:
            rml = ompi.rml
            jobid = ompi.proc.name.jobid
            for peer in peers:
                world = comm.world_rank(peer)
                yield from rml.send(
                    ProcessName(jobid, world),
                    TAG_CRCP_BOOKMARK,
                    {
                        "from_world": comm.world_rank(me),
                        "sent_to_you": self.sent_count.get(world, 0),
                    },
                )
            expected: dict[int, int] = {}
            while len(expected) < len(peers):
                _, payload = yield from rml.recv(TAG_CRCP_BOOKMARK)
                if self.aborted:
                    self._abort_cleanup()
                # Poison wakeups from a stale abort carry no bookmark.
                if "from_world" in payload:
                    expected[payload["from_world"]] = payload["sent_to_you"]

            # Drain until every peer's bookmark is met.
            pml = ompi.pml_base
            pml.enter_drain()
            drained_at_start = sum(self.recvd_count.values())
            while any(
                self.recvd_count.get(world, 0) < count
                for world, count in expected.items()
            ):
                if self._delivery_event is None:
                    self._delivery_event = ompi.kernel.event("crcp-drain")
                yield WaitEvent(self._delivery_event)
                if self.aborted:
                    self._abort_cleanup()
            pml.leave_drain()
            self.stats["drained_msgs"] += (
                sum(self.recvd_count.values()) - drained_at_start
            )

        # Our own in-flight sends must be fully on the wire — and by
        # the symmetric argument, delivered — before the image is cut.
        yield from ompi.pml_base.quiesce_sends()
        if self.aborted:
            self._abort_cleanup()
        log.debug("%s coordinated (drained)", ompi.proc.label)
        return None

    def abort(self) -> None:
        """Abandon an in-flight coordination (another process vetoed).

        Safe to call from outside the coordinating thread: flags the
        abort, pokes both wait points, and lifts the gate so blocked
        application sends resume.
        """
        if not self.gate_active:
            return
        self.aborted = True
        self.stats["aborts"] += 1
        # Poke the bookmark-collection loop with a poison message.
        self.ompi.rml._queue(TAG_CRCP_BOOKMARK).put((None, {"abort": True}))
        # Poke the drain loop.
        if self._delivery_event is not None:
            event, self._delivery_event = self._delivery_event, None
            if not event.fired:
                event.fire(None)

    def _abort_cleanup(self) -> None:
        self.ompi.pml_base.leave_drain()
        self.resume(False)
        raise CheckpointError(
            f"{self.ompi.proc.label}: checkpoint coordination aborted"
        )

    def resume(self, restarting: bool) -> None:
        self.gate_active = False
        if self._gate_event is not None:
            event, self._gate_event = self._gate_event, None
            if not event.fired:
                event.fire(None)

    # -- image ------------------------------------------------------------------

    def capture_image_state(self, crs_name: str):
        if self.gate_active is False:
            raise CheckpointError("CRCP image captured outside coordination")
        return {
            "sent": dict(self.sent_count),
            "recvd": dict(self.recvd_count),
        }

    def restore_image_state(self, state) -> None:
        self.sent_count = {int(k): v for k, v in state["sent"].items()}
        self.recvd_count = {int(k): v for k, v in state["recvd"].items()}
