"""``coord`` — LAM/MPI-like coordinated checkpoint/restart protocol.

The protocol (paper section 6.3, after [19]) makes the global snapshot
consistent by emptying every channel:

1. **Gate** — new application sends block at the wrapper's
   ``before_send`` hook (in-flight sends keep progressing).
2. **Bookmark exchange** — every process tells every peer how many
   messages it has initiated toward them (cumulative, *whole messages*
   rather than bytes — this paper's refinement over LAM/MPI).
3. **Drain** — receive until the per-peer delivered count reaches the
   peer's bookmark; unmatched rendezvous RTS fragments are CTSed so
   their payloads land in the unexpected queue ("outstanding messages
   are posted by the receiving peer").
4. **Quiesce** — wait for the process's own in-flight sends to finish
   serializing.

After this, the channels are empty: everything counted is buffered in
some process's image.  ``resume`` lifts the gate on CONTINUE/RESTART.

Bookmarks travel over the OOB control plane (RML), not the MPI data
path, so the exchange itself never perturbs the counts.

**Epochs.** Coordination attempts are numbered by a local *epoch*
counter that every rank advances in lockstep (one increment per
global checkpoint attempt).  Bookmarks and abort poison both carry the
sender's epoch, so control messages that straddle an aborted attempt —
a peer's bookmark that arrived after we gave up, or our own poison that
nobody consumed — are recognized as stale and discarded instead of
corrupting the next interval's exchange.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import component_of
from repro.ompi.crcp.base import CRCPComponent
from repro.orte.oob import TAG_CRCP_BOOKMARK
from repro.simenv.kernel import SimEvent, SimGen, WaitEvent
from repro.util.errors import CheckpointError
from repro.util.ids import ProcessName
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    pass

log = get_logger("ompi.crcp.coord")


@component_of("crcp", "coord", priority=10)
class CoordCRCP(CRCPComponent):
    def setup(self, ompi) -> None:
        super().setup(ompi)
        #: cumulative messages initiated toward each world rank
        self.sent_count: dict[int, int] = {}
        #: cumulative payloads delivered from each world rank
        self.recvd_count: dict[int, int] = {}
        self.gate_active = False
        self.aborted = False
        self._gate_event: SimEvent | None = None
        self._delivery_event: SimEvent | None = None
        #: coordination attempt number; advances once per attempt on
        #: every rank, tagging bookmarks/poison so stragglers from an
        #: aborted attempt cannot pollute the next one
        self._epoch = 0
        #: True between ``pml.enter_drain()`` and ``pml.leave_drain()``
        #: so the abort path only undoes a drain it actually entered
        self._draining = False
        #: current coordination phase, ``None`` when idle — one of
        #: ``"bookmark"``, ``"drain"``, ``"quiesce"``.  Observability
        #: surface for tests and the phase-abort fault injector.
        self.phase: str | None = None
        self._phase_span = None
        self._coord_span = None
        #: statistics for the drain-cost experiment (E4)
        self.stats = {"coordinations": 0, "drained_msgs": 0, "aborts": 0}

    # -- hot-path hooks -----------------------------------------------------------

    def gate_wait(self) -> SimGen:
        while self.gate_active:
            if self._gate_event is None:
                self._gate_event = self.ompi.kernel.event("crcp-gate")
            yield WaitEvent(self._gate_event)
        return None

    def note_send(self, dst_world: int) -> None:
        # Called with the gate known-inactive; the increment is atomic
        # with the gate check (single-threaded kernel, no yield between).
        self.sent_count[dst_world] = self.sent_count.get(dst_world, 0) + 1

    def after_send(self, dst_world: int) -> None:
        pass

    def before_recv_post(self, src_world: int) -> None:
        pass

    def on_delivered(self, src_world: int) -> None:
        self.recvd_count[src_world] = self.recvd_count.get(src_world, 0) + 1
        if self._delivery_event is not None:
            event, self._delivery_event = self._delivery_event, None
            if not event.fired:
                event.fire(None)

    # -- phase bookkeeping ---------------------------------------------------------

    def _enter_phase(self, name: str) -> None:
        tracer = self.ompi.kernel.tracer
        if self._phase_span is not None:
            self._phase_span.end()
        self.phase = name
        self._phase_span = tracer.begin(
            f"crcp.{name}",
            cat="crcp",
            rank=self.ompi.proc.name.vpid,
            epoch=self._epoch,
        )

    def _leave_phases(self, aborted: bool = False) -> None:
        if self._phase_span is not None:
            self._phase_span.end(aborted=aborted)
            self._phase_span = None
        if self._coord_span is not None:
            self._coord_span.end(aborted=aborted)
            self._coord_span = None
        self.phase = None

    # -- coordination --------------------------------------------------------------

    def coordinate(self) -> SimGen:
        ompi = self.ompi
        self.stats["coordinations"] += 1
        self._epoch += 1
        self.gate_active = True
        self.aborted = False
        comm = ompi.comm_world
        me = comm.rank
        peers = comm.peer_ranks()
        self._coord_span = ompi.kernel.tracer.begin(
            "crcp.coordinate",
            cat="crcp",
            rank=ompi.proc.name.vpid,
            proto=self.name,
            epoch=self._epoch,
        )
        try:
            if peers:
                rml = ompi.rml
                jobid = ompi.proc.name.jobid
                self._enter_phase("bookmark")
                for peer in peers:
                    world = comm.world_rank(peer)
                    yield from rml.send(
                        ProcessName(jobid, world),
                        TAG_CRCP_BOOKMARK,
                        {
                            "from_world": comm.world_rank(me),
                            "sent_to_you": self.sent_count.get(world, 0),
                            "epoch": self._epoch,
                        },
                    )
                expected: dict[int, int] = {}
                while len(expected) < len(peers):
                    _, payload = yield from rml.recv(TAG_CRCP_BOOKMARK)
                    if self.aborted:
                        self._abort_cleanup()
                    if payload.get("abort"):
                        # Stale poison from a previously aborted attempt;
                        # this attempt was not asked to stop.
                        continue
                    if "from_world" not in payload:
                        continue
                    if payload.get("epoch", self._epoch) < self._epoch:
                        # A peer's bookmark from an aborted attempt that
                        # arrived after we gave up on it.  Its cumulative
                        # count is outdated — acting on it would end the
                        # drain early and lose messages from the image.
                        continue
                    expected[payload["from_world"]] = payload["sent_to_you"]

                # Drain until every peer's bookmark is met.
                pml = ompi.pml_base
                self._enter_phase("drain")
                pml.enter_drain()
                self._draining = True
                drained_at_start = sum(self.recvd_count.values())
                while any(
                    self.recvd_count.get(world, 0) < count
                    for world, count in expected.items()
                ):
                    if self._delivery_event is None:
                        self._delivery_event = ompi.kernel.event("crcp-drain")
                    yield WaitEvent(self._delivery_event)
                    if self.aborted:
                        self._abort_cleanup()
                pml.leave_drain()
                self._draining = False
                drained = sum(self.recvd_count.values()) - drained_at_start
                self.stats["drained_msgs"] += drained
                ompi.kernel.tracer.count("crcp.drained_msgs", drained)

            # Our own in-flight sends must be fully on the wire — and by
            # the symmetric argument, delivered — before the image is cut.
            self._enter_phase("quiesce")
            yield from ompi.pml_base.quiesce_sends()
            if self.aborted:
                self._abort_cleanup()
        finally:
            self._leave_phases(aborted=self.aborted)
        log.debug("%s coordinated (drained)", ompi.proc.label)
        return None

    def abort(self) -> None:
        """Abandon an in-flight coordination (another process vetoed).

        Safe to call from outside the coordinating thread: flags the
        abort and pokes both wait points (the bookmark collection loop
        via a poison message, the drain loop via the delivery event).
        The gate stays closed here — it is lifted by ``resume(False)``
        when the coordinating thread runs ``_abort_cleanup`` and, on
        the normal failure path, again by the roll-forward
        INC(CONTINUE).
        """
        if not self.gate_active:
            return
        self.aborted = True
        self.stats["aborts"] += 1
        self.ompi.kernel.tracer.count("crcp.aborts")
        # Poke the bookmark-collection loop with a poison message.  The
        # epoch tag lets anyone who finds it later tell which attempt
        # it belonged to.
        self.ompi.rml._queue(TAG_CRCP_BOOKMARK).put(
            (None, {"abort": True, "epoch": self._epoch})
        )
        # Poke the drain loop.
        if self._delivery_event is not None:
            event, self._delivery_event = self._delivery_event, None
            if not event.fired:
                event.fire(None)

    def _abort_cleanup(self) -> None:
        # Only undo a drain this attempt actually entered: an abort
        # during bookmark collection never reached enter_drain, and an
        # abort during quiesce already left it.
        if self._draining:
            self.ompi.pml_base.leave_drain()
            self._draining = False
        self._drop_stale_poison()
        self.resume(False)
        raise CheckpointError(
            f"{self.ompi.proc.label}: checkpoint coordination aborted"
        )

    def _drop_stale_poison(self) -> None:
        """Remove unconsumed abort poison from the bookmark mailbox.

        If the coordinator was past the bookmark loop when ``abort()``
        ran, the poison was never received and would otherwise leak
        into the next checkpoint interval's exchange.  Real bookmarks
        from peers are kept in order — the epoch check in the next
        ``coordinate()`` decides their fate.
        """
        queue = self.ompi.rml._queue(TAG_CRCP_BOOKMARK)
        kept = []
        while True:
            ok, item = queue.try_get()
            if not ok:
                break
            _, payload = item
            if not payload.get("abort"):
                kept.append(item)
        for item in kept:
            queue.put(item)

    def resume(self, restarting: bool) -> None:
        self.gate_active = False
        if self._gate_event is not None:
            event, self._gate_event = self._gate_event, None
            if not event.fired:
                event.fire(None)

    # -- image ------------------------------------------------------------------

    def capture_image_state(self, crs_name: str):
        if self.gate_active is False:
            raise CheckpointError("CRCP image captured outside coordination")
        log.debug(
            "%s: bookmark state into %s image", self.ompi.proc.label, crs_name
        )
        return {
            "sent": dict(self.sent_count),
            "recvd": dict(self.recvd_count),
        }

    def restore_image_state(self, state) -> None:
        self.sent_count = {int(k): v for k, v in state["sent"].items()}
        self.recvd_count = {int(k): v for k, v in state["recvd"].items()}
