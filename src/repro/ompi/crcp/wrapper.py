"""The wrapper PML (paper section 6.3).

"The wrapper PML component allows the OMPI CRCP components the
opportunity to take action before and after each message is processed
by the actual PML component."  Every public PML entry point is
interposed; the CRCP component's hooks run around the delegated call.

This wrapper *is* the source of the small-message overhead measured by
the paper's NetPIPE experiment: with ``crcp=none`` the hooks are empty,
but the extra call layers remain — exactly the "function call overhead"
the paper attributes its ~3% small-message latency delta to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.simenv.kernel import SimGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.ompi.communicator import Communicator
    from repro.ompi.crcp.base import CRCPComponent
    from repro.ompi.layer import OmpiLayer
    from repro.ompi.pml.ob1 import Ob1PML


class CRCPWrapperPML:
    """Interposes a CRCP component on a real PML."""

    name = "crcp_wrapper"

    def __init__(self, base: "Ob1PML", crcp: "CRCPComponent"):
        self.base = base
        self.crcp = crcp

    def setup(self, ompi: "OmpiLayer") -> None:
        self.base.setup(ompi)
        self.crcp.setup(ompi)
        self.base.delivered_hook = self.crcp.on_delivered
        # Entry points where the CRCP takes no per-call action are
        # bound straight through to the real PML — interposition is
        # paid only where the component actually acts, which is what
        # keeps the paper's failure-free overhead at the few-percent
        # level.  (The completion and progress paths need no hooks: the
        # protocol watches initiations and deliveries.)
        self.wait = self.base.wait
        self.test = self.base.test
        self.iprobe = self.base.iprobe
        self.handle_incoming = self.base.handle_incoming

    # -- interposed data path ---------------------------------------------------

    def isend(self, comm: "Communicator", dst: int, tag: int, payload: Any) -> SimGen:
        world = comm.world_rank(dst)
        crcp = self.crcp
        if crcp.gate_active:  # rare: a checkpoint is coordinating
            yield from crcp.gate_wait()
        crcp.note_send(world)
        req_id = yield from self.base.isend(comm, dst, tag, payload)
        crcp.after_send(world)
        return req_id

    def irecv(self, comm: "Communicator", src: int, tag: int) -> SimGen:
        world = comm.world_rank(src) if src >= 0 else src
        self.crcp.before_recv_post(world)
        req_id = yield from self.base.irecv(comm, src, tag)
        return req_id

    def wait(self, req_id: int) -> SimGen:
        result = yield from self.base.wait(req_id)
        return result

    def test(self, req_id: int):
        return self.base.test(req_id)

    def iprobe(self, comm: "Communicator", src: int, tag: int):
        return self.base.iprobe(comm, src, tag)

    def handle_incoming(self, msg) -> None:
        self.base.handle_incoming(msg)

    # -- passthrough control plane ---------------------------------------------

    def ft_event(self, state: int) -> SimGen:
        yield from self.base.ft_event(state)
        return None

    def capture_state(self) -> dict:
        return self.base.capture_state()

    def restore_state(self, state: dict) -> None:
        self.base.restore_state(state)

    def __getattr__(self, item):
        # Everything not interposed is the base PML's business
        # (eager_limit, stats, matching, ...).
        return getattr(self.base, item)
