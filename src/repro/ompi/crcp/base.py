"""CRCP framework base.

A CRCP component receives two kinds of control:

* *message hooks*, invoked by the wrapper PML around every send and on
  every payload delivery (the paper: components are "allowed to watch
  the network traffic as it moves through the system and take
  necessary actions");
* *coordination entry points*, invoked from the OMPI INC before any
  other MPI subsystem is notified (section 5.3's ordering requirement):
  ``coordinate`` at CHECKPOINT, ``resume`` at CONTINUE/RESTART.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mca.component import Component
from repro.simenv.kernel import SimGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.ompi.layer import OmpiLayer


class CRCPComponent(Component):
    """Base class of coordination-protocol components."""

    framework_name = "crcp"
    image_key = "ompi.crcp"

    def setup(self, ompi: "OmpiLayer") -> None:
        self.ompi = ompi

    # -- message hooks (hot path) ---------------------------------------------
    #
    # The hot path is split in two for the wrapper's benefit: a cheap
    # plain-function pair (``note_send``/``after_send``) invoked on
    # every message, and a blocking generator (``gate_wait``) entered
    # only when ``gate_active`` is set — so failure-free operation pays
    # function-call overhead only, like Open MPI's wrapper.

    #: True while a checkpoint gate should block new sends.
    gate_active = False

    def gate_wait(self) -> SimGen:
        """Block until the checkpoint gate lifts (rare path)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def note_send(self, dst_world: int) -> None:
        """Account an initiated send (hot path, must be cheap)."""
        raise NotImplementedError

    def after_send(self, dst_world: int) -> None:
        """Called after a send initiates."""
        raise NotImplementedError

    def before_recv_post(self, src_world: int) -> None:
        """Called when a receive is posted."""
        raise NotImplementedError

    def on_delivered(self, src_world: int) -> None:
        """Called when a payload lands in the matching engine."""
        raise NotImplementedError

    # -- coordination ------------------------------------------------------------

    def coordinate(self) -> SimGen:
        """Bring the job's channels to a consistent, empty state."""
        raise NotImplementedError
        yield  # pragma: no cover

    def resume(self, restarting: bool) -> None:
        """Lift the checkpoint gate after CONTINUE or RESTART."""
        raise NotImplementedError

    def abort(self) -> None:
        """Abandon an in-flight coordination.  Default: nothing to do."""

    # -- image ------------------------------------------------------------------

    def capture_image_state(self, crs_name: str):
        return None

    def restore_image_state(self, state) -> None:
        pass


def register_crcp_components(registry: "FrameworkRegistry") -> None:
    from repro.ompi.crcp.coord import CoordCRCP
    from repro.ompi.crcp.none_crcp import NoneCRCP
    from repro.ompi.crcp.twophase import TwoPhaseCRCP

    registry.add_component("crcp", CoordCRCP)
    registry.add_component("crcp", NoneCRCP)
    registry.add_component("crcp", TwoPhaseCRCP)
