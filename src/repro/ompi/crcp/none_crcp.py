"""``none`` — passthrough CRCP component.

All hooks are empty but still *called*, so an FT-enabled build with
``crcp=none`` pays exactly the interposition overhead and nothing else
— the configuration the paper's NetPIPE comparison measures
("passthrough components").  Checkpoints are refused: without
coordination a global snapshot would capture in-flight messages
nowhere.
"""

from __future__ import annotations

from repro.mca.component import component_of
from repro.ompi.crcp.base import CRCPComponent
from repro.ompi.pml.base import nothing
from repro.simenv.kernel import SimGen
from repro.util.errors import CheckpointError


@component_of("crcp", "none", priority=0)
class NoneCRCP(CRCPComponent):
    def gate_wait(self) -> SimGen:
        yield from nothing()
        return None

    def note_send(self, dst_world: int) -> None:
        pass

    def after_send(self, dst_world: int) -> None:
        pass

    def before_recv_post(self, src_world: int) -> None:
        pass

    def on_delivered(self, src_world: int) -> None:
        pass

    def coordinate(self) -> SimGen:
        raise CheckpointError(
            "crcp=none cannot produce a consistent global snapshot"
        )
        yield  # pragma: no cover

    def resume(self, restarting: bool) -> None:
        pass
