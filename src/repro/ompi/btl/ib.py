"""``ib`` BTL: InfiniBand transport; NOT checkpointable.

HCA/queue-pair state lives outside the process image, so this BTL must
be torn down before a checkpoint and re-established on continue/restart
— the concrete case behind the paper's statement that the PML
``ft_event`` involves "shutting down interconnect libraries that cannot
be checkpointed and reconnecting peers when restarting in new process
topologies" (section 6.3).
"""

from __future__ import annotations

from repro.mca.component import component_of
from repro.ompi.btl.base import BTLComponent


@component_of("btl", "ib", priority=50)
class IbBTL(BTLComponent):
    fabric_name = "ib"
    checkpointable = False

    def query(self, context: object | None = None) -> bool:
        if self.params.get_bool("btl_ib_disable", False):
            return False
        return super().query(context)
