"""BTL framework base."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.ft_event import FTState
from repro.mca.component import Component
from repro.netsim.transport import Endpoint
from repro.simenv.kernel import SimGen
from repro.util.errors import NetworkError, SimInterrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.ompi.layer import OmpiLayer
    from repro.ompi.pml.ob1 import Ob1PML


class BTLComponent(Component):
    """Base class of byte-transfer-layer components."""

    framework_name = "btl"
    fabric_name = ""
    #: False if endpoint state cannot survive inside a process image
    checkpointable = True

    def __init__(self, params=None):
        super().__init__(params)
        self.ompi: "OmpiLayer | None" = None
        self.pml: "Ob1PML | None" = None
        self.ep: Endpoint | None = None
        self._pump = None
        self.sent_msgs = 0
        self.sent_bytes = 0

    # -- availability ------------------------------------------------------------

    def query(self, context: object | None = None) -> bool:
        ompi = context
        if ompi is None:
            return False
        node = ompi.proc.node
        return self.fabric_name in node.nics and self.fabric_name in ompi.cluster.fabrics

    # -- lifecycle ---------------------------------------------------------------

    def setup(self, ompi: "OmpiLayer", pml: "Ob1PML") -> None:
        self.ompi = ompi
        self.pml = pml

    @property
    def fabric(self):
        assert self.ompi is not None
        return self.ompi.cluster.fabric(self.fabric_name)

    def port_name(self) -> str:
        assert self.ompi is not None
        proc = self.ompi.proc
        return f"mpi.{proc.name.jobid}.{proc.name.vpid}.{proc.pid}.{self.name}"

    def open_endpoint(self) -> str:
        """Bind the receive endpoint and start the progress pump.

        Returns the port name for the modex business card.  Reopening
        after :meth:`close_endpoint` resumes processing of any frames
        that queued while the endpoint was down (peers re-establishing
        a connection do not lose traffic — they handshake).
        """
        assert self.ompi is not None and self.pml is not None
        if self.ep is None:
            self.ep = self.fabric.bind(self.ompi.proc.node.name, self.port_name())
        if self._pump is None:
            self._pump = self.ompi.proc.spawn_thread(
                self._pump_loop(), name=f"btl-{self.name}-pump", daemon=True
            )
        return self.ep.port

    def close_endpoint(self) -> None:
        """Tear down the connection state (stop the progress pump).

        The mailbox itself persists so in-flight frames from peers that
        resumed earlier wait for the reconnect instead of vanishing.
        """
        if self._pump is not None:
            self._pump.kill()
            self._pump = None

    def teardown(self) -> None:
        """Full teardown (MPI_FINALIZE / process halt): unbind too."""
        self.close_endpoint()
        if self.ep is not None:
            self.fabric.unbind(self.ep)
            self.ep = None

    def _pump_loop(self) -> SimGen:
        ep = self.ep
        assert ep is not None
        while True:
            dgram = yield from self.fabric.recv(ep)
            try:
                self.pml.handle_incoming(dgram.payload)
            except (GeneratorExit, SimInterrupt):  # pragma: no cover
                raise
            except BaseException as exc:  # noqa: BLE001
                # A progress-engine failure corrupts the MPI library;
                # kill the process loudly rather than dropping traffic.
                self.ompi.proc.kill(exc)
                return None

    @property
    def is_connected(self) -> bool:
        return self.ep is not None and self._pump is not None

    # -- data path ---------------------------------------------------------------

    def reaches(self, my_node: str, peer_card: dict) -> bool:
        """Can this BTL carry traffic to the peer described by *card*?

        Network BTLs yield same-node peers to ``sm`` (shared memory has
        exclusivity for local traffic, as in Open MPI).
        """
        ports = peer_card.get("ports", {})
        if (
            self.name != "sm"
            and peer_card.get("node") == my_node
            and "sm" in ports
        ):
            return False
        return self.name in ports

    def send_msg(self, peer_card: dict, msg, wire_bytes: int) -> SimGen:
        if self.ep is None:
            raise NetworkError(f"BTL {self.name} endpoint is closed")
        dst = Endpoint(peer_card["node"], peer_card["ports"][self.name])
        payload = getattr(msg, "payload", None)
        if payload is not None and wire_bytes >= 4096:
            # Model the DMA/serialization work of moving bytes onto the
            # wire: large buffers are physically copied, so per-message
            # wall cost becomes payload-dominated at size (the effect
            # that amortizes fixed interposition overheads on hardware).
            copied = self._buffer_copy(payload)
            if copied is not payload:
                import dataclasses

                msg = dataclasses.replace(msg, payload=copied)
        yield from self.fabric.send(self.ep, dst, msg, wire_bytes)
        self.sent_msgs += 1
        self.sent_bytes += wire_bytes
        return None

    @staticmethod
    def _buffer_copy(payload):
        if hasattr(payload, "nbytes") and hasattr(payload, "copy"):  # ndarray
            return payload.copy()
        if isinstance(payload, (bytes, bytearray)):
            return bytes(payload)
        return payload

    # -- ft_event -----------------------------------------------------------------

    def ft_event(self, state: int) -> None:
        """Close non-checkpointable endpoints at CHECKPOINT; reconnect
        after (paper: "shutting down interconnect libraries that cannot
        be checkpointed and reconnecting peers when restarting")."""
        if not self.checkpointable:
            if state == FTState.CHECKPOINT:
                self.close_endpoint()
            elif state in (FTState.CONTINUE, FTState.RESTART):
                self.open_endpoint()
        if state == FTState.HALT:
            self.teardown()


def register_btl_components(registry: "FrameworkRegistry") -> None:
    from repro.ompi.btl.ib import IbBTL
    from repro.ompi.btl.sm import SmBTL
    from repro.ompi.btl.tcp import TcpBTL

    registry.add_component("btl", TcpBTL)
    registry.add_component("btl", IbBTL)
    registry.add_component("btl", SmBTL)
