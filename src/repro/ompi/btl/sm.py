"""``sm`` BTL: same-node shared-memory transport."""

from __future__ import annotations

from repro.mca.component import component_of
from repro.ompi.btl.base import BTLComponent


@component_of("btl", "sm", priority=40)
class SmBTL(BTLComponent):
    fabric_name = "lo"
    checkpointable = True

    def reaches(self, my_node: str, peer_card: dict) -> bool:
        return (
            peer_card.get("node") == my_node
            and self.name in peer_card.get("ports", {})
        )
