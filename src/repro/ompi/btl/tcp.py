"""``tcp`` BTL: Ethernet transport; checkpointable.

Socket state is process-local in the simulation (the endpoint binding
survives a checkpoint on the same process), so this BTL stays open
across checkpoints — matching LAM/MPI's and Open MPI's TCP support.
"""

from __future__ import annotations

from repro.mca.component import component_of
from repro.ompi.btl.base import BTLComponent


@component_of("btl", "tcp", priority=20)
class TcpBTL(BTLComponent):
    fabric_name = "eth"
    checkpointable = True
