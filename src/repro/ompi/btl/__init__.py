"""BTL — byte transfer layer framework.

BTLs move PML messages over one fabric each: ``tcp`` (Ethernet,
checkpointable), ``ib`` (InfiniBand — *not* checkpointable: its
endpoint state lives outside the process image, so the PML's
``ft_event`` shuts it down before checkpoints and reconnects after,
per paper section 6.3), and ``sm`` (same-node shared memory).

Unlike single-selection frameworks, every available BTL opens and the
PML picks per peer by priority and reachability.
"""

from repro.ompi.btl.base import BTLComponent, register_btl_components
from repro.ompi.btl.ib import IbBTL
from repro.ompi.btl.sm import SmBTL
from repro.ompi.btl.tcp import TcpBTL

__all__ = [
    "BTLComponent",
    "register_btl_components",
    "IbBTL",
    "SmBTL",
    "TcpBTL",
]
