"""MPI groups: ordered sets of world ranks."""

from __future__ import annotations

from repro.util.errors import MPIError


class Group:
    """An ordered list of world ranks; immutable."""

    def __init__(self, world_ranks: list[int]):
        if len(set(world_ranks)) != len(world_ranks):
            raise MPIError("group contains duplicate ranks")
        self._ranks = tuple(world_ranks)

    @property
    def size(self) -> int:
        return len(self._ranks)

    def world_rank(self, group_rank: int) -> int:
        """Translate a rank within this group to a world rank."""
        try:
            return self._ranks[group_rank]
        except IndexError:
            raise MPIError(
                f"rank {group_rank} out of range for group of {self.size}"
            ) from None

    def group_rank(self, world_rank: int) -> int:
        """Translate a world rank to a rank within this group (-1 if absent)."""
        try:
            return self._ranks.index(world_rank)
        except ValueError:
            return -1

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._ranks

    @property
    def ranks(self) -> tuple[int, ...]:
        return self._ranks

    # -- set operations -------------------------------------------------------

    def union(self, other: "Group") -> "Group":
        merged = list(self._ranks)
        merged.extend(r for r in other._ranks if r not in self._ranks)
        return Group(merged)

    def intersection(self, other: "Group") -> "Group":
        return Group([r for r in self._ranks if r in other._ranks])

    def difference(self, other: "Group") -> "Group":
        return Group([r for r in self._ranks if r not in other._ranks])

    def incl(self, group_ranks: list[int]) -> "Group":
        return Group([self.world_rank(r) for r in group_ranks])

    def excl(self, group_ranks: list[int]) -> "Group":
        drop = {self.world_rank(r) for r in group_ranks}
        return Group([r for r in self._ranks if r not in drop])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Group{self._ranks}"
