"""OMPI — the MPI layer.

Point-to-point messaging (PML framework, ``ob1`` component with eager
and rendezvous protocols over interchangeable BTLs), collectives
layered over point-to-point (paper section 3.1), communicators/groups,
and the checkpoint/restart coordination protocol framework (**CRCP**,
section 6.3) interposed through a wrapper PML.
"""

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.communicator import Communicator
from repro.ompi.status import Status

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "Status"]
