"""Communicators.

A communicator is a (cid, group, my-rank) triple.  Context ids are
allocated by a per-process counter; because communicator construction
is collective and our execution is deterministic, all members allocate
the same cid in the same order (the allocation is additionally verified
by an allreduce in the ``comm_dup``/``comm_split`` helpers).

PML messages carry ``(cid, src_rank_in_comm, tag)``; the communicator
translates comm ranks to world ranks for BTL addressing.
"""

from __future__ import annotations

from repro.ompi.group import Group
from repro.util.errors import MPIError


class Communicator:
    """One process's view of a communicator."""

    def __init__(self, cid: int, group: Group, my_world_rank: int):
        self.cid = cid
        self.group = group
        self.my_world_rank = my_world_rank
        rank = group.group_rank(my_world_rank)
        if rank < 0:
            raise MPIError(
                f"world rank {my_world_rank} is not in communicator {cid}"
            )
        self.rank = rank

    @property
    def size(self) -> int:
        return self.group.size

    def world_rank(self, comm_rank: int) -> int:
        return self.group.world_rank(comm_rank)

    def comm_rank(self, world_rank: int) -> int:
        return self.group.group_rank(world_rank)

    def peer_ranks(self) -> list[int]:
        """All comm ranks except mine."""
        return [r for r in range(self.size) if r != self.rank]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Comm cid={self.cid} rank={self.rank}/{self.size}>"
