"""MPI operation descriptors — the application/runner boundary.

Application code (and collective algorithms) *yield* these descriptors;
the application runner executes them and records their results, which
is what makes the ``simcr`` record-replay process image work: an
in-flight op is re-executable against restored library state, a
completed op's result comes from the log (see DESIGN.md decision 1).

Design constraints on every op:

* results must be picklable (they go in the process image);
* ``execute`` must be *idempotently re-executable* when the op was
  in-flight at checkpoint time — e.g. ``OpWait`` resolves its integer
  handle against the restored request table rather than holding object
  references.

The ``rt`` argument is the runtime facade (the
:class:`repro.apps.appkit.AppRuntime` or the library-internal
:class:`InlineRuntime`): it provides ``ompi``, ``proc``, ``rml``,
``kernel``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.orte.oob import TAG_CKPT_REPLY, TAG_CKPT_REQUEST
from repro.simenv.kernel import Delay, SimGen
from repro.util.errors import CheckpointError, MPIError, SimInterrupt
from repro.util.ids import hnp_name
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.ompi.communicator import Communicator

log = get_logger("ompi.ops")


class MPIOp:
    """Base class of yieldable operations."""

    __slots__ = ()

    def execute(self, rt) -> SimGen:
        raise NotImplementedError
        yield  # pragma: no cover


class OpISend(MPIOp):
    """Initiate a send; result is the request handle (int)."""

    __slots__ = ("comm", "dst", "tag", "payload")

    def __init__(self, comm: "Communicator", dst: int, tag: int, payload: Any):
        self.comm = comm
        self.dst = dst
        self.tag = tag
        self.payload = payload

    def execute(self, rt) -> SimGen:
        req_id = yield from rt.ompi.pml.isend(
            self.comm, self.dst, self.tag, self.payload
        )
        return req_id


class OpIRecv(MPIOp):
    """Post a receive; result is the request handle (int)."""

    __slots__ = ("comm", "src", "tag")

    def __init__(self, comm: "Communicator", src: int, tag: int):
        self.comm = comm
        self.src = src
        self.tag = tag

    def execute(self, rt) -> SimGen:
        req_id = yield from rt.ompi.pml.irecv(self.comm, self.src, self.tag)
        return req_id


class OpWait(MPIOp):
    """Wait for a request; result is ``None`` (send) or
    ``(payload, status_tuple)`` (recv)."""

    __slots__ = ("req_id",)

    def __init__(self, req_id: int):
        if not isinstance(req_id, int):
            raise MPIError(f"OpWait needs an integer handle, got {req_id!r}")
        self.req_id = req_id

    def execute(self, rt) -> SimGen:
        result = yield from rt.ompi.pml.wait(self.req_id)
        if result is None:
            return None
        payload, status = result
        return (payload, status.to_tuple())


class OpTest(MPIOp):
    """Non-blocking completion test; result ``(done, result_or_None)``."""

    __slots__ = ("req_id",)

    def __init__(self, req_id: int):
        self.req_id = req_id

    def execute(self, rt) -> SimGen:
        done, result = rt.ompi.pml.test(self.req_id)
        if done and result is not None:
            payload, status = result
            result = (payload, status.to_tuple())
        yield from _noop()
        return (done, result)


class OpIProbe(MPIOp):
    """Non-blocking probe; result is a status tuple or None."""

    __slots__ = ("comm", "src", "tag")

    def __init__(self, comm: "Communicator", src: int, tag: int):
        self.comm = comm
        self.src = src
        self.tag = tag

    def execute(self, rt) -> SimGen:
        status = rt.ompi.pml.iprobe(self.comm, self.src, self.tag)
        yield from _noop()
        return status.to_tuple() if status is not None else None


class OpCompute(MPIOp):
    """Burn simulated CPU time.  Result is the elapsed seconds."""

    __slots__ = ("seconds", "work")

    def __init__(self, seconds: float | None = None, work: float | None = None):
        if (seconds is None) == (work is None):
            raise ValueError("specify exactly one of seconds= or work=")
        self.seconds = seconds
        self.work = work

    def execute(self, rt) -> SimGen:
        seconds = (
            self.seconds
            if self.seconds is not None
            else rt.proc.node.compute_seconds(self.work)
        )
        yield Delay(seconds)
        return seconds


class OpNow(MPIOp):
    """Read the simulated clock (MPI_Wtime).  Logged so replay sees the
    original timestamps."""

    __slots__ = ()

    def execute(self, rt) -> SimGen:
        yield from _noop()
        return rt.kernel.now


class OpLog(MPIOp):
    """Emit a message (side effect suppressed on replay)."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message

    def execute(self, rt) -> SimGen:
        log.info("[t=%.6f %s] %s", rt.kernel.now, rt.proc.label, self.message)
        yield from _noop()
        return None


class OpCheckpoint(MPIOp):
    """Synchronous in-application checkpoint request (paper section 1:
    "synchronous checkpoint requests are handled by an application via
    a common API").

    Sends the request to the global coordinator and blocks until the
    global snapshot completes.  Result is the reply dict
    (``{"ok": True, "snapshot": path, "interval": n}``).
    """

    __slots__ = ("terminate", "options")

    def __init__(self, terminate: bool = False, options: dict | None = None):
        self.terminate = terminate
        self.options = dict(options or {})

    def execute(self, rt) -> SimGen:
        options = dict(self.options)
        options["terminate"] = self.terminate
        _, reply = yield from rt.rml.rpc(
            hnp_name(),
            TAG_CKPT_REQUEST,
            {"jobid": rt.proc.name.jobid, "options": options},
            TAG_CKPT_REPLY,
        )
        if not reply.get("ok") and not self.options.get("allow_fail"):
            raise CheckpointError(reply.get("error", "checkpoint failed"))
        return {
            "ok": reply.get("ok", False),
            "snapshot": reply.get("snapshot"),
            "interval": reply.get("interval"),
            "error": reply.get("error"),
        }


def _noop() -> SimGen:
    return None
    yield  # pragma: no cover


class InlineRuntime:
    """Minimal runtime facade for library-internal op execution
    (e.g. the MPI_Finalize barrier), with no logging/replay."""

    def __init__(self, ompi):
        self.ompi = ompi
        self.proc = ompi.proc
        self.rml = ompi.rml
        self.kernel = ompi.kernel


def drive_ops(rt, gen) -> SimGen:
    """Drive an op-yielding generator, executing every op immediately.

    Used for library-internal collective invocations; the application
    runner has its own (logging, replaying) driver.
    """
    result = None
    exc: BaseException | None = None
    while True:
        try:
            if exc is not None:
                op = gen.throw(exc)
                exc = None
            else:
                op = gen.send(result)
        except StopIteration as stop:
            return stop.value
        if not isinstance(op, MPIOp):
            raise MPIError(f"expected an MPIOp, got {op!r}")
        try:
            result = yield from op.execute(rt)
        except SimInterrupt:
            raise
        except BaseException as err:  # noqa: BLE001 - forward into the gen
            exc = err
            result = None
