"""MPI constants."""

from __future__ import annotations

#: wildcard source rank for receives
ANY_SOURCE = -1
#: wildcard tag for receives
ANY_TAG = -1

#: communicator id of MPI_COMM_WORLD
CID_WORLD = 0

#: fixed per-message header overhead on the wire (bytes)
MSG_HEADER_BYTES = 64

#: largest user tag (system tags are negative, below ANY_TAG)
TAG_UB = 2**30
