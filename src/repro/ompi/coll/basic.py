"""``basic`` collective component: textbook algorithms over p2p.

Tree-based broadcast/reduce (binomial), dissemination barrier, ring
allgather, linear gather/scatter/alltoall, linear scan.  The bcast and
reduce algorithms can be forced to ``linear`` via
``coll_basic_bcast_algorithm``/``coll_basic_reduce_algorithm`` for the
algorithm-choice ablation bench.
"""

from __future__ import annotations

from typing import Any

from repro.mca.component import component_of
from repro.ompi.coll.base import (
    SUM,
    TAG_ALLGATHER,
    TAG_ALLTOALL,
    TAG_BARRIER,
    TAG_BCAST,
    TAG_GATHER,
    TAG_REDUCE,
    TAG_SCAN,
    TAG_SCATTER,
    CollComponent,
)
from repro.ompi.datatype import copy_payload
from repro.ompi.ops import OpIRecv, OpISend, OpWait
from repro.util.errors import MPIError


def _send(comm, dst, tag, payload):
    """Blocking send as a sub-generator (isend + wait)."""
    req = yield OpISend(comm, dst, tag, payload)
    yield OpWait(req)
    return None


def _recv(comm, src, tag):
    """Blocking recv as a sub-generator; returns the payload."""
    req = yield OpIRecv(comm, src, tag)
    result = yield OpWait(req)
    payload, _status = result
    return payload


@component_of("coll", "basic", priority=10)
class BasicColl(CollComponent):
    def open(self, context: object | None = None) -> None:
        super().open(context)
        self.bcast_algorithm = (
            self.params.get("coll_basic_bcast_algorithm", "binomial") or "binomial"
        )
        self.reduce_algorithm = (
            self.params.get("coll_basic_reduce_algorithm", "binomial") or "binomial"
        )

    # -- barrier: dissemination --------------------------------------------------

    def barrier(self, comm):
        size, rank = comm.size, comm.rank
        if size == 1:
            return None
        distance = 1
        while distance < size:
            dst = (rank + distance) % size
            src = (rank - distance) % size
            send_req = yield OpISend(comm, dst, TAG_BARRIER, None)
            recv_req = yield OpIRecv(comm, src, TAG_BARRIER)
            yield OpWait(send_req)
            yield OpWait(recv_req)
            distance *= 2
        return None

    # -- bcast ---------------------------------------------------------------------

    def bcast(self, comm, value: Any, root: int = 0):
        size, rank = comm.size, comm.rank
        if size == 1:
            return value
        if not (0 <= root < size):
            raise MPIError(f"bcast: bad root {root}")
        if self.bcast_algorithm == "linear":
            if rank == root:
                for dst in range(size):
                    if dst != root:
                        yield from _send(comm, dst, TAG_BCAST, value)
                return value
            received = yield from _recv(comm, root, TAG_BCAST)
            return received
        # Binomial tree on virtual ranks (root -> vrank 0), MPICH style:
        # receive from the parent across the lowest set bit, then send
        # to children across decreasing bit positions.
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = (rank - mask) % size
                value = yield from _recv(comm, parent, TAG_BCAST)
                break
            mask *= 2
        mask //= 2
        while mask > 0:
            if vrank + mask < size:
                child = (rank + mask) % size
                yield from _send(comm, child, TAG_BCAST, value)
            mask //= 2
        return value

    # -- reduce ---------------------------------------------------------------------

    def reduce(self, comm, value: Any, op=SUM, root: int = 0):
        size, rank = comm.size, comm.rank
        if size == 1:
            return copy_payload(value)
        if not (0 <= root < size):
            raise MPIError(f"reduce: bad root {root}")
        acc = copy_payload(value)
        if self.reduce_algorithm == "linear":
            if rank == root:
                for src in range(size):
                    if src == root:
                        continue
                    contrib = yield from _recv(comm, src, TAG_REDUCE)
                    acc = op(acc, contrib)
                return acc
            yield from _send(comm, root, TAG_REDUCE, acc)
            return None
        # Binomial tree fold toward vrank 0.
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = ((vrank & ~mask) + root) % size
                yield from _send(comm, parent, TAG_REDUCE, acc)
                return None
            vchild = vrank | mask
            if vchild < size:
                child = (vchild + root) % size
                contrib = yield from _recv(comm, child, TAG_REDUCE)
                acc = op(acc, contrib)
            mask *= 2
        return acc if rank == root else None

    # -- allreduce: reduce + bcast ------------------------------------------------

    def allreduce(self, comm, value: Any, op=SUM):
        reduced = yield from self.reduce(comm, value, op=op, root=0)
        result = yield from self.bcast(comm, reduced, root=0)
        return result

    # -- gather / scatter (linear) -----------------------------------------------

    def gather(self, comm, value: Any, root: int = 0):
        size, rank = comm.size, comm.rank
        if rank == root:
            out: list[Any] = [None] * size
            out[root] = copy_payload(value)
            for src in range(size):
                if src == root:
                    continue
                out[src] = yield from _recv(comm, src, TAG_GATHER)
            return out
        yield from _send(comm, root, TAG_GATHER, value)
        return None

    def scatter(self, comm, values, root: int = 0):
        size, rank = comm.size, comm.rank
        if rank == root:
            if values is None or len(values) != size:
                raise MPIError(
                    f"scatter: root needs a list of {size} values"
                )
            for dst in range(size):
                if dst != root:
                    yield from _send(comm, dst, TAG_SCATTER, values[dst])
            return copy_payload(values[root])
        received = yield from _recv(comm, root, TAG_SCATTER)
        return received

    # -- allgather (ring) ------------------------------------------------------------

    def allgather(self, comm, value: Any):
        size, rank = comm.size, comm.rank
        out: list[Any] = [None] * size
        out[rank] = copy_payload(value)
        if size == 1:
            return out
        right = (rank + 1) % size
        left = (rank - 1) % size
        current = value
        for step in range(size - 1):
            send_req = yield OpISend(comm, right, TAG_ALLGATHER, current)
            incoming = yield from _recv(comm, left, TAG_ALLGATHER)
            yield OpWait(send_req)
            src_rank = (rank - step - 1) % size
            out[src_rank] = incoming
            current = incoming
        return out

    # -- alltoall (posted-all linear) -------------------------------------------------

    def alltoall(self, comm, values):
        size, rank = comm.size, comm.rank
        if values is None or len(values) != size:
            raise MPIError(f"alltoall: needs a list of {size} values")
        out: list[Any] = [None] * size
        out[rank] = copy_payload(values[rank])
        recv_reqs: dict[int, int] = {}
        send_reqs: list[int] = []
        for peer in range(size):
            if peer == rank:
                continue
            recv_reqs[peer] = yield OpIRecv(comm, peer, TAG_ALLTOALL)
        for peer in range(size):
            if peer == rank:
                continue
            send_reqs.append((yield OpISend(comm, peer, TAG_ALLTOALL, values[peer])))
        for peer, req in recv_reqs.items():
            result = yield OpWait(req)
            out[peer] = result[0]
        for req in send_reqs:
            yield OpWait(req)
        return out

    # -- scan (linear pipeline) -----------------------------------------------------

    def scan(self, comm, value: Any, op=SUM):
        size, rank = comm.size, comm.rank
        acc = copy_payload(value)
        if rank > 0:
            prefix = yield from _recv(comm, rank - 1, TAG_SCAN)
            acc = op(prefix, acc)
        if rank + 1 < size:
            yield from _send(comm, rank + 1, TAG_SCAN, acc)
        return acc
