"""COLL framework base: reduction operators and the component API.

Collective algorithms are generator functions that *yield*
:class:`repro.ompi.ops.MPIOp` descriptors and are driven either by the
application runner (checkpointable path) or by
:func:`repro.ompi.ops.drive_ops` (library-internal path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.mca.component import Component
from repro.util.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry

# -- reduction operators -------------------------------------------------------


def _sum(a: Any, b: Any) -> Any:
    return a + b


def _prod(a: Any, b: Any) -> Any:
    return a * b


def _max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


#: Built-in reduction operators (commutative + associative).
SUM: Callable[[Any, Any], Any] = _sum
PROD: Callable[[Any, Any], Any] = _prod
MAX: Callable[[Any, Any], Any] = _max
MIN: Callable[[Any, Any], Any] = _min

#: tag space reserved for collective traffic (app tags must stay below)
COLL_TAG_BASE = 2**29
TAG_BARRIER = COLL_TAG_BASE + 1
TAG_BCAST = COLL_TAG_BASE + 2
TAG_REDUCE = COLL_TAG_BASE + 3
TAG_GATHER = COLL_TAG_BASE + 4
TAG_SCATTER = COLL_TAG_BASE + 5
TAG_ALLGATHER = COLL_TAG_BASE + 6
TAG_ALLTOALL = COLL_TAG_BASE + 7
TAG_SCAN = COLL_TAG_BASE + 8
TAG_CID = COLL_TAG_BASE + 9


def check_app_tag(tag: int) -> int:
    """Validate a user-supplied tag (collective tag space is reserved)."""
    if not isinstance(tag, int) or tag < 0 or tag >= COLL_TAG_BASE:
        raise MPIError(f"application tags must be in [0, {COLL_TAG_BASE}), got {tag}")
    return tag


class CollComponent(Component):
    """Base class of collective components.

    Every method is a generator function yielding MPI ops; each
    returns the collective's local result.
    """

    framework_name = "coll"

    def barrier(self, comm):
        raise NotImplementedError

    def bcast(self, comm, value, root=0):
        raise NotImplementedError

    def reduce(self, comm, value, op=SUM, root=0):
        raise NotImplementedError

    def allreduce(self, comm, value, op=SUM):
        raise NotImplementedError

    def gather(self, comm, value, root=0):
        raise NotImplementedError

    def scatter(self, comm, values, root=0):
        raise NotImplementedError

    def allgather(self, comm, value):
        raise NotImplementedError

    def alltoall(self, comm, values):
        raise NotImplementedError

    def scan(self, comm, value, op=SUM):
        raise NotImplementedError


def register_coll_components(registry: "FrameworkRegistry") -> None:
    from repro.ompi.coll.basic import BasicColl

    registry.add_component("coll", BasicColl)
