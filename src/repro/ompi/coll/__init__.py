"""COLL — collective operations framework.

Per paper section 3.1, this first implementation supports "MPI
collective routines when internally layered over point-to-point
communication": every algorithm decomposes into the same isend/irecv/
wait primitives the PML exposes, which is also what makes collectives
checkpoint-safe — a checkpoint landing mid-collective is just a
checkpoint between point-to-point messages, and the record-replay
image resumes the algorithm exactly where it stopped.
"""

from repro.ompi.coll.base import (
    MAX,
    MIN,
    PROD,
    SUM,
    CollComponent,
    register_coll_components,
)
from repro.ompi.coll.basic import BasicColl

__all__ = [
    "MAX",
    "MIN",
    "PROD",
    "SUM",
    "CollComponent",
    "register_coll_components",
    "BasicColl",
]
