"""MPI requests.

Request handles are small integers so they are trivially part of the
process image: a restarted process's replay log can return the very
same handle, and ``wait`` re-executed after restart resolves it against
the restored request table (see DESIGN.md section 5, decision 1).

The completion :class:`SimEvent` is deliberately *not* part of the
captured state — events are re-created lazily in the restored process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.simenv.kernel import SimEvent, SimGen, WaitEvent
from repro.util.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel


class Request:
    """One outstanding (or completed, unconsumed) communication."""

    __slots__ = ("id", "kind", "complete", "result", "error", "recv_params", "_event", "_kernel")

    def __init__(self, kernel: "Kernel", req_id: int, kind: str):
        self.id = req_id
        self.kind = kind  # "send" | "recv"
        self.complete = False
        self.result: Any = None
        self.error: str | None = None
        #: (cid, src, tag) for pending receives (needed for re-posting)
        self.recv_params: tuple[int, int, int] | None = None
        self._event: SimEvent | None = None
        self._kernel = kernel

    # -- completion -----------------------------------------------------------

    def complete_ok(self, result: Any) -> None:
        if self.complete:
            raise MPIError(f"request {self.id} completed twice")
        self.complete = True
        self.result = result
        if self._event is not None and not self._event.fired:
            self._event.fire(result)

    def complete_error(self, message: str) -> None:
        if self.complete:
            return
        self.complete = True
        self.error = message
        if self._event is not None and not self._event.fired:
            self._event.fail(MPIError(message))

    def wait(self) -> SimGen:
        if self.complete:
            if self.error is not None:
                raise MPIError(self.error)
            return self.result
        if self._event is None:
            self._event = self._kernel.event(f"req{self.id}")
        result = yield WaitEvent(self._event)
        return result

    def test(self) -> tuple[bool, Any]:
        if self.complete and self.error is not None:
            raise MPIError(self.error)
        return self.complete, self.result

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.complete else "pending"
        return f"<Request {self.id} {self.kind} {state}>"


class RequestTable:
    """Per-process request registry (part of the process image)."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self._next_id = 1
        self._requests: dict[int, Request] = {}

    def new(self, kind: str) -> Request:
        req = Request(self._kernel, self._next_id, kind)
        self._next_id += 1
        self._requests[req.id] = req
        return req

    def get(self, req_id: int) -> Request:
        try:
            return self._requests[req_id]
        except KeyError:
            raise MPIError(f"unknown request handle {req_id}") from None

    def free(self, req_id: int) -> None:
        self._requests.pop(req_id, None)

    @property
    def pending(self) -> list[Request]:
        return [r for r in self._requests.values() if not r.complete]

    def pending_of_kind(self, kind: str) -> list[Request]:
        return [r for r in self.pending if r.kind == kind]

    def __len__(self) -> int:
        return len(self._requests)

    # -- image capture/restore ----------------------------------------------

    def capture(self) -> dict:
        entries = []
        for req in self._requests.values():
            entries.append(
                {
                    "id": req.id,
                    "kind": req.kind,
                    "complete": req.complete,
                    "result": req.result,
                    "error": req.error,
                    "recv_params": req.recv_params,
                }
            )
        return {"next_id": self._next_id, "entries": entries}

    def restore(self, state: dict) -> None:
        self._next_id = state["next_id"]
        self._requests.clear()
        for entry in state["entries"]:
            req = Request(self._kernel, entry["id"], entry["kind"])
            req.complete = entry["complete"]
            req.result = entry["result"]
            req.error = entry["error"]
            params = entry["recv_params"]
            req.recv_params = tuple(params) if params is not None else None
            self._requests[req.id] = req
