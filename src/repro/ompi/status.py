"""MPI_Status analogue."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Status:
    """Completion information of a receive."""

    source: int
    tag: int
    nbytes: int

    def to_tuple(self) -> tuple[int, int, int]:
        return (self.source, self.tag, self.nbytes)

    @classmethod
    def from_tuple(cls, data) -> "Status":
        return cls(*data)
