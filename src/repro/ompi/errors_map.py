"""Rebuild logged exceptions by class name.

The application runner logs op failures as ``("err", type_name,
message)`` so the replay path can re-raise the same error into the
application generator (applications that caught and handled an error
must replay identically).
"""

from __future__ import annotations

from repro.util import errors as _errors
from repro.util.errors import ReproError

_KNOWN: dict[str, type] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
}


def rebuild(type_name: str, message: str) -> BaseException:
    """Reconstruct an exception from its logged (type, message) pair."""
    cls = _KNOWN.get(type_name, ReproError)
    try:
        return cls(message)
    except TypeError:
        # Exotic constructors (e.g. NotCheckpointableError takes a list)
        # fall back to the base class carrying the original text.
        return ReproError(f"{type_name}: {message}")
