"""OMPI layer object: one per application process.

Owns the PML stack (BTLs, ob1, optional CRCP wrapper), communicators,
the request table, the MPI init/finalize rendezvous, and the OMPI INC —
which enforces the paper's ordering requirement: the CRCP coordinates
*before any other MPI subsystem* is notified of a checkpoint, and only
then does the PML ``ft_event`` shut down non-checkpointable
interconnects (sections 5.3, 6.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.ft_event import FTState, drive_ft_event
from repro.ompi.communicator import Communicator
from repro.ompi.constants import CID_WORLD
from repro.ompi.crcp.wrapper import CRCPWrapperPML
from repro.ompi.group import Group
from repro.ompi.ops import InlineRuntime, drive_ops
from repro.ompi.request import RequestTable
from repro.orte.oob import TAG_CKPT_READY, TAG_INIT_GO, TAG_INIT_READY
from repro.simenv.kernel import SimGen
from repro.util.errors import CheckpointError, MPIError
from repro.util.ids import hnp_name
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.params import MCAParams
    from repro.mca.registry import FrameworkRegistry
    from repro.opal.layer import OpalLayer
    from repro.orte.oob import RML
    from repro.orte.universe import Universe
    from repro.simenv.process import SimProcess

log = get_logger("ompi.layer")


class _PMLContributor:
    """Adapter exposing the PML state as an image contributor."""

    image_key = "ompi.pml"

    def __init__(self, ompi: "OmpiLayer"):
        self._ompi = ompi

    def capture_image_state(self, crs_name: str):
        return self._ompi.pml.capture_state()

    def restore_image_state(self, state) -> None:
        self._ompi.pml.restore_state(state)


class OmpiLayer:
    """Per-process MPI library state."""

    SERVICE_KEY = "ompi"

    def __init__(
        self,
        proc: "SimProcess",
        universe: "Universe",
        opal: "OpalLayer",
        rml: "RML",
        registry: "FrameworkRegistry",
        params: "MCAParams",
    ):
        self.proc = proc
        self.universe = universe
        self.cluster = universe.cluster
        self.kernel = proc.kernel
        self.opal = opal
        self.rml = rml
        self.params = params
        self.requests = RequestTable(self.kernel)
        self.btls = registry.framework("btl").open_all(params, context=self)
        self.pml_base = registry.framework("pml").open(params, context=self)
        self.ft_enabled = params.get_bool("ompi_cr_enabled", True)
        if self.ft_enabled:
            self.crcp = registry.framework("crcp").open(params, context=self)
            self.pml = CRCPWrapperPML(self.pml_base, self.crcp)
        else:
            self.crcp = None
            self.pml = self.pml_base
        self.pml.setup(self)
        self.coll = registry.framework("coll").open(params, context=self)
        self.comms: dict[int, Communicator] = {}
        self.comm_world: Communicator | None = None
        self.next_cid = CID_WORLD + 1
        #: modex database: world rank -> business card
        self.modex: dict[int, dict] = {}
        self.initialized = False
        self.finalized = False
        opal.register_contributor(_PMLContributor(self))
        if self.crcp is not None:
            opal.register_contributor(self.crcp)
        opal.inc_stack.register("ompi", self._ompi_inc)
        proc.register_service(self.SERVICE_KEY, self)

    # ------------------------------------------------------------------
    # init / finalize
    # ------------------------------------------------------------------

    def mpi_init(self) -> SimGen:
        """MPI_INIT: endpoint binding, modex exchange, world setup.

        Checkpointing is enabled at the end (paper section 6.4).
        """
        if self.initialized:
            raise MPIError("MPI already initialized")
        ports = {btl.name: btl.open_endpoint() for btl in self.btls}
        card = {"node": self.proc.node.name, "ports": ports}
        name = self.proc.name
        yield from self.rml.send(
            hnp_name(),
            TAG_INIT_READY,
            {"jobid": name.jobid, "rank": name.vpid, "card": card},
        )
        _, payload = yield from self.rml.recv(TAG_INIT_GO)
        self.modex = {int(k): v for k, v in payload["modex"].items()}
        np_procs = payload["np"]
        world_group = Group(list(range(np_procs)))
        self.comm_world = Communicator(CID_WORLD, world_group, name.vpid)
        self.comms[CID_WORLD] = self.comm_world
        self.initialized = True
        self.pml_base.flush_preinit()
        if self.ft_enabled:
            self.opal.enable_checkpoint()
            yield from self.rml.send(
                hnp_name(),
                TAG_CKPT_READY,
                {"jobid": name.jobid, "rank": name.vpid, "ready": True},
            )
        return self.comm_world

    def mpi_finalize(self) -> SimGen:
        """MPI_FINALIZE: checkpointing off first, then a barrier."""
        if not self.initialized or self.finalized:
            raise MPIError("MPI_FINALIZE without matching init")
        if self.ft_enabled:
            self.opal.disable_checkpoint()
            yield from self.rml.send(
                hnp_name(),
                TAG_CKPT_READY,
                {
                    "jobid": self.proc.name.jobid,
                    "rank": self.proc.name.vpid,
                    "ready": False,
                },
            )
        rt = InlineRuntime(self)
        yield from drive_ops(rt, self.coll.barrier(self.comm_world))
        for btl in self.btls:
            btl.teardown()
        self.finalized = True
        return None

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def peer_card(self, world_rank: int) -> dict:
        try:
            return self.modex[world_rank]
        except KeyError:
            raise MPIError(f"no modex entry for world rank {world_rank}") from None

    def comm_by_cid(self, cid: int) -> Communicator:
        try:
            return self.comms[cid]
        except KeyError:
            raise MPIError(f"unknown communicator id {cid}") from None

    def register_comm(self, comm: Communicator) -> None:
        if comm.cid in self.comms:
            raise MPIError(f"communicator id {comm.cid} already in use")
        self.comms[comm.cid] = comm

    def allocate_cid(self) -> int:
        cid = self.next_cid
        self.next_cid += 1
        return cid

    # ------------------------------------------------------------------
    # INC
    # ------------------------------------------------------------------

    def _ompi_inc(self, state: FTState, down) -> SimGen:
        if state == FTState.CHECKPOINT:
            if self.crcp is None:
                raise CheckpointError(
                    f"{self.proc.label}: built without CR support "
                    "(ompi_cr_enabled=0)"
                )
            # Coordination strictly precedes every other MPI subsystem
            # notification (paper section 5.3).
            yield from self.crcp.coordinate()
            yield from drive_ft_event(self.pml_base, state)
            yield from drive_ft_event(self.coll, state)
        yield from down(state)
        if state in (FTState.CONTINUE, FTState.RESTART):
            yield from drive_ft_event(self.pml_base, state)
            yield from drive_ft_event(self.coll, state)
            if self.crcp is not None:
                self.crcp.resume(state == FTState.RESTART)
        elif state == FTState.HALT:
            for btl in self.btls:
                btl.teardown()
        return None
