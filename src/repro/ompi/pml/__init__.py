"""PML — point-to-point management layer framework.

``ob1`` is the default component (eager + rendezvous protocols over
BTLs with MPI matching semantics).  The CRCP framework interposes on
the PML through :class:`repro.ompi.crcp.wrapper.CRCPWrapperPML`, the
paper's "wrapper PML component" (section 6.3).
"""

from repro.ompi.pml.base import PMLComponent, register_pml_components
from repro.ompi.pml.matching import MatchingEngine, MPIMsg, PostedRecv
from repro.ompi.pml.ob1 import Ob1PML

__all__ = [
    "PMLComponent",
    "register_pml_components",
    "MatchingEngine",
    "MPIMsg",
    "PostedRecv",
    "Ob1PML",
]
