"""PML framework base.

The public PML API is uniformly *generator-based* (``yield from
pml.isend(...)``) even where the default component completes
immediately: this is what lets the CRCP wrapper PML make any entry
point blocking (e.g. gating new sends while a checkpoint coordination
is in flight) without changing callers — the paper's wrapper-component
trick (section 6.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mca.component import Component
from repro.simenv.kernel import SimGen

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.ompi.communicator import Communicator
    from repro.ompi.layer import OmpiLayer


def nothing() -> SimGen:
    """An empty generator — ``yield from nothing()`` is a no-op."""
    return None
    yield  # pragma: no cover


class PMLComponent(Component):
    """Base class of point-to-point management components."""

    framework_name = "pml"

    def setup(self, ompi: "OmpiLayer") -> None:
        """Bind to the layer (called once at MPI init)."""
        raise NotImplementedError

    # -- data path (generators) ---------------------------------------------

    def isend(self, comm: "Communicator", dst: int, tag: int, payload: Any) -> SimGen:
        """Initiate a send; returns a request id."""
        raise NotImplementedError
        yield  # pragma: no cover

    def irecv(self, comm: "Communicator", src: int, tag: int) -> SimGen:
        """Post a receive; returns a request id."""
        raise NotImplementedError
        yield  # pragma: no cover

    def wait(self, req_id: int) -> SimGen:
        """Block until the request completes; returns its result."""
        raise NotImplementedError
        yield  # pragma: no cover

    def test(self, req_id: int) -> tuple[bool, Any]:
        raise NotImplementedError

    def iprobe(self, comm: "Communicator", src: int, tag: int):
        raise NotImplementedError

    # -- progress (synchronous, called by BTL pumps) ---------------------------

    def handle_incoming(self, msg: Any) -> None:
        raise NotImplementedError

    # -- image --------------------------------------------------------------

    def capture_state(self) -> dict:
        raise NotImplementedError

    def restore_state(self, state: dict) -> None:
        raise NotImplementedError


def register_pml_components(registry: "FrameworkRegistry") -> None:
    from repro.ompi.pml.ob1 import Ob1PML

    registry.add_component("pml", Ob1PML)
