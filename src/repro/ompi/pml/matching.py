"""MPI message matching.

Implements the standard matching rules: a posted receive ``(cid, src,
tag)`` (with ``ANY_SOURCE``/``ANY_TAG`` wildcards) matches the earliest
arrival-ordered candidate; candidates from one sender match in send
order (guaranteed by the in-order transport plus the single
arrival-ordered ``unexpected`` list, which holds both buffered payloads
and rendezvous RTS placeholders so cross-protocol ordering is
preserved).

The engine is deliberately free of I/O — the PML drives it — which
makes its state a clean image contribution: ``capture``/``restore``
round-trip the posted and unexpected queues across checkpoint/restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.util.errors import MPIError


@dataclass
class MPIMsg:
    """One MPI-level message (or protocol fragment)."""

    kind: str  # "eager" | "rts" | "cts" | "data"
    cid: int
    src: int
    dst: int
    tag: int
    seq: int
    nbytes: int
    payload: Any = None
    msg_id: int = 0
    #: sender's *world* rank — lets the progress engine account for and
    #: route protocol traffic without resolving the communicator (which
    #: may not be registered locally yet during collective comm
    #: construction)
    src_world: int = -1

    def to_state(self) -> dict:
        return {
            "kind": self.kind,
            "cid": self.cid,
            "src": self.src,
            "dst": self.dst,
            "tag": self.tag,
            "seq": self.seq,
            "nbytes": self.nbytes,
            "payload": self.payload,
            "msg_id": self.msg_id,
            "src_world": self.src_world,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MPIMsg":
        return cls(**state)


@dataclass
class PostedRecv:
    """A posted receive awaiting a match."""

    req_id: int
    cid: int
    src: int
    tag: int

    def matches(self, msg: MPIMsg) -> bool:
        if msg.cid != self.cid:
            return False
        if self.src != ANY_SOURCE and msg.src != self.src:
            return False
        if self.tag != ANY_TAG and msg.tag != self.tag:
            return False
        return True


class MatchingEngine:
    """Posted-receive and unexpected-message queues."""

    def __init__(self) -> None:
        self.posted: list[PostedRecv] = []
        #: arrival-ordered payloads ("eager"/"data") and RTS placeholders
        self.unexpected: list[MPIMsg] = []
        #: msg_ids of RTS entries we have drain-CTSed (payload will
        #: replace the placeholder in place, preserving order)
        self.draining: set[int] = set()

    # -- receive side -----------------------------------------------------------

    def post(self, recv: PostedRecv) -> MPIMsg | None:
        """Try to match a new posted receive.

        Returns the matched unexpected entry (payload *or* RTS) and
        removes it from the queue; returns None (and queues the post)
        if nothing matches.
        """
        for i, msg in enumerate(self.unexpected):
            if msg.kind == "rts" and msg.msg_id in self.draining:
                continue  # already being pulled by the drain
            if recv.matches(msg):
                return self.unexpected.pop(i)
        self.posted.append(recv)
        return None

    def cancel_post(self, req_id: int) -> bool:
        for i, recv in enumerate(self.posted):
            if recv.req_id == req_id:
                self.posted.pop(i)
                return True
        return False

    # -- arrival side -------------------------------------------------------------

    def arrive(self, msg: MPIMsg) -> PostedRecv | None:
        """Record an arriving ``eager`` or ``rts`` message.

        Returns the matching posted receive (removed from the queue) or
        None after buffering the message as unexpected.
        """
        if msg.kind not in ("eager", "rts"):
            raise MPIError(f"matching engine got {msg.kind} message")
        for i, recv in enumerate(self.posted):
            if recv.matches(msg):
                return self.posted.pop(i)
        self.unexpected.append(msg)
        return None

    def replace_rts_with_data(self, data: MPIMsg) -> None:
        """Swap a drained RTS placeholder for its payload, in place."""
        for i, msg in enumerate(self.unexpected):
            if msg.kind == "rts" and msg.msg_id == data.msg_id:
                self.unexpected[i] = data
                self.draining.discard(data.msg_id)
                return
        raise MPIError(f"no draining RTS with msg_id {data.msg_id}")

    def pending_rts(self) -> list[MPIMsg]:
        """Unexpected RTS entries not yet being drained."""
        return [
            m
            for m in self.unexpected
            if m.kind == "rts" and m.msg_id not in self.draining
        ]

    @property
    def unexpected_payloads(self) -> list[MPIMsg]:
        return [m for m in self.unexpected if m.kind in ("eager", "data")]

    # -- image capture/restore ----------------------------------------------------

    def capture(self) -> dict:
        rts_left = [m for m in self.unexpected if m.kind == "rts"]
        if rts_left or self.draining:
            raise MPIError(
                "matching engine captured with undrained rendezvous "
                f"traffic ({len(rts_left)} RTS, {len(self.draining)} draining)"
            )
        return {
            "posted": [
                (r.req_id, r.cid, r.src, r.tag) for r in self.posted
            ],
            "unexpected": [m.to_state() for m in self.unexpected],
        }

    def restore(self, state: dict) -> None:
        self.posted = [
            PostedRecv(req_id, cid, src, tag)
            for req_id, cid, src, tag in state["posted"]
        ]
        self.unexpected = [MPIMsg.from_state(s) for s in state["unexpected"]]
        self.draining = set()
