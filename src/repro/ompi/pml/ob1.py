"""``ob1`` — the default point-to-point component.

Implements the classic Open MPI ob1 design over BTLs:

* **eager** protocol for payloads up to ``pml_ob1_eager_limit``: the
  whole message ships at once; the send completes when serialized (the
  payload is copied, so the sender's buffer is immediately reusable);
* **rendezvous** for larger payloads: RTS → (match) → CTS → DATA; the
  send completes once the data is on the wire, the receive when it
  lands.

Progress is driven by per-BTL pump threads calling
:meth:`handle_incoming`; sends run on short-lived helper threads so
``isend`` returns immediately (MPI semantics).

Checkpoint/restart integration (used by the CRCP ``coord`` component):

* ``enter_drain``/``leave_drain`` — while draining, unmatched RTS
  fragments are CTSed immediately so their payloads land in the
  unexpected queue (the channel must be empty in the global snapshot);
* ``quiesce_sends`` — wait for every in-flight send helper to finish;
* ``capture_state``/``restore_state`` — the PML's part of the process
  image: matching queues, request table, sequence counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.mca.component import component_of
from repro.core.ft_event import drive_ft_event
from repro.ompi.constants import ANY_SOURCE, MSG_HEADER_BYTES
from repro.ompi.datatype import copy_payload, nbytes_of
from repro.ompi.pml.base import PMLComponent
from repro.ompi.pml.matching import MatchingEngine, MPIMsg, PostedRecv
from repro.ompi.status import Status
from repro.simenv.kernel import SimEvent, SimGen, WaitEvent
from repro.util.errors import MPIError, NetworkError
from repro.util.logging import get_logger
from repro.util.seq import SeqWindow

if TYPE_CHECKING:  # pragma: no cover
    from repro.ompi.communicator import Communicator
    from repro.ompi.layer import OmpiLayer

log = get_logger("ompi.pml.ob1")


@component_of("pml", "ob1", priority=10)
class Ob1PML(PMLComponent):
    def open(self, context: object | None = None) -> None:
        super().open(context)
        self.eager_limit = self.params.get_int("pml_ob1_eager_limit", 65536)

    def setup(self, ompi: "OmpiLayer") -> None:
        self.ompi = ompi
        self.requests = ompi.requests
        self.matching = MatchingEngine()
        self.btls = ompi.btls
        for btl in self.btls:
            btl.setup(ompi, self)
        #: per-(cid, dst comm rank) payload sequence counters
        self.send_seq: dict[tuple[int, int], int] = {}
        #: per-(cid, src comm rank) delivery windows (invariant checks)
        self.recv_windows: dict[tuple[int, int], SeqWindow] = {}
        self.next_msg_id = 1
        #: sender side: msg_id -> event fired by CTS arrival
        self.pending_cts: dict[int, SimEvent] = {}
        #: receiver side: msg_id -> req_id of the matched posted recv
        self.pending_rendezvous: dict[int, int] = {}
        self.active_sends = 0
        self._quiet_event: SimEvent | None = None
        self.drain_mode = False
        #: messages that raced ahead of MPI_INIT completion (a peer may
        #: leave MPI_INIT and send while we are still inside it; real
        #: TCP buffers hold such traffic)
        self._preinit: list[MPIMsg] = []
        #: wrapper hooks (world-rank based); None without a wrapper
        self.send_hook: Callable[[int], None] | None = None
        self.delivered_hook: Callable[[int], None] | None = None
        # statistics
        self.stats = {
            "eager_sent": 0,
            "rndv_sent": 0,
            "delivered": 0,
            "unexpected": 0,
        }

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------

    def isend(self, comm: "Communicator", dst: int, tag: int, payload: Any) -> SimGen:
        if not (0 <= dst < comm.size):
            raise MPIError(f"isend: bad destination rank {dst}")
        if tag < 0:
            raise MPIError(f"isend: negative tag {tag}")
        req = self.requests.new("send")
        key = (comm.cid, dst)
        seq = self.send_seq.get(key, 0)
        self.send_seq[key] = seq + 1
        if self.send_hook is not None:
            self.send_hook(comm.world_rank(dst))
        self.active_sends += 1
        self.ompi.proc.spawn_thread(
            self._send_thread(req, comm, dst, tag, payload, seq),
            name=f"ob1-send-{req.id}",
            daemon=True,
        )
        if False:  # pragma: no cover - keeps this a generator function
            yield
        return req.id

    def _send_thread(self, req, comm, dst, tag, payload, seq) -> SimGen:
        try:
            nbytes = nbytes_of(payload)
            card = self.ompi.peer_card(comm.world_rank(dst))
            if nbytes <= self.eager_limit:
                msg = MPIMsg(
                    "eager",
                    comm.cid,
                    comm.rank,
                    dst,
                    tag,
                    seq,
                    nbytes,
                    payload=copy_payload(payload),
                    src_world=comm.my_world_rank,
                )
                btl = self.select_btl(card)
                yield from btl.send_msg(card, msg, MSG_HEADER_BYTES + nbytes)
                self.stats["eager_sent"] += 1
            else:
                msg_id = self.next_msg_id
                self.next_msg_id += 1
                rts = MPIMsg(
                    "rts",
                    comm.cid,
                    comm.rank,
                    dst,
                    tag,
                    seq,
                    nbytes,
                    msg_id=msg_id,
                    src_world=comm.my_world_rank,
                )
                cts_event = self.ompi.kernel.event(f"cts-{msg_id}")
                self.pending_cts[msg_id] = cts_event
                btl = self.select_btl(card)
                yield from btl.send_msg(card, rts, MSG_HEADER_BYTES)
                yield WaitEvent(cts_event)
                data = MPIMsg(
                    "data",
                    comm.cid,
                    comm.rank,
                    dst,
                    tag,
                    seq,
                    nbytes,
                    payload=payload,
                    msg_id=msg_id,
                    src_world=comm.my_world_rank,
                )
                # Re-select: the preferred BTL may have been shut down
                # between RTS and CTS by a concurrent checkpoint.
                btl = self.select_btl(card)
                yield from btl.send_msg(card, data, MSG_HEADER_BYTES + nbytes)
                self.stats["rndv_sent"] += 1
            req.complete_ok(None)
        except NetworkError as exc:
            req.complete_error(f"send failed: {exc}")
        finally:
            self.active_sends -= 1
            if self.active_sends == 0 and self._quiet_event is not None:
                event, self._quiet_event = self._quiet_event, None
                if not event.fired:
                    event.fire(None)
        return None

    def select_btl(self, card: dict):
        my_node = self.ompi.proc.node.name
        for btl in self.btls:  # priority order
            if btl.is_connected and btl.reaches(my_node, card):
                return btl
        raise NetworkError(
            f"{self.ompi.proc.label}: no BTL reaches {card.get('node')}"
        )

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def irecv(self, comm: "Communicator", src: int, tag: int) -> SimGen:
        if src != ANY_SOURCE and not (0 <= src < comm.size):
            raise MPIError(f"irecv: bad source rank {src}")
        req = self.requests.new("recv")
        req.recv_params = (comm.cid, src, tag)
        posted = PostedRecv(req.id, comm.cid, src, tag)
        matched = self.matching.post(posted)
        if matched is not None:
            self._consume_match(req, matched)
        if False:  # pragma: no cover - keeps this a generator function
            yield
        return req.id

    def _consume_match(self, req, msg: MPIMsg) -> None:
        if msg.kind in ("eager", "data"):
            req.complete_ok((msg.payload, Status(msg.src, msg.tag, msg.nbytes)))
        elif msg.kind == "rts":
            self.pending_rendezvous[msg.msg_id] = req.id
            self._spawn_cts(msg)
        else:  # pragma: no cover - matching engine filters kinds
            raise MPIError(f"matched {msg.kind} message")

    def _spawn_cts(self, rts: MPIMsg) -> None:
        cts = MPIMsg(
            "cts", rts.cid, rts.dst, rts.src, rts.tag, rts.seq, 0, msg_id=rts.msg_id
        )

        def sender() -> SimGen:
            card = self.ompi.peer_card(rts.src_world)
            try:
                btl = self.select_btl(card)
                yield from btl.send_msg(card, cts, MSG_HEADER_BYTES)
            except NetworkError as exc:
                log.warning("CTS to rank %d failed: %s", rts.src, exc)
            return None

        self.ompi.proc.spawn_thread(
            sender(), name=f"ob1-cts-{rts.msg_id}", daemon=True
        )

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def wait(self, req_id: int) -> SimGen:
        req = self.requests.get(req_id)
        result = yield from req.wait()
        self.requests.free(req_id)
        return result

    def test(self, req_id: int) -> tuple[bool, Any]:
        req = self.requests.get(req_id)
        done, result = req.test()
        if done:
            self.requests.free(req_id)
        return done, result

    def iprobe(self, comm: "Communicator", src: int, tag: int):
        """Non-blocking probe of the unexpected queue.

        Returns a :class:`Status` for the earliest matching buffered
        message, or None.
        """
        probe = PostedRecv(-1, comm.cid, src, tag)
        for msg in self.matching.unexpected:
            if probe.matches(msg):
                return Status(msg.src, msg.tag, msg.nbytes)
        return None

    # ------------------------------------------------------------------
    # progress (called from BTL pump threads)
    # ------------------------------------------------------------------

    def handle_incoming(self, msg: MPIMsg) -> None:
        if self.ompi.comm_world is None:
            self._preinit.append(msg)
            return
        if msg.kind == "eager":
            self._note_delivered(msg)
            recv = self.matching.arrive(msg)
            if recv is not None:
                self._consume_match(self.requests.get(recv.req_id), msg)
            else:
                self.stats["unexpected"] += 1
        elif msg.kind == "rts":
            recv = self.matching.arrive(msg)
            if recv is not None:
                self._consume_match(self.requests.get(recv.req_id), msg)
            elif self.drain_mode:
                self.matching.draining.add(msg.msg_id)
                self._spawn_cts(msg)
        elif msg.kind == "cts":
            event = self.pending_cts.pop(msg.msg_id, None)
            if event is not None and not event.fired:
                event.fire(None)
        elif msg.kind == "data":
            self._note_delivered(msg)
            req_id = self.pending_rendezvous.pop(msg.msg_id, None)
            if req_id is not None:
                req = self.requests.get(req_id)
                req.complete_ok((msg.payload, Status(msg.src, msg.tag, msg.nbytes)))
            elif msg.msg_id in self.matching.draining:
                buffered = MPIMsg(
                    "data",
                    msg.cid,
                    msg.src,
                    msg.dst,
                    msg.tag,
                    msg.seq,
                    msg.nbytes,
                    payload=copy_payload(msg.payload),
                    msg_id=msg.msg_id,
                )
                self.matching.replace_rts_with_data(buffered)
                self.stats["unexpected"] += 1
                # A receive posted while the drain was in flight may be
                # waiting for exactly this payload.
                self._rematch(buffered)
            else:  # pragma: no cover - protocol violation
                raise MPIError(f"orphan DATA fragment msg_id={msg.msg_id}")
        else:  # pragma: no cover
            raise MPIError(f"unknown message kind {msg.kind!r}")

    def _rematch(self, msg: MPIMsg) -> None:
        """Match a just-buffered payload against already-posted recvs."""
        for i, recv in enumerate(self.matching.posted):
            if recv.matches(msg):
                self.matching.posted.pop(i)
                self.matching.unexpected.remove(msg)
                self._consume_match(self.requests.get(recv.req_id), msg)
                return

    def flush_preinit(self) -> None:
        """Process traffic buffered while MPI_INIT was still running."""
        held, self._preinit = self._preinit, []
        for msg in held:
            self.handle_incoming(msg)

    def _note_delivered(self, msg: MPIMsg) -> None:
        self.stats["delivered"] += 1
        window = self.recv_windows.setdefault((msg.cid, msg.src), SeqWindow())
        window.deliver(msg.seq)
        if self.delivered_hook is not None:
            self.delivered_hook(msg.src_world)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def enter_drain(self) -> None:
        if self.drain_mode:
            return
        self.drain_mode = True
        for rts in self.matching.pending_rts():
            self.matching.draining.add(rts.msg_id)
            self._spawn_cts(rts)

    def leave_drain(self) -> None:
        # Idempotent: the coordinator's abort path may run after the
        # drain loop already exited (or before it ever entered).
        self.drain_mode = False

    def quiesce_sends(self) -> SimGen:
        """Block until every in-flight send helper has finished."""
        while self.active_sends > 0:
            if self._quiet_event is None:
                self._quiet_event = self.ompi.kernel.event("ob1-quiet")
            yield WaitEvent(self._quiet_event)
        return None

    def ft_event(self, state: int) -> SimGen:
        for btl in self.btls:
            yield from drive_ft_event(btl, state)
        return None

    # ------------------------------------------------------------------
    # image capture / restore
    # ------------------------------------------------------------------

    def capture_state(self) -> dict:
        if self.active_sends or self.pending_cts or self.pending_rendezvous:
            raise MPIError(
                "PML captured while not quiesced "
                f"(active={self.active_sends}, cts={len(self.pending_cts)}, "
                f"rndv={len(self.pending_rendezvous)})"
            )
        pending_sends = self.requests.pending_of_kind("send")
        if pending_sends:
            raise MPIError(
                f"PML captured with {len(pending_sends)} incomplete sends"
            )
        return {
            "matching": self.matching.capture(),
            "requests": self.requests.capture(),
            "send_seq": dict(self.send_seq),
            "recv_windows": {
                key: window.snapshot()
                for key, window in self.recv_windows.items()
            },
            "next_msg_id": self.next_msg_id,
        }

    def restore_state(self, state: dict) -> None:
        self.matching.restore(state["matching"])
        self.requests.restore(state["requests"])
        self.send_seq = {tuple(k): v for k, v in state["send_seq"].items()}
        self.recv_windows = {
            tuple(key): SeqWindow.restore(snap)
            for key, snap in state["recv_windows"].items()
        }
        self.next_msg_id = state["next_msg_id"]
