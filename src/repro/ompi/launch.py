"""Application process construction (called by orteds).

Builds the full per-process layer stack in paper order — OPAL (CRS,
INC bottom), ORTE (RML, app coordinator, INC middle), OMPI (PML/BTL/
CRCP/COLL, INC top of the library) — then hands control to the
application runner.  On the restart path the runner loads and restores
the local snapshot image before ``MPI_INIT``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.apps.appkit import AppRunner
from repro.ompi.layer import OmpiLayer
from repro.opal.layer import OpalLayer
from repro.orte.job import ProcSpec
from repro.orte.proc_layer import OrteProcLayer
from repro.simenv.process import SimProcess, run_process_main
from repro.util.errors import LaunchError
from repro.util.ids import ProcessName

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.universe import Universe
    from repro.simenv.node import Node


def build_app_process(
    universe: "Universe", node: "Node", spec: ProcSpec
) -> SimProcess:
    """Create one application rank on *node* and start it."""
    job = universe.jobs.get(spec.jobid)
    if job is None:
        raise LaunchError(f"launch for unknown job {spec.jobid}")
    params = job.params
    name = ProcessName(spec.jobid, spec.rank)
    if universe.lookup(name) is not None:
        raise LaunchError(f"{name} already running")
    proc = SimProcess(node, name, label=f"app{spec.jobid}.{spec.rank}")
    if spec.restart_from is not None:
        proc.env["restart"] = True
    registry = universe.make_registry()
    opal = OpalLayer(proc, registry, params)
    orte_layer = OrteProcLayer(proc, universe, opal)
    ompi = OmpiLayer(proc, universe, opal, orte_layer.rml, registry, params)
    runner = AppRunner(proc, universe, opal, orte_layer, ompi, spec)
    universe.register(proc)
    job.procs[spec.rank] = proc
    run_process_main(proc, runner.main_thread, name="app-main")
    return proc
