"""Payload sizing and (de)serialization helpers.

Payloads are ordinary Python objects.  NumPy arrays and byte strings
travel "as is" with their true size; anything else is sized by its
pickle.  ``copy_payload`` is used when a message is buffered into the
unexpected queue (MPI semantics: the sender's buffer is reusable after
send completion, so buffered data must be an independent copy).
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np


def nbytes_of(payload: Any) -> int:
    """True wire size of a payload in bytes."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, int, float, complex)):
        return 16
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64


def copy_payload(payload: Any) -> Any:
    """Independent copy for buffering; cheap for immutable types."""
    if payload is None or isinstance(
        payload, (bytes, str, bool, int, float, complex, frozenset, tuple)
    ):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
