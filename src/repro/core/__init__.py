"""The paper's contribution, glued together.

* :mod:`repro.core.ft_event` — the ``ft_event(state)`` protocol and the
  checkpoint/continue/restart state machine (paper sections 5.5, 6.5).
* :mod:`repro.core.inc` — Interlayer Notification Callback stack.
* :mod:`repro.core.checkpoint` — the synchronous in-application
  checkpoint API and the OPAL entry point.
"""

from repro.core.ft_event import FTState, drive_ft_event
from repro.core.inc import INCStack

__all__ = ["FTState", "drive_ft_event", "INCStack"]
