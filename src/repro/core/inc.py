"""Interlayer Notification Callbacks (paper sections 5.5 and 6.5).

An INC is a per-layer driver routine that runs its layer's
``ft_event`` calls in the proper order.  INCs are *stacked* by a
registration function that returns the previously registered callback;
the newly registered INC is responsible for invoking its predecessor,
which yields the paper's stack-like ordering and lets each INC act both
*before* and *after* the layers below it::

    prev = stack.register(my_inc)          # returns old top

    def my_inc(state, down):
        ...pre-work (full MPI still usable on CHECKPOINT)...
        yield from down(state)             # descend the stack
        ...post-work...

Open MPI registers three INCs — one per layer (OMPI, ORTE, OPAL) — and
an application may register a fourth on top (paper: "the application
can be viewed as a layer existing above the MPI library").
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.core.ft_event import FTState
from repro.simenv.kernel import SimGen

#: An INC takes ``(state, call_down)`` where ``call_down(state)`` is a
#: generator invoking the previously registered INC.
INCFunc = Callable[[FTState, Callable[[FTState], SimGen]], SimGen]


def _bottom(_state: FTState) -> SimGen:
    """The base of every stack: nothing below, nothing to do."""
    return None
    yield  # pragma: no cover - makes this a generator function


class INCStack:
    """The per-process INC registration point."""

    def __init__(self) -> None:
        self._entries: list[tuple[str, INCFunc]] = []
        #: trace of ``(layer, phase, state)`` tuples; populated when
        #: ``record_trace`` is enabled.  The E6 experiment and the
        #: Figure-2 reproduction read this.
        self.trace: list[tuple[str, str, FTState]] = []
        self.record_trace = False
        #: optional :class:`~repro.obs.trace.TraceRecorder`; when set
        #: (and enabled) each layer's traversal opens an ``inc.<layer>``
        #: span — the paper's Figure 2 with durations attached
        self.tracer = None
        #: label identifying the owning process in span attributes
        self.owner = ""
        self._invocations = 0

    def register(self, name: str, inc: INCFunc) -> Callable[[FTState], SimGen]:
        """Push *inc* on the stack; returns the previous top as a
        callable the new INC must invoke (paper: "it is the newly
        registered INC's responsibility to call the previous INC")."""
        previous = self._as_callable(len(self._entries))
        self._entries.append((name, inc))
        return previous

    def _as_callable(self, depth: int) -> Callable[[FTState], SimGen]:
        """Build the call-down entry for the stack below *depth*."""

        def call_down(state: FTState) -> SimGen:
            if depth == 0:
                yield from _bottom(state)
                return None
            name, inc = self._entries[depth - 1]
            if self.record_trace:
                self.trace.append((name, "enter", state))
            span = (
                self.tracer.begin(
                    f"inc.{name}",
                    cat="inc",
                    state=state.name,
                    owner=self.owner,
                    depth=depth,
                    seq=self._invocations,
                )
                if self.tracer is not None
                else None
            )
            below = self._as_callable(depth - 1)
            try:
                result = inc(state, below)
                if inspect.isgenerator(result):
                    result = yield from result
            finally:
                if span is not None:
                    span.end()
            if self.record_trace:
                self.trace.append((name, "exit", state))
            return result

        return call_down

    @property
    def layers(self) -> list[str]:
        """Registered layer names, bottom first."""
        return [name for name, _ in self._entries]

    def invoke(self, state: FTState) -> SimGen:
        """Run the whole stack top-down for *state*."""
        self._invocations += 1
        top = self._as_callable(len(self._entries))
        result = yield from top(state)
        return result
