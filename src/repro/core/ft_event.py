"""The ``ft_event`` protocol (paper section 5.5).

Every subsystem that must react to checkpoint/restart requests
implements ``int ft_event(int state)``.  The state values trace the
paper's protocol:

* ``CHECKPOINT`` — a checkpoint has been requested; prepare (quiesce,
  shut down non-checkpointable interconnects, flush).
* ``CONTINUE`` — the checkpoint completed and the *same* process is
  resuming normal operation.
* ``RESTART`` — the process was just reconstructed from a snapshot on a
  possibly different node; re-establish external state (reconnect
  peers, re-bind endpoints).
* ``HALT`` — the user asked for checkpoint-and-terminate; tear down.

A subsystem's ``ft_event`` may be a plain function (instantaneous) or a
generator (it needs to block, e.g. the PML draining its channels);
:func:`drive_ft_event` normalizes both shapes for INC drivers.
"""

from __future__ import annotations

import enum
import inspect
from typing import Any

from repro.simenv.kernel import SimGen


class FTState(enum.IntEnum):
    """Checkpoint/restart protocol states passed to ``ft_event``."""

    CHECKPOINT = 1
    CONTINUE = 2
    RESTART = 3
    HALT = 4


def drive_ft_event(subsystem: Any, state: FTState) -> SimGen:
    """Invoke ``subsystem.ft_event(state)``, blocking if it needs to.

    Use as ``yield from drive_ft_event(comp, state)``.  Missing
    ``ft_event`` attributes are treated as no-ops so passive objects
    can sit in notification lists.
    """
    fn = getattr(subsystem, "ft_event", None)
    if fn is None:
        return None
    result = fn(state)
    if inspect.isgenerator(result):
        result = yield from result
    return result
