"""Shared-nothing, process-parallel execution of a fleet grid.

Each :class:`~repro.fleet.spec.GridCell` runs in its own simulated
universe inside a pool worker (:func:`run_cell` — a module-level
function so :class:`concurrent.futures.ProcessPoolExecutor` pickles it
by reference; the payloads and results are plain dicts).  Nothing is
shared between cells, so the only coordination is the seed derivation
in the spec — which is a pure function — and an N-worker run is
byte-identical to a serial one.

**Isolation.**  A wedged run cannot hang the sweep: the worker arms a
``SIGALRM`` wall-clock watchdog around the simulation and reports a
timeout in-band; any other exception is likewise caught and returned
as a failed result.  The parent retries a failed cell up to
``FleetSpec.retries`` times (campaign outcomes where the *job* failed
are valid results, not errors — only worker crashes/timeouts retry).

**Progress.**  After every settled cell the runner emits one line —
runs done/failed, ETA from the mean cell wall time, and the aggregate
simulated events/sec from the merged ``KernelStats`` — through a
caller-supplied callback (default: the module logger).
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import Callable

from repro.fleet.report import CellResult, FleetReport
from repro.fleet.spec import FleetSpec
from repro.simenv.kernel import KernelStats
from repro.util.errors import SimInterrupt
from repro.util.logging import get_logger

log = get_logger("fleet.runner")


class FleetTimeout(SimInterrupt):
    """A cell exceeded its wall-clock budget (watchdog fired).

    A :class:`~repro.util.errors.SimInterrupt` so the DES kernel lets
    it pass straight through ``run()`` instead of recording it as a
    crash of whichever simulated thread the alarm landed in.
    """


def _arm_watchdog(timeout_s: float | None):
    """Arm a SIGALRM wall-clock watchdog; returns a disarm token.

    Only possible on the main thread of a process with SIGALRM (pool
    workers qualify); otherwise the cell runs unguarded — the parent's
    retry policy still bounds the damage to one worker.
    """
    if not timeout_s or timeout_s <= 0:
        return None
    if not hasattr(signal, "SIGALRM"):
        return None  # pragma: no cover - non-POSIX
    if threading.current_thread() is not threading.main_thread():
        return None  # pragma: no cover - exotic embedding

    def on_alarm(signum, frame):
        raise FleetTimeout(f"run exceeded {timeout_s:g}s wall clock")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    return previous


def _disarm_watchdog(token) -> None:
    if token is None:
        return
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    signal.signal(signal.SIGALRM, token)


def _scheduler_summary(universe) -> dict | None:
    """Checkpoint-scheduler audit trail (E13 reads this per cell)."""
    sched = getattr(universe.hnp, "ckpt_scheduler", None)
    if sched is None:
        return None
    return {
        "taken": len(sched.taken),
        "skipped": len(sched.skipped),
        "tuned_intervals_s": [
            d["interval_s"]
            for d in sched.decisions
            if d.get("mtbf_s") is not None
        ],
    }


def run_cell(payload: dict) -> dict:
    """Execute one grid cell; never raises — errors return in-band.

    Runs in a pool worker (or inline for the serial path): builds a
    fresh universe from the payload's derived cluster seed, launches
    the app, drives the fault campaign to settlement, and ships the
    campaign report + kernel stats back as plain dicts.
    """
    from repro.mca.params import MCAParams
    from repro.orte.universe import Universe
    from repro.simenv.campaign import run_campaign
    from repro.simenv.cluster import Cluster, ClusterSpec
    from repro.tools.api import ompi_run

    out = {
        "key": payload["key"],
        "coords": dict(payload["coords"]),
        "cluster_seed": payload["cluster_seed"],
        "ok": False,
        "error": None,
        "report": None,
        "scheduler": None,
        "kernel_stats": None,
    }
    started = time.perf_counter()
    token = _arm_watchdog(payload.get("timeout_s"))
    try:
        spec = ClusterSpec(
            seed=payload["cluster_seed"], **payload["cluster_kwargs"]
        )
        universe = Universe(
            Cluster(spec), MCAParams(dict(payload["mca_params"]))
        )
        job = ompi_run(
            universe,
            payload["app"],
            payload["np"],
            args=dict(payload["app_args"]),
            wait=False,
        )
        report = run_campaign(universe, job, payload["campaign"])
        out["ok"] = True
        out["report"] = report.to_dict()
        out["scheduler"] = _scheduler_summary(universe)
        out["kernel_stats"] = universe.kernel.stats.to_dict()
    except FleetTimeout as exc:
        out["error"] = f"timeout: {exc}"
    except Exception as exc:
        out["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        _disarm_watchdog(token)
    out["wall_s"] = time.perf_counter() - started
    return out


class FleetRunner:
    """Shard a :class:`FleetSpec`'s grid across worker processes."""

    def __init__(
        self,
        spec: FleetSpec,
        progress: Callable[[str], None] | None = None,
    ):
        self.spec = spec
        self._progress = progress if progress is not None else log.info

    def run(self, workers: int = 1) -> FleetReport:
        """Execute every cell; returns the cross-run meta-report.

        ``workers <= 1`` runs cells inline in this process (the fair
        serial baseline for speedup measurements); otherwise a process
        pool of that size is used.  Results are ordered by the spec's
        deterministic cell order either way.
        """
        cells = self.spec.cells()
        payloads = [self.spec.payload(cell) for cell in cells]
        started = time.perf_counter()
        if workers <= 1:
            outs = self._run_serial(payloads, started)
        else:
            outs = self._run_pool(payloads, workers, started)
        wall = time.perf_counter() - started
        report = FleetReport(
            name=self.spec.name,
            workers=max(1, workers),
            wall_s=wall,
            cells=[
                CellResult(
                    key=out["key"],
                    coords=out["coords"],
                    cluster_seed=out["cluster_seed"],
                    ok=out["ok"],
                    attempts=out["attempts"],
                    wall_s=out["wall_s"],
                    error=out["error"],
                    report=out["report"],
                    scheduler=out["scheduler"],
                    kernel_stats=out["kernel_stats"],
                )
                for out in outs
            ],
            spec=self.spec.describe(),
        )
        agg = report.aggregates()
        self._progress(
            f"fleet {self.spec.name}: {agg['ok']}/{agg['runs']} ok "
            f"({agg['failed']} failed) in {wall:.1f}s wall with "
            f"{report.workers} worker(s)"
        )
        return report

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, payloads: list[dict], started: float) -> list[dict]:
        outs: list[dict] = []
        for index, payload in enumerate(payloads):
            attempts = 1
            out = run_cell(payload)
            while not out["ok"] and attempts <= self.spec.retries:
                attempts += 1
                out = run_cell(payload)
            out["attempts"] = attempts
            outs.append(out)
            self._emit_progress(outs, len(payloads), started)
        return outs

    # -- pool path -----------------------------------------------------------

    def _run_pool(
        self, payloads: list[dict], workers: int, started: float
    ) -> list[dict]:
        # Fork start-up is cheap and inherits the imported modules; the
        # cells never share mutable state, so fork's usual hazards do
        # not apply.  Fall back to the platform default elsewhere.
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context()
        results: dict[int, dict] = {}
        attempts = dict.fromkeys(range(len(payloads)), 1)
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            pending = {
                pool.submit(run_cell, payload): index
                for index, payload in enumerate(payloads)
            }
            while pending:
                done, _ = futures_wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    try:
                        out = future.result()
                    except Exception as exc:
                        # The worker process itself died (e.g. a
                        # BrokenProcessPool); synthesize a failed result
                        # so the retry/report machinery sees it.
                        out = self._broken_result(payloads[index], exc)
                    if not out["ok"] and attempts[index] <= self.spec.retries:
                        attempts[index] += 1
                        try:
                            pending[pool.submit(run_cell, payloads[index])] = (
                                index
                            )
                            continue
                        except Exception as exc:  # pool unusable
                            out = self._broken_result(payloads[index], exc)
                    out["attempts"] = attempts[index]
                    results[index] = out
                    self._emit_progress(
                        list(results.values()), len(payloads), started
                    )
        return [results[index] for index in sorted(results)]

    @staticmethod
    def _broken_result(payload: dict, exc: BaseException) -> dict:
        return {
            "key": payload["key"],
            "coords": dict(payload["coords"]),
            "cluster_seed": payload["cluster_seed"],
            "ok": False,
            "error": f"worker died: {type(exc).__name__}: {exc}",
            "report": None,
            "scheduler": None,
            "kernel_stats": None,
            "wall_s": 0.0,
        }

    # -- progress ------------------------------------------------------------

    def _emit_progress(
        self, outs: list[dict], total: int, started: float
    ) -> None:
        done = len(outs)
        failed = sum(1 for out in outs if not out["ok"])
        elapsed = time.perf_counter() - started
        eta = (elapsed / done) * (total - done) if done else float("inf")
        merged = KernelStats()
        for out in outs:
            if out.get("kernel_stats"):
                merged.merge(out["kernel_stats"])
        rate = merged.to_dict()["events_per_cpu_sec"]
        self._progress(
            f"fleet {self.spec.name}: {done}/{total} runs "
            f"({failed} failed), eta {eta:.1f}s, "
            f"{rate:,.0f} events/cpu-sec aggregate"
        )
