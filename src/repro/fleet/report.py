"""Cross-run meta-reports for fleet sweeps.

A :class:`FleetReport` holds one :class:`CellResult` per grid cell —
the cell's :class:`~repro.simenv.campaign.CampaignReport` (as a dict,
exactly as the worker shipped it), its kernel stats, and the runner's
own bookkeeping (attempts, wall clock, errors).  Timing and retry
metadata live *outside* the campaign report payload, so the
byte-identical serial-vs-parallel comparison (``reports_by_key``)
covers only simulation outcomes, never wall-clock noise.

Aggregation follows E12's convention: per-cell ``KernelStats`` blocks
fold together via :meth:`KernelStats.merge` (counters add, peaks max,
rates recompute from summed totals), so the meta-report carries a
fleet-wide events-per-CPU-second that the E14 gate can hold to the
same floor E12 enforces for a single kernel.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.simenv.kernel import KernelStats


@dataclass
class CellResult:
    """Outcome of one grid cell, as recorded by the runner."""

    key: str
    coords: dict
    cluster_seed: int
    ok: bool
    attempts: int
    wall_s: float
    error: str | None = None
    #: CampaignReport.to_dict() of the run (None on failure)
    report: dict | None = None
    #: checkpoint-scheduler audit (taken/skipped/tuned intervals)
    scheduler: dict | None = None
    #: KernelStats.to_dict() of the cell's kernel
    kernel_stats: dict | None = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class FleetReport:
    """Everything one fleet run produced."""

    name: str
    workers: int
    wall_s: float
    cells: list[CellResult] = field(default_factory=list)
    #: FleetSpec.describe() of the sweep that produced this
    spec: dict = field(default_factory=dict)

    def cell(self, key: str) -> CellResult:
        for cell in self.cells:
            if cell.key == key:
                return cell
        raise KeyError(key)

    def reports_by_key(self) -> dict[str, dict | None]:
        """Per-cell campaign reports — the determinism surface.

        Exactly what each worker's ``run_campaign`` returned, free of
        wall-clock and retry metadata: serial and N-worker runs of the
        same spec must produce byte-identical JSON for this mapping.
        """
        return {cell.key: cell.report for cell in self.cells}

    def aggregates(self) -> dict:
        """Cross-run totals over the cells that produced a report."""
        done = [c for c in self.cells if c.ok and c.report is not None]
        reports = [c.report for c in done]
        fault_counts: dict[str, int] = {}
        for report in reports:
            for kind, count in report.get("fault_counts", {}).items():
                fault_counts[kind] = fault_counts.get(kind, 0) + count
        return {
            "runs": len(self.cells),
            "ok": len(done),
            "failed": len(self.cells) - len(done),
            "completed": sum(1 for r in reports if r["completed"]),
            "faults": sum(len(r["failures"]) for r in reports),
            "fault_counts": fault_counts,
            "restarts": sum(r["restarts"] for r in reports),
            "committed_checkpoints": sum(
                r["committed_checkpoints"] for r in reports
            ),
            "work_lost_s": sum(r["work_lost_s"] for r in reports),
            "recovery_latency_s": sum(
                r["recovery_latency_s"] for r in reports
            ),
            "makespan_s_total": sum(r["makespan_s"] for r in reports),
            "attempts": sum(c.attempts for c in self.cells),
        }

    def kernel_stats(self) -> dict:
        """Fleet-wide KernelStats: every cell's block merged into one."""
        merged = KernelStats()
        for cell in self.cells:
            if cell.kernel_stats:
                merged.merge(cell.kernel_stats)
        return merged.to_dict()

    def to_dict(self) -> dict:
        return {
            "fleet": self.name,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "spec": self.spec,
            "cells": {cell.key: cell.to_dict() for cell in self.cells},
            "aggregate": self.aggregates(),
            "kernel_stats": self.kernel_stats(),
        }
