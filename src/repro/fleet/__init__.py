"""Process-parallel campaign fleet runner.

Every experiment that matters is a *grid* of independent simulated
universes — seeds × cluster shapes × MCA parameters × fault campaigns.
This package shards such grids across CPU cores with deterministic
per-cell seed derivation (an N-worker run is byte-identical to a
serial one), per-run timeout/retry isolation, live progress, and a
cross-run meta-report.  See docs/FLEET.md.
"""

from repro.fleet.report import CellResult, FleetReport
from repro.fleet.runner import FleetRunner, FleetTimeout, run_cell
from repro.fleet.spec import FleetSpec, GridCell, derive_cell_seed

__all__ = [
    "CellResult",
    "FleetReport",
    "FleetRunner",
    "FleetSpec",
    "FleetTimeout",
    "GridCell",
    "derive_cell_seed",
    "run_cell",
]
