"""Canonical fleet grids shared by benchmarks, tests, and the CLI.

E9 and E13 used to hand-roll serial loops over their sweep points;
their grids now live here as :class:`~repro.fleet.spec.FleetSpec`
builders so the benchmarks, the E14 throughput gate, and the
``ompi-trace fleet`` subcommand all drive the exact same sweeps.

Every grid includes one fault-free **baseline** cell per replica
(params ``none``, campaign ``baseline`` with a zero fault budget): its
campaign report's ``makespan_s`` is the replica's fault-free makespan,
the denominator of every effective-progress score — computed under the
same derived seed as the replica's faulty cells.
"""

from __future__ import annotations

from repro.fleet.spec import FleetSpec, GridCell
from repro.simenv.campaign import CampaignSpec, FaultSpec

#: ~2 sim-seconds of fault-free runtime (as in E9/E13 historically)
CHURN = {"loops": 200, "compute_s": 0.01, "state_bytes": 4 << 20}
N_NODES = 6
NP = 4

#: adaptive-cadence configuration raced by E13
E13_ADAPTIVE_PARAMS = {
    "snapc_full_checkpoint_every": "0.25",
    "snapc_sched_adaptive": "1",
    "snapc_sched_min_every": "0.05",
    "snapc_sched_max_every": "0.6",
}
E13_FIXED_INTERVALS = [0.15, 0.3, 0.6]
E13_MTBF_S = 0.5
E13_MAX_FAILURES = 3

E9_INTERVALS = [0.0, 0.15, 0.25, 0.4]
E9_MTBF_S = 0.6
E9_MAX_FAILURES = 2

#: let the job reach steady state before the first fault may fire
START_AT = 0.35

#: hostile mix: crashes plus attacks on the C/R machinery itself
HOSTILE_FAULTS = (
    FaultSpec("node_crash", weight=2.0),
    FaultSpec("stable_write_fail", weight=1.0, duration_s=0.1),
    FaultSpec("stable_slow", weight=1.0, duration_s=0.15, factor=6.0),
    FaultSpec("net_partition", weight=1.0, duration_s=0.1),
    FaultSpec("meta_corrupt", weight=1.0),
)

#: the fault-free control campaign (zero fault budget)
BASELINE_CAMPAIGN = CampaignSpec(mtbf_s=1.0, max_failures=0)


def _with_baselines(
    seeds: tuple[int, ...], sweep: list[tuple[str, str]]
) -> tuple[GridCell, ...]:
    """Product of sweep (params, campaign) pairs per replica, plus one
    fault-free baseline cell per replica."""
    cells: list[GridCell] = []
    for seed in seeds:
        for params_label, campaign_label in sweep:
            cells.append(GridCell(seed, "default", params_label, campaign_label))
        cells.append(GridCell(seed, "default", "none", "baseline"))
    return tuple(cells)


def e13_fleet(
    seeds: tuple[int, ...] = (0, 1), fleet_seed: int = 20070326
) -> FleetSpec:
    """E13's grid: fixed cadences + adaptive × crash-only/hostile mixes.

    Per replica: 4 configurations × 2 fault mixes + 1 baseline = 9
    cells; configurations within a replica share the derived seed, so
    they face the identical Poisson arrival process.
    """
    params: dict[str, dict] = {
        f"fixed_{interval:g}": {"snapc_full_checkpoint_every": str(interval)}
        for interval in E13_FIXED_INTERVALS
    }
    params["adaptive"] = dict(E13_ADAPTIVE_PARAMS)
    params["none"] = {}
    sweep = [
        (params_label, mix)
        for params_label in sorted(set(params) - {"none"})
        for mix in ("crash_only", "hostile")
    ]
    return FleetSpec(
        name="e13-adaptive-cadence",
        app="churn",
        np=NP,
        app_args=dict(CHURN),
        seeds=tuple(seeds),
        clusters={"default": {"n_nodes": N_NODES}},
        params=params,
        campaigns={
            "crash_only": CampaignSpec(
                mtbf_s=E13_MTBF_S,
                max_failures=E13_MAX_FAILURES,
                start_at=START_AT,
                faults=(FaultSpec("node_crash"),),
            ),
            "hostile": CampaignSpec(
                mtbf_s=E13_MTBF_S,
                max_failures=E13_MAX_FAILURES,
                start_at=START_AT,
                faults=HOSTILE_FAULTS,
            ),
            "baseline": BASELINE_CAMPAIGN,
        },
        base_params={"orte_errmgr_autorecover": "1"},
        fleet_seed=fleet_seed,
        timeout_s=300.0,
        cells_override=_with_baselines(tuple(seeds), sweep),
    )


def e9_fleet(
    seeds: tuple[int, ...] = (0, 1), fleet_seed: int = 20070326
) -> FleetSpec:
    """E9's grid: checkpoint-interval sweep under a crash campaign.

    ``interval_off`` is the control — no periodic checkpoints, so the
    first crash is fatal.
    """
    params: dict[str, dict] = {
        (
            "interval_off" if interval == 0 else f"interval_{interval:g}"
        ): {"snapc_full_checkpoint_every": str(interval)}
        for interval in E9_INTERVALS
    }
    params["none"] = {}
    sweep = [
        (params_label, "crashes")
        for params_label in sorted(set(params) - {"none"})
    ]
    return FleetSpec(
        name="e9-recovery-economics",
        app="churn",
        np=NP,
        app_args=dict(CHURN),
        seeds=tuple(seeds),
        clusters={"default": {"n_nodes": N_NODES}},
        params=params,
        campaigns={
            "crashes": CampaignSpec(
                mtbf_s=E9_MTBF_S,
                max_failures=E9_MAX_FAILURES,
                start_at=START_AT,
            ),
            "baseline": BASELINE_CAMPAIGN,
        },
        base_params={"orte_errmgr_autorecover": "1"},
        fleet_seed=fleet_seed,
        timeout_s=300.0,
        cells_override=_with_baselines(tuple(seeds), sweep),
    )


def demo_fleet(seeds: tuple[int, ...] = (0,)) -> FleetSpec:
    """A small grid for the ``ompi-trace fleet`` demo: two cadences
    under a short crash campaign, plus the baseline.

    Four nodes for four ranks, so the crash always lands on a rank's
    node: the dense cadence demonstrates a real recovery, the sparse
    one a fatal crash (no interval committed yet)."""
    churn = {"loops": 80, "compute_s": 0.01, "state_bytes": 1 << 20}
    params = {
        "interval_0.15": {"snapc_full_checkpoint_every": "0.15"},
        "interval_0.3": {"snapc_full_checkpoint_every": "0.3"},
        "none": {},
    }
    sweep = [("interval_0.15", "crashes"), ("interval_0.3", "crashes")]
    return FleetSpec(
        name="demo",
        app="churn",
        np=NP,
        app_args=churn,
        seeds=tuple(seeds),
        clusters={"default": {"n_nodes": NP}},
        params=params,
        campaigns={
            "crashes": CampaignSpec(
                mtbf_s=0.4, max_failures=1, start_at=0.25
            ),
            "baseline": BASELINE_CAMPAIGN,
        },
        base_params={"orte_errmgr_autorecover": "1"},
        fleet_seed=20070326,
        timeout_s=120.0,
        cells_override=_with_baselines(tuple(seeds), sweep),
    )
