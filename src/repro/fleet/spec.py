"""Fleet specifications: campaign sweep grids with derived seeds.

A :class:`FleetSpec` declares a sweep as labelled axes — replica seeds
× cluster shapes × MCA parameter sets × fault campaigns — and the
runner executes every :class:`GridCell` of the grid in its own
process-isolated universe.

**Seed derivation.**  Each cell's cluster seed is a stable sha256 hash
of the fleet seed and the cell's *seed-axis* coordinate (the replica
number), mirroring how :mod:`repro.simenv.rng` derives per-stream
seeds from the cluster seed.  Two consequences:

* the derived seed depends only on the spec, never on worker count or
  execution order, so an N-worker fleet run is byte-identical to a
  serial one; and
* by default every configuration within one replica shares the same
  cluster seed — and therefore the identical Poisson fault-arrival
  process — so configurations race each other under the same failures
  (the E13 comparison premise).  Listing more axes in ``seed_axes``
  decorrelates them instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from itertools import product

from repro.simenv.campaign import CampaignSpec


def derive_cell_seed(fleet_seed: int, *coords: object) -> int:
    """Stable 64-bit child seed from the fleet seed + grid coordinates.

    Same construction as ``repro.simenv.rng._derive_seed``: sha256 over
    a readable label, first 8 bytes little-endian.  Pure function of
    its arguments — no global state, no execution order.
    """
    label = "fleet:" + ":".join(str(c) for c in (fleet_seed, *coords))
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class GridCell:
    """One run of the sweep, addressed by its axis labels."""

    seed: int
    cluster: str
    params: str
    campaign: str

    @property
    def key(self) -> str:
        """Stable per-cell identifier (dict key in the meta-report)."""
        return f"s{self.seed}/{self.cluster}/{self.params}/{self.campaign}"


@dataclass
class FleetSpec:
    """Declarative description of one campaign sweep.

    ``clusters`` / ``params`` / ``campaigns`` map axis labels to
    :class:`~repro.simenv.cluster.ClusterSpec` kwargs, MCA parameter
    dicts (merged over ``base_params``), and
    :class:`~repro.simenv.campaign.CampaignSpec` objects respectively.
    ``cells`` pins an explicit grid (e.g. a sweep plus one fault-free
    baseline cell per replica); when omitted the grid is the full
    product of the axes.
    """

    name: str
    app: str
    np: int
    app_args: dict = field(default_factory=dict)
    seeds: tuple[int, ...] = (0,)
    clusters: dict[str, dict] = field(
        default_factory=lambda: {"default": {}}
    )
    params: dict[str, dict] = field(default_factory=lambda: {"default": {}})
    campaigns: dict[str, CampaignSpec] = field(default_factory=dict)
    #: MCA parameters every cell starts from (cell params override)
    base_params: dict = field(default_factory=dict)
    fleet_seed: int = 20070326
    #: which GridCell fields enter the seed hash (default: replicas
    #: share arrivals across configurations, see module docstring)
    seed_axes: tuple[str, ...] = ("seed",)
    #: per-run wall-clock budget (None = unbounded)
    timeout_s: float | None = None
    #: extra attempts per cell after a worker error or timeout
    retries: int = 1
    #: explicit grid; None = full product of the axes
    cells_override: tuple[GridCell, ...] | None = None

    def cells(self) -> list[GridCell]:
        """The grid, in deterministic submission order, validated."""
        if self.cells_override is not None:
            grid = list(self.cells_override)
        else:
            grid = [
                GridCell(seed, cluster, params, campaign)
                for seed, cluster, params, campaign in product(
                    self.seeds,
                    sorted(self.clusters),
                    sorted(self.params),
                    sorted(self.campaigns),
                )
            ]
        seen: set[str] = set()
        for cell in grid:
            if cell.cluster not in self.clusters:
                raise ValueError(f"unknown cluster label {cell.cluster!r}")
            if cell.params not in self.params:
                raise ValueError(f"unknown params label {cell.params!r}")
            if cell.campaign not in self.campaigns:
                raise ValueError(f"unknown campaign label {cell.campaign!r}")
            if cell.key in seen:
                raise ValueError(f"duplicate grid cell {cell.key}")
            seen.add(cell.key)
        return grid

    def cell_seed(self, cell: GridCell) -> int:
        """The derived cluster seed for *cell* (see module docstring)."""
        coords = [getattr(cell, axis) for axis in self.seed_axes]
        return derive_cell_seed(self.fleet_seed, *coords)

    def payload(self, cell: GridCell) -> dict:
        """Self-contained, picklable work order for one cell.

        Plain dicts and a frozen CampaignSpec only — this is what
        crosses the process boundary to ``repro.fleet.runner.run_cell``.
        """
        merged = dict(self.base_params)
        merged.update(self.params[cell.params])
        return {
            "key": cell.key,
            "coords": {
                "seed": cell.seed,
                "cluster": cell.cluster,
                "params": cell.params,
                "campaign": cell.campaign,
            },
            "app": self.app,
            "np": self.np,
            "app_args": dict(self.app_args),
            "cluster_kwargs": dict(self.clusters[cell.cluster]),
            "cluster_seed": self.cell_seed(cell),
            "mca_params": merged,
            "campaign": self.campaigns[cell.campaign],
            "timeout_s": self.timeout_s,
        }

    def describe(self) -> dict:
        """JSON-able summary for meta-reports and bench artifacts."""
        return {
            "name": self.name,
            "app": self.app,
            "np": self.np,
            "app_args": dict(self.app_args),
            "fleet_seed": self.fleet_seed,
            "seed_axes": list(self.seed_axes),
            "seeds": list(self.seeds),
            "clusters": {k: dict(v) for k, v in self.clusters.items()},
            "params": {k: dict(v) for k, v in self.params.items()},
            "base_params": dict(self.base_params),
            "campaigns": {
                label: {
                    "mtbf_s": spec.mtbf_s,
                    "max_failures": spec.max_failures,
                    "start_at": spec.start_at,
                    "faults": [
                        {
                            "kind": f.kind,
                            "weight": f.weight,
                            "duration_s": f.duration_s,
                            "factor": f.factor,
                        }
                        for f in spec.faults
                    ],
                }
                for label, spec in self.campaigns.items()
            },
            "cells": [cell.key for cell in self.cells()],
            "timeout_s": self.timeout_s,
            "retries": self.retries,
        }
