"""MCA framework: a named internal API plus its registered components.

A framework is opened against an *MCA parameter set* and a *context*
(usually the process or layer object it serves).  Opening runs
component selection:

1. If ``params[<framework>]`` names a component, that component must be
   available (``query() == True``) or selection fails loudly — a forced
   component that cannot run is a user error, mirroring Open MPI.
2. Otherwise all registered components are queried and the available
   one with the highest priority is selected.

The selected component is exposed as ``framework.module`` (Open MPI
vocabulary for "the selected component's function table").
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from repro.mca.params import MCAParams
from repro.util.errors import ComponentNotFoundError, ComponentSelectError
from repro.util.logging import get_logger

C = TypeVar("C")

log = get_logger("mca.framework")


class Framework(Generic[C]):
    """A framework with runtime-selectable components.

    ``Framework`` instances are lightweight and per-process: each
    simulated process opens its own framework instances so component
    state is process-local (as in Open MPI, where components live in
    each MPI process).
    """

    def __init__(self, name: str):
        self.name = name
        self._factories: dict[str, Callable[[MCAParams], C]] = {}
        self._selected: C | None = None

    # -- registration ----------------------------------------------------

    def register(self, factory: Callable[[MCAParams], C]) -> None:
        """Register a component factory (usually the component class)."""
        comp_name = getattr(factory, "name", None)
        if not comp_name:
            raise ValueError(
                f"component factory {factory!r} has no 'name' attribute"
            )
        if comp_name in self._factories:
            raise ValueError(
                f"framework {self.name!r}: duplicate component {comp_name!r}"
            )
        self._factories[comp_name] = factory

    @property
    def component_names(self) -> list[str]:
        return sorted(self._factories)

    # -- selection ---------------------------------------------------------

    def open(self, params: MCAParams | None = None, context: object | None = None) -> C:
        """Run component selection and open the winner."""
        params = params or MCAParams()
        forced = params.get(self.name)
        if forced:
            factory = self._factories.get(forced)
            if factory is None:
                raise ComponentNotFoundError(self.name, forced)
            component = factory(params)
            if not component.query(context):  # type: ignore[attr-defined]
                raise ComponentSelectError(
                    f"forced component {self.name}:{forced} is unavailable"
                )
            candidates = [component]
        else:
            candidates = []
            for factory in self._factories.values():
                component = factory(params)
                if component.query(context):  # type: ignore[attr-defined]
                    candidates.append(component)
            candidates.sort(
                key=lambda c: (c.priority, c.name),  # type: ignore[attr-defined]
                reverse=True,
            )
        if not candidates:
            raise ComponentSelectError(
                f"framework {self.name!r}: no available component "
                f"(registered: {', '.join(self.component_names) or 'none'})"
            )
        winner = candidates[0]
        winner.open(context)  # type: ignore[attr-defined]
        self._selected = winner
        log.debug("framework %s selected %s", self.name, winner)
        return winner

    def open_all(self, params: MCAParams | None = None, context: object | None = None) -> list[C]:
        """Open every available component, highest priority first.

        Used by multi-select frameworks (BTL): all usable components
        coexist and the caller picks per use.  The parameter value for
        the framework name is interpreted as an include list
        (``--mca btl tcp,sm``).
        """
        params = params or MCAParams()
        include = params.get_list(self.name) or None
        selected: list[C] = []
        for name in sorted(self._factories):
            if include is not None and name not in include:
                continue
            component = self._factories[name](params)
            if component.query(context):  # type: ignore[attr-defined]
                component.open(context)  # type: ignore[attr-defined]
                selected.append(component)
        if not selected:
            raise ComponentSelectError(
                f"framework {self.name!r}: no available component"
            )
        selected.sort(
            key=lambda c: (c.priority, c.name),  # type: ignore[attr-defined]
            reverse=True,
        )
        return selected

    @property
    def module(self) -> C:
        if self._selected is None:
            raise ComponentSelectError(f"framework {self.name!r} is not open")
        return self._selected

    @property
    def is_open(self) -> bool:
        return self._selected is not None

    def close(self) -> None:
        if self._selected is not None:
            self._selected.close()  # type: ignore[attr-defined]
            self._selected = None
