"""MCA component base class.

A *component* is one concrete implementation of a framework's API.
Components carry:

* ``name`` — the selection key (``--mca <framework> <name>``),
* ``priority`` — used when no component is forced: the openable
  component with the highest priority wins,
* ``query()`` — availability probe; a component may decline to run in
  the current environment (e.g. the ``ib`` BTL declines when the node
  has no InfiniBand NIC).

Framework base classes subclass :class:`Component` to add their API
(e.g. ``CRSComponent.checkpoint(...)``), and concrete components
subclass those.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.params import MCAParams


class Component:
    """Base class for all MCA components."""

    #: Framework this component belongs to (e.g. ``"crs"``).
    framework_name: str = ""
    #: Selection key of the component (e.g. ``"simcr"``).
    name: str = ""
    #: Selection priority; higher wins when nothing is forced.
    priority: int = 0
    #: Component version, recorded in snapshot metadata.
    version: str = "1.0.0"

    def __init__(self, params: "MCAParams | None" = None):
        from repro.mca.params import MCAParams

        self.params = params if params is not None else MCAParams()
        self._opened = False

    # -- lifecycle -----------------------------------------------------------

    def query(self, context: object | None = None) -> bool:
        """Return True if this component can run in *context*.

        The default is unconditionally available.  Components that
        depend on environment features (hardware, services) override
        this — returning False removes the component from selection
        without error.
        """
        return True

    def open(self, context: object | None = None) -> None:
        """Initialize the component.  Called once, before first use."""
        self._opened = True

    def close(self) -> None:
        """Release component resources.  Idempotent."""
        self._opened = False

    @property
    def is_open(self) -> bool:
        return self._opened

    # -- ft_event ------------------------------------------------------------

    def ft_event(self, state: int) -> None:
        """Fault-tolerance notification hook (paper section 5.5).

        Every framework component may be notified around
        checkpoint/restart requests.  ``state`` is one of the
        ``repro.core.ft_event.FTState`` values.  The default is a
        no-op; components owning external state (network endpoints,
        file handles) override it.
        """

    # -- misc ------------------------------------------------------------

    def param(self, suffix: str, default: str | None = None) -> str | None:
        """Read ``<framework>_<name>_<suffix>`` from the parameter set."""
        key = f"{self.framework_name}_{self.name}_{suffix}"
        return self.params.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.framework_name}:{self.name}>"


def component_of(framework: str, name: str, priority: int = 0):
    """Class decorator setting component identity fields.

    Example::

        @component_of("crs", "simcr", priority=20)
        class SimCRComponent(CRSComponent): ...
    """

    def decorate(cls):
        cls.framework_name = framework
        cls.name = name
        cls.priority = priority
        return cls

    return decorate
