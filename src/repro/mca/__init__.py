"""Modular Component Architecture (MCA).

The MCA is Open MPI's plugin system: internal APIs are defined as
*frameworks* (e.g. the process-launch framework), each framework holds
one or more *components* (specific implementations, e.g. SLURM and RSH
launchers), and components are selected at run time — optionally forced
by *MCA parameters* (the ``--mca key value`` command-line knobs).

This reproduction uses the same structure for every framework in the
paper: ``opal.crs``, ``orte.snapc``, ``orte.filem``, ``orte.plm``,
``ompi.pml``, ``ompi.btl``, ``ompi.crcp``, ``ompi.coll``.
"""

from repro.mca.component import Component, component_of
from repro.mca.framework import Framework
from repro.mca.params import MCAParams
from repro.mca.registry import FrameworkRegistry

__all__ = [
    "Component",
    "component_of",
    "Framework",
    "MCAParams",
    "FrameworkRegistry",
]
