"""MCA parameter system — the ``--mca key value`` run-time knobs.

Parameters are string-keyed.  Conventional keys::

    <framework>                  force component selection, e.g. "crs" -> "simcr"
    <framework>_<component>_<p>  component-specific knob
    <framework>_base_<p>         framework-wide knob

Values are stored as strings (like Open MPI) with typed accessors.
A parameter set is attached to a universe/job at launch and recorded in
global snapshot metadata so ``ompi-restart`` can re-create the job with
the same configuration (paper section 4: the user need not remember the
original runtime parameters).
"""

from __future__ import annotations

from typing import Iterator, Mapping


class MCAParams:
    """An immutable-ish bag of MCA parameters with typed accessors."""

    def __init__(self, values: Mapping[str, object] | None = None):
        self._values: dict[str, str] = {}
        if values:
            for key, val in values.items():
                self.set(key, val)

    # -- mutation ----------------------------------------------------------

    def set(self, key: str, value: object) -> None:
        if not key or not isinstance(key, str):
            raise ValueError("MCA parameter keys must be non-empty strings")
        if isinstance(value, bool):
            value = "1" if value else "0"
        self._values[key] = str(value)

    def update(self, other: "MCAParams | Mapping[str, object]") -> None:
        items = other._values if isinstance(other, MCAParams) else other
        for key, val in items.items():
            self.set(key, val)

    # -- accessors ---------------------------------------------------------

    def get(self, key: str, default: str | None = None) -> str | None:
        return self._values.get(key, default)

    def get_int(self, key: str, default: int = 0) -> int:
        raw = self._values.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ValueError(f"MCA parameter {key}={raw!r} is not an int") from exc

    def get_float(self, key: str, default: float = 0.0) -> float:
        raw = self._values.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ValueError(f"MCA parameter {key}={raw!r} is not a float") from exc

    def get_bool(self, key: str, default: bool = False) -> bool:
        raw = self._values.get(key)
        if raw is None:
            return default
        return raw.strip().lower() in {"1", "true", "yes", "on"}

    def get_list(self, key: str, default: list[str] | None = None) -> list[str]:
        raw = self._values.get(key)
        if raw is None:
            return list(default or [])
        return [part.strip() for part in raw.split(",") if part.strip()]

    # -- container protocol --------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MCAParams) and self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"MCAParams({inner})"

    # -- (de)serialization for snapshot metadata -----------------------------

    def to_dict(self) -> dict[str, str]:
        return dict(self._values)

    @classmethod
    def from_dict(cls, data: Mapping[str, str]) -> "MCAParams":
        return cls(dict(data))

    def copy(self) -> "MCAParams":
        return MCAParams(self._values)
