"""Per-process framework registry.

Each simulated process holds one :class:`FrameworkRegistry` describing
which frameworks exist and which component classes are plugged into
each.  ``default_registry()`` builds the registry shipped with this
reproduction (the components from the paper's section 6); tests build
cut-down registries with synthetic components to exercise selection in
isolation.
"""

from __future__ import annotations

from typing import Callable

from repro.mca.framework import Framework
from repro.mca.params import MCAParams


class FrameworkRegistry:
    """Holds framework definitions and opens them on demand."""

    def __init__(self) -> None:
        self._frameworks: dict[str, Framework] = {}

    def define(self, name: str) -> Framework:
        if name in self._frameworks:
            raise ValueError(f"framework {name!r} already defined")
        fw: Framework = Framework(name)
        self._frameworks[name] = fw
        return fw

    def add_component(self, framework: str, factory: Callable) -> None:
        self.framework(framework).register(factory)

    def framework(self, name: str) -> Framework:
        try:
            return self._frameworks[name]
        except KeyError:
            raise KeyError(f"framework {name!r} is not defined") from None

    def __contains__(self, name: str) -> bool:
        return name in self._frameworks

    @property
    def framework_names(self) -> list[str]:
        return sorted(self._frameworks)

    def open(self, name: str, params: MCAParams | None = None, context: object | None = None):
        return self.framework(name).open(params, context)

    def close_all(self) -> None:
        for fw in self._frameworks.values():
            fw.close()


def default_registry() -> FrameworkRegistry:
    """The full component set from the paper, wired into one registry.

    Imported lazily to avoid import cycles (components import their
    framework base classes which import ``repro.mca``).
    """
    from repro.opal.crs.base import register_crs_components
    from repro.orte.filem.base import register_filem_components
    from repro.orte.plm.base import register_plm_components
    from repro.orte.snapc.base import register_snapc_components
    from repro.ompi.btl.base import register_btl_components
    from repro.ompi.coll.base import register_coll_components
    from repro.ompi.crcp.base import register_crcp_components
    from repro.ompi.pml.base import register_pml_components

    reg = FrameworkRegistry()
    for name in ("crs", "snapc", "filem", "plm", "pml", "btl", "crcp", "coll"):
        reg.define(name)
    register_crs_components(reg)
    register_snapc_components(reg)
    register_filem_components(reg)
    register_plm_components(reg)
    register_pml_components(reg)
    register_btl_components(reg)
    register_crcp_components(reg)
    register_coll_components(reg)
    return reg
