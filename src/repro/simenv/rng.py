"""Deterministic named RNG streams.

Every source of randomness in the simulation draws from a stream keyed
by a stable name (e.g. ``"app:jacobi:rank3"``), derived from a single
universe seed.  Two runs with the same seed and the same stream names
produce identical draws regardless of scheduling order — a requirement
for the record-replay checkpointer (:mod:`repro.opal.crs.simcr`), which
re-executes application code and must observe the same random values.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(universe_seed: int, stream: str) -> int:
    digest = hashlib.sha256(f"{universe_seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A named, reproducible random stream."""

    def __init__(self, universe_seed: int, stream: str):
        self.universe_seed = universe_seed
        self.stream = stream
        self._rng = np.random.default_rng(_derive_seed(universe_seed, stream))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def integers(self, low: int, high: int) -> int:
        return int(self._rng.integers(low, high))

    def choice(self, seq):
        return seq[int(self._rng.integers(0, len(seq)))]

    def bytes(self, n: int) -> bytes:
        return self._rng.bytes(n)

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._rng.normal(mean, std))

    def fork(self, substream: str) -> "RngStream":
        """Derive an independent child stream."""
        return RngStream(self.universe_seed, f"{self.stream}/{substream}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RngStream {self.stream!r} seed={self.universe_seed}>"
