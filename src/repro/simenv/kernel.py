"""Discrete-event kernel: virtual clock, threads, events.

Threads are Python generators driven by the kernel.  A thread yields
:class:`Syscall` objects to block:

* ``Delay(seconds)`` — resume after simulated time elapses.
* ``WaitEvent(event)`` — resume when ``event.fire(value)`` is called;
  the yield expression evaluates to *value*.  ``event.fail(exc)``
  resumes the waiter by raising *exc* inside the generator, so failures
  propagate as ordinary exceptions.
* ``WaitAny(events)`` — resume when the first of several events
  settles; evaluates to ``(index, value, exc)``.
* ``WaitAll(events)`` — resume when every event has fired; evaluates
  to the list of values, or raises the first failure.

Higher layers build blocking operations as generator functions that
``yield``/``yield from`` down to these primitives, SimPy-style.

Scheduling discipline (see docs/SIMULATOR.md): entries execute in
``(time, seq)`` order, where ``seq`` is a monotonically increasing
sequence number shared by the time heap and the same-timestamp *ready
deque*.  Resumes and zero-delay wakeups go onto the ready deque as
plain ``(seq, thread, value, exc)`` tuples — no heap traffic, no
closure allocation — while future wakeups go onto the heap.  Because
both structures carry the global sequence number, the total execution
order is identical to a heap-only kernel.  ``fast_paths=False``
restores the pre-optimization behaviour (heap-only scheduling,
watcher-thread combinators, per-file transfer delays downstream) for
A/B measurement; determinism holds in both modes.

Determinism: there is no real time anywhere in the scheduling logic,
and time ties are broken by ``seq``, so two runs with the same inputs
schedule identically.
"""

from __future__ import annotations

import heapq
import time as _time
from collections import deque
from typing import Any, Callable, Generator, Iterable

from repro.util.errors import DeadlockError, SimError, SimInterrupt
from repro.util.logging import get_logger

log = get_logger("simenv.kernel")

#: Type of kernel-driven coroutines.
SimGen = Generator["Syscall", Any, Any]


class Syscall:
    """Base class of objects a thread may yield to the kernel."""

    __slots__ = ()


class Delay(Syscall):
    """Block the yielding thread for ``seconds`` of simulated time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("cannot delay for negative time")
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover
        return f"Delay({self.seconds})"


class WaitEvent(Syscall):
    """Block the yielding thread until the event fires (or fails)."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent"):
        self.event = event

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitEvent({self.event})"


class WaitAny(Syscall):
    """Block until the first of *events* settles.

    The yield expression evaluates to ``(index, value, exc)`` —
    failures settle the wait too, with ``exc`` set, rather than raising
    in the waiter (callers decide how to treat a losing failure).
    """

    __slots__ = ("events",)

    def __init__(self, events: "list[SimEvent]"):
        self.events = list(events)

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitAny({len(self.events)} events)"


class WaitAll(Syscall):
    """Block until every one of *events* has fired.

    The yield expression evaluates to the list of values in event
    order.  If any event fails, the first failure is raised in the
    waiter immediately (remaining events are detached).
    """

    __slots__ = ("events",)

    def __init__(self, events: "list[SimEvent]"):
        self.events = list(events)

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitAll({len(self.events)} events)"


class SimEvent:
    """One-shot event: fires once with a value or an exception.

    Threads that wait after the event has already fired resume
    immediately with the stored outcome (future semantics).
    """

    __slots__ = ("name", "_fired", "_value", "_exc", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exc: BaseException | None = None
        #: waiters are SimThreads or ``(_MultiWait, index)`` tuples
        self._waiters: list = []

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise SimError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._release()

    def fail(self, exc: BaseException) -> None:
        if self._fired:
            raise SimError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        self._release()

    def _release(self) -> None:
        waiters, self._waiters = self._waiters, []
        value, exc = self._value, self._exc
        for waiter in waiters:
            if type(waiter) is tuple:
                multi, index = waiter
                multi._on_event(index, value, exc)
            else:
                waiter._kernel._resume(waiter, value, exc)

    def _add_waiter(self, thread: "SimThread") -> None:
        if self._fired:
            thread._kernel._resume(thread, self._value, self._exc)
        else:
            self._waiters.append(thread)
            thread._waiting = self

    def _discard_waiter(self, thread: "SimThread") -> None:
        try:
            self._waiters.remove(thread)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        state = "fired" if self._fired else f"{len(self._waiters)} waiters"
        return f"<SimEvent {self.name!r} {state}>"


class _MultiWait:
    """One registration across several events (WaitAny/WaitAll).

    Completion either resumes a blocked thread (the syscall path) or
    settles an output :class:`SimEvent` (the ``first_of``/``join_all``
    combinators).  No watcher threads are involved: the wait registers
    ``(self, index)`` entries directly in each event's waiter list and
    detaches the leftovers when it settles.
    """

    __slots__ = ("kernel", "mode", "thread", "target", "settled",
                 "remaining", "results", "_regs")

    def __init__(
        self,
        kernel: "Kernel",
        events: "list[SimEvent]",
        mode: str,
        thread: "SimThread | None" = None,
        target: "SimEvent | None" = None,
    ):
        self.kernel = kernel
        self.mode = mode  # "any" | "all"
        self.thread = thread
        self.target = target
        self.settled = False
        self.remaining = len(events)
        self.results: list[Any] = [None] * len(events)
        self._regs: list = []
        if thread is not None:
            thread._waiting = self
        if mode == "all" and not events:
            self._complete([], None)
            return
        for i, event in enumerate(events):
            if self.settled:
                break
            if event._fired:
                self._on_event(i, event._value, event._exc)
            else:
                entry = (self, i)
                event._waiters.append(entry)
                self._regs.append((event, entry))

    def _on_event(self, index: int, value: Any, exc: BaseException | None) -> None:
        if self.settled:
            return
        if self.mode == "any":
            self._complete((index, value, exc), None)
        elif exc is not None:
            self._complete(None, exc)
        else:
            self.results[index] = value
            self.remaining -= 1
            if self.remaining == 0:
                self._complete(list(self.results), None)

    def _complete(self, value: Any, exc: BaseException | None) -> None:
        self.settled = True
        self._detach()
        if self.thread is not None:
            self.kernel._resume(self.thread, value, exc)
        elif exc is not None:
            if not self.target._fired:
                self.target.fail(exc)
        elif not self.target._fired:
            self.target.fire(value)

    def _detach(self) -> None:
        for event, entry in self._regs:
            if not event._fired:
                try:
                    event._waiters.remove(entry)
                except ValueError:
                    pass
        self._regs = []

    def _discard_waiter(self, thread: "SimThread") -> None:
        # The blocked thread was killed: abandon the whole wait.
        self.settled = True
        self._detach()


class Queue:
    """Unbounded FIFO mailbox with blocking ``get``.

    ``put`` never blocks.  ``get()`` is a generator to be used as
    ``item = yield from queue.get()``.
    """

    def __init__(self, kernel: "Kernel", name: str = ""):
        self._kernel = kernel
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def get(self) -> SimGen:
        if self._items:
            return_value = self._items.popleft()
            if False:  # pragma: no cover - keeps this a generator fn
                yield
            return return_value
        event = SimEvent(f"queue.get:{self.name}")
        self._getters.append(event)
        received = False
        try:
            value = yield WaitEvent(event)
            received = True
            return value
        finally:
            if not received:
                # The getter was abandoned (its thread killed while
                # blocked).  If an item was already routed to it, put
                # the item back at the FRONT of the queue — it was the
                # oldest; otherwise withdraw the stale getter so a
                # future ``put`` does not fire into the void.
                if event.fired:
                    self._items.appendleft(event._value)
                else:
                    try:
                        self._getters.remove(event)
                    except ValueError:
                        pass

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def __len__(self) -> int:
        return len(self._items)


class SimThread:
    """A kernel-scheduled coroutine.

    ``daemon`` threads do not keep the simulation alive and are not
    counted by deadlock detection — the runtime's service loops (orted
    message pumps, coordinator listeners) are daemons.
    """

    def __init__(
        self,
        kernel: "Kernel",
        gen: SimGen,
        name: str = "",
        daemon: bool = False,
    ):
        self._kernel = kernel
        self._gen = gen
        self.tid = kernel._new_tid()
        self.name = name or f"thread-{self.tid}"
        self.daemon = daemon
        self.alive = True
        self.blocked_on: Syscall | None = None
        #: what the thread is registered with while blocked on an
        #: event-shaped wait (a SimEvent or a _MultiWait); kill()
        #: detaches through this uniformly.
        self._waiting: "SimEvent | _MultiWait | None" = None
        self.done = SimEvent(f"done:{self.name}")
        self.result: Any = None

    def kill(self, exc: BaseException | None = None) -> None:
        """Terminate the thread without running further user code.

        Any thread waiting on :attr:`done` is failed with *exc* (or a
        generic :class:`SimError`).  Killing the *currently executing*
        thread (e.g. a process main calling ``proc.exit()``) marks it
        dead but lets its generator unwind naturally.
        """
        if not self.alive:
            return
        self.alive = False
        self._kernel._note_death()
        if self._waiting is not None:
            self._waiting._discard_waiter(self)
            self._waiting = None
        self.blocked_on = None
        if self._kernel._current is self:
            # Self-kill: the generator is executing right now; it will
            # finish via StopIteration and fire `done` itself.
            return
        self._gen.close()
        if not self.done.fired:
            self.done.fail(exc or SimError(f"thread {self.name} killed"))

    def __repr__(self) -> str:  # pragma: no cover
        state = "dead" if not self.alive else (
            f"blocked({self.blocked_on!r})" if self.blocked_on else "runnable"
        )
        return f"<SimThread {self.name} {state}>"


class TimerHandle:
    """Cancellable handle for :meth:`Kernel.call_at` timers.

    There is no O(log n) heap removal, so cancellation is lazy: the
    entry stays queued and is dropped when it surfaces — crucially
    *without advancing the clock*, so an orphaned far-future timer
    (say, a periodic wake-up whose job already settled) cannot drag
    simulated time forward during a final drain.
    """

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class KernelStats:
    """Always-on counter block for the scheduler hot path.

    Counters are plain integer attribute bumps so they are cheap enough
    to keep on unconditionally; ``repro.obs`` exports the block through
    every trace (see docs/SIMULATOR.md for field semantics).
    """

    __slots__ = (
        "events", "ready_hits", "heap_pushes", "heap_pops",
        "peak_heap", "peak_ready", "threads_spawned", "threads_reaped",
        "waits_any", "waits_all", "run_wall_s", "run_cpu_s",
    )

    def __init__(self) -> None:
        self.events = 0          # total entries dispatched by run()
        self.ready_hits = 0      # entries served from the ready deque
        self.heap_pushes = 0
        self.heap_pops = 0
        self.peak_heap = 0
        self.peak_ready = 0
        self.threads_spawned = 0
        self.threads_reaped = 0  # dead threads compacted out of _threads
        self.waits_any = 0
        self.waits_all = 0
        self.run_wall_s = 0.0    # wall-clock spent inside run()
        self.run_cpu_s = 0.0     # process CPU time spent inside run()

    #: counters that add across kernels when stats blocks are merged
    _SUM_FIELDS = (
        "events", "ready_hits", "heap_pushes", "heap_pops",
        "threads_spawned", "threads_reaped", "waits_any", "waits_all",
        "run_wall_s", "run_cpu_s",
    )
    #: high-water marks: the fleet-wide peak is the max of the peaks
    _MAX_FIELDS = ("peak_heap", "peak_ready")

    def merge(self, other: "KernelStats | dict") -> "KernelStats":
        """Fold another stats block into this one.

        Counters add, peaks take the max, and the derived rates
        (``events_per_sec`` / ``events_per_cpu_sec``) recompute on
        export from the summed totals — so a fleet of per-process
        kernels aggregates into one block whose events-per-CPU-second
        is the fleet-wide throughput.  Accepts a live block or its
        :meth:`to_dict` export (fleet workers ship dicts across the
        process boundary); derived keys in a dict input are ignored.
        """
        data = other if isinstance(other, dict) else other.to_dict()
        for name in self._SUM_FIELDS:
            setattr(self, name, getattr(self, name) + data.get(name, 0))
        for name in self._MAX_FIELDS:
            setattr(self, name, max(getattr(self, name), data.get(name, 0)))
        return self

    def to_dict(self) -> dict:
        wall = self.run_wall_s
        cpu = self.run_cpu_s
        return {
            "events": self.events,
            "ready_hits": self.ready_hits,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "peak_heap": self.peak_heap,
            "peak_ready": self.peak_ready,
            "threads_spawned": self.threads_spawned,
            "threads_reaped": self.threads_reaped,
            "waits_any": self.waits_any,
            "waits_all": self.waits_all,
            "run_wall_s": wall,
            "run_cpu_s": cpu,
            "events_per_sec": (self.events / wall) if wall > 0 else 0.0,
            # CPU-time variant: immune to co-tenant scheduling noise,
            # so benchmarks gate on this (the simulator is one CPU-bound
            # thread — process time *is* the work done)
            "events_per_cpu_sec": (self.events / cpu) if cpu > 0 else 0.0,
        }


class Kernel:
    """The discrete-event scheduler.

    ``fast_paths=False`` selects the legacy scheduling discipline
    (every resume through the heap as a closure, watcher-thread
    combinators, per-item transfer delays in the vfs/netsim layers) so
    benchmarks can measure the fast path against its predecessor inside
    one process.  Both modes are individually deterministic.
    """

    def __init__(self, fast_paths: bool = True) -> None:
        from repro.obs.trace import TraceRecorder

        self.now: float = 0.0
        self.fast_paths = fast_paths
        self._pq: list[tuple] = []
        #: same-timestamp run queue: (seq, thread, value, exc)
        self._ready: deque[tuple] = deque()
        self._seq = 0
        self._tid = 0
        self._pid = 999
        self._id_counters: dict[str, int] = {}
        self._threads: list[SimThread] = []
        self._dead = 0
        self._running = False
        self._current: "SimThread | None" = None
        self.stats = KernelStats()
        #: optional trace callback ``(time, thread_name, event_str)``
        self.trace: Callable[[float, str, str], None] | None = None
        #: structured span/counter recorder (disabled by default; every
        #: layer reaches it via ``proc.kernel.tracer``)
        self.tracer = TraceRecorder(self)

    # -- scheduling primitives ---------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> "TimerHandle":
        if when < self.now:
            raise SimError(f"cannot schedule in the past ({when} < {self.now})")
        handle = TimerHandle(fn)
        self._push(when, handle)
        return handle

    def call_later(self, delay: float, fn: Callable[[], None]) -> "TimerHandle":
        return self.call_at(self.now + delay, fn)

    def _push(self, when: float, item: Any) -> None:
        """Heap-schedule *item* (a callable, or a SimThread to wake)."""
        heapq.heappush(self._pq, (when, self._seq, item))
        self._seq += 1
        stats = self.stats
        stats.heap_pushes += 1
        if len(self._pq) > stats.peak_heap:
            stats.peak_heap = len(self._pq)

    def _ready_push(
        self, thread: SimThread, value: Any, exc: BaseException | None
    ) -> None:
        """Queue a same-timestamp wakeup, bypassing the heap."""
        self._ready.append((self._seq, thread, value, exc))
        self._seq += 1
        if len(self._ready) > self.stats.peak_ready:
            self.stats.peak_ready = len(self._ready)

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(name)

    def queue(self, name: str = "") -> Queue:
        return Queue(self, name)

    @property
    def pending(self) -> bool:
        """True while anything remains scheduled (heap or ready deque)."""
        return bool(self._pq or self._ready)

    # -- threads ------------------------------------------------------------

    def _new_tid(self) -> int:
        self._tid += 1
        return self._tid

    def new_pid(self) -> int:
        """Deterministic per-kernel pid allocator (see SimProcess).

        A module-global counter would leak across universes in one
        session: pid digits appear in process labels, labels appear in
        pickled messages, and message *sizes* drive transfer times — so
        a shared counter makes same-seed runs drift by fractions of a
        microsecond.
        """
        self._pid += 1
        return self._pid

    def next_id(self, scope: str) -> int:
        """Deterministic kernel-scoped counter (1, 2, 3, ... per scope).

        For ids that end up inside simulated messages (rpc correlation
        ids, tool names): the same-seed-same-schedule guarantee requires
        them to restart with every universe, never drift with a module
        global.
        """
        n = self._id_counters.get(scope, 0) + 1
        self._id_counters[scope] = n
        return n

    def spawn(self, gen: SimGen, name: str = "", daemon: bool = False) -> SimThread:
        thread = SimThread(self, gen, name=name, daemon=daemon)
        self._threads.append(thread)
        self.stats.threads_spawned += 1
        self._resume(thread, None, None)
        return thread

    def _note_death(self) -> None:
        """Account one thread death; periodically reap the dead.

        Compaction keeps :attr:`_threads` (and with it the deadlock
        scan) bounded by the number of *live* threads instead of every
        thread ever spawned — long campaign sweeps create millions.
        """
        self._dead += 1
        if self._dead >= 64 and self._dead * 2 >= len(self._threads):
            alive = [t for t in self._threads if t.alive]
            self.stats.threads_reaped += len(self._threads) - len(alive)
            self._threads = alive
            self._dead = 0

    def _resume(
        self, thread: SimThread, value: Any, exc: BaseException | None
    ) -> None:
        thread.blocked_on = None
        thread._waiting = None
        if self.fast_paths:
            self._ready_push(thread, value, exc)
        else:
            self.call_at(self.now, lambda: self._step(thread, value, exc))

    def _step(
        self, thread: SimThread, value: Any, exc: BaseException | None
    ) -> None:
        if not thread.alive:
            return
        self._current = thread
        try:
            if exc is not None:
                syscall = thread._gen.throw(exc)
            else:
                syscall = thread._gen.send(value)
        except StopIteration as stop:
            if thread.alive:
                thread.alive = False
                self._note_death()
            thread.result = stop.value
            if not thread.done.fired:
                thread.done.fire(stop.value)
            if self.trace:
                self.trace(self.now, thread.name, "exit")
            return
        except (SimInterrupt, KeyboardInterrupt, SystemExit):
            # Out-of-band interrupts (wall-clock watchdogs, Ctrl-C)
            # abort the whole run — they are not a crash of whichever
            # thread they happened to land in.
            raise
        except BaseException as err:
            if thread.alive:
                thread.alive = False
                self._note_death()
            if not thread.done.fired:
                thread.done.fail(err)
            if self.trace:
                self.trace(self.now, thread.name, f"crash:{type(err).__name__}")
            return
        finally:
            self._current = None

        thread.blocked_on = syscall
        if isinstance(syscall, Delay):
            seconds = syscall.seconds
            if seconds == 0.0 and self.fast_paths:
                self._ready_push(thread, None, None)
            else:
                self._push(self.now + seconds, thread)
        elif isinstance(syscall, WaitEvent):
            syscall.event._add_waiter(thread)
        elif isinstance(syscall, WaitAny):
            self.stats.waits_any += 1
            if self.fast_paths:
                _MultiWait(self, syscall.events, "any", thread=thread)
            else:
                _watcher_first_of(self, syscall.events, "waitany")._add_waiter(
                    thread
                )
        elif isinstance(syscall, WaitAll):
            self.stats.waits_all += 1
            if self.fast_paths:
                _MultiWait(self, syscall.events, "all", thread=thread)
            else:
                _watcher_join_all(syscall.events, self, "waitall")._add_waiter(
                    thread
                )
        else:
            error = SimError(
                f"thread {thread.name} yielded non-syscall {syscall!r}"
            )
            if self.fast_paths:
                self._ready_push(thread, None, error)
            else:
                self.call_at(self.now, lambda: self._step(thread, None, error))

    def _step_if_alive(self, thread: SimThread) -> None:
        if thread.alive:
            thread.blocked_on = None
            self._step(thread, None, None)

    # -- run loop -------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; return the final simulated time.

        Raises :class:`DeadlockError` if non-daemon threads remain
        blocked with nothing left to schedule.
        """
        if self._running:
            raise SimError("kernel.run() is not reentrant")
        self._running = True
        pq = self._pq
        ready = self._ready
        stats = self.stats
        wall0 = _time.perf_counter()
        cpu0 = _time.process_time()
        try:
            while pq or ready:
                # Global (time, seq) order: the ready deque holds only
                # entries stamped at the current time, so the heap wins
                # only when its head is due *now* with a smaller seq.
                if ready and not (
                    pq and pq[0][0] <= self.now and pq[0][1] < ready[0][0]
                ):
                    _, thread, value, exc = ready.popleft()
                    stats.events += 1
                    stats.ready_hits += 1
                    if thread.alive:
                        thread.blocked_on = None
                        self._step(thread, value, exc)
                    continue
                entry = heapq.heappop(pq)
                when, _, item = entry
                if type(item) is TimerHandle and item.cancelled:
                    # Lazy-cancelled timer: drop it with the clock
                    # untouched (see TimerHandle).
                    stats.heap_pops += 1
                    continue
                if until is not None and when > until:
                    # Re-push untouched: the original seq keeps the
                    # tie-break invariant self-evident across pauses.
                    heapq.heappush(pq, entry)
                    stats.heap_pushes += 1
                    self.now = until
                    return self.now
                self.now = when
                stats.events += 1
                stats.heap_pops += 1
                if type(item) is SimThread:
                    if item.alive:
                        item.blocked_on = None
                        self._step(item, None, None)
                elif type(item) is TimerHandle:
                    item.fn()
                else:
                    item()
            blocked = [
                t.name
                for t in self._threads
                if t.alive and not t.daemon and t.blocked_on is not None
            ]
            if blocked:
                raise DeadlockError(blocked)
            return self.now
        finally:
            self._running = False
            stats.run_wall_s += _time.perf_counter() - wall0
            stats.run_cpu_s += _time.process_time() - cpu0

    def run_until_complete(self, threads: "SimThread | Iterable[SimThread]") -> Any:
        """Run until the given thread(s) finish; return last result.

        Unlike :meth:`run`, daemon service loops blocked forever do not
        matter — but if the queue drains before the threads complete a
        :class:`DeadlockError` is raised.
        """
        if isinstance(threads, SimThread):
            targets = [threads]
        else:
            targets = list(threads)
        while any(t.alive for t in targets):
            if not self.pending:
                raise DeadlockError([t.name for t in targets if t.alive])
            self.run()
        result = None
        for t in targets:
            if t.done._exc is not None:
                raise t.done._exc
            result = t.result
        return result

    @property
    def live_threads(self) -> list[SimThread]:
        return [t for t in self._threads if t.alive]

    def stats_snapshot(self) -> dict:
        """The :class:`KernelStats` block plus live/dead thread counts."""
        out = self.stats.to_dict()
        live = sum(1 for t in self._threads if t.alive)
        out["threads_live"] = live
        out["threads_dead"] = len(self._threads) - live
        return out


def first_of(
    kernel: Kernel, events: "list[SimEvent]", name: str = "first"
) -> SimEvent:
    """Return an event firing with ``(index, value, exc)`` of whichever
    input settles first (failures settle too, with ``exc`` set).

    Threads that are about to block on the result should yield
    :class:`WaitAny` directly; this combinator exists for callers that
    need a composable :class:`SimEvent`.  It spawns no watcher threads.
    """
    if not kernel.fast_paths:
        return _watcher_first_of(kernel, events, name)
    winner = kernel.event(name)
    _MultiWait(kernel, events, "any", target=winner)
    return winner


def join_all(events: "list[SimEvent]", kernel: Kernel, name: str = "join") -> SimEvent:
    """Return an event that fires when every input event has fired.

    If any input fails, the join fails with the first failure.  Like
    :func:`first_of` this spawns no watcher threads; blocking callers
    should prefer yielding :class:`WaitAll`.
    """
    if not kernel.fast_paths:
        return _watcher_join_all(events, kernel, name)
    joined = kernel.event(name)
    _MultiWait(kernel, events, "all", target=joined)
    return joined


# -- legacy (pre-fast-path) combinators, kept for A/B benchmarking ----------


def _watcher_first_of(
    kernel: Kernel, events: "list[SimEvent]", name: str = "first"
) -> SimEvent:
    """Watcher-thread ``first_of``: one daemon thread per input event."""
    winner = kernel.event(name)

    def make_watcher(i: int, ev: SimEvent) -> SimGen:
        def watcher() -> SimGen:
            try:
                value = yield WaitEvent(ev)
            except SimInterrupt:
                raise
            except BaseException as exc:
                if not winner.fired:
                    winner.fire((i, None, exc))
                return
            if not winner.fired:
                winner.fire((i, value, None))

        return watcher()

    for i, ev in enumerate(events):
        kernel.spawn(make_watcher(i, ev), name=f"{name}-w{i}", daemon=True)
    return winner


def _watcher_join_all(
    events: "list[SimEvent]", kernel: Kernel, name: str = "join"
) -> SimEvent:
    """Watcher-thread ``join_all``: one daemon thread per input event."""
    joined = kernel.event(name)
    remaining = {"n": len(events)}
    if not events:
        joined.fire([])
        return joined
    results: list[Any] = [None] * len(events)

    def make_watcher(i: int, ev: SimEvent) -> SimGen:
        def watcher() -> SimGen:
            try:
                results[i] = yield WaitEvent(ev)
            except SimInterrupt:
                raise
            except BaseException as exc:
                if not joined.fired:
                    joined.fail(exc)
                return
            remaining["n"] -= 1
            if remaining["n"] == 0 and not joined.fired:
                joined.fire(list(results))

        return watcher()

    for i, ev in enumerate(events):
        kernel.spawn(make_watcher(i, ev), name=f"{name}-w{i}", daemon=True)
    return joined
