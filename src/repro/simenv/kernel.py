"""Discrete-event kernel: virtual clock, threads, events.

Threads are Python generators driven by the kernel.  A thread yields
:class:`Syscall` objects to block:

* ``Delay(seconds)`` — resume after simulated time elapses.
* ``WaitEvent(event)`` — resume when ``event.fire(value)`` is called;
  the yield expression evaluates to *value*.  ``event.fail(exc)``
  resumes the waiter by raising *exc* inside the generator, so failures
  propagate as ordinary exceptions.

Higher layers build blocking operations as generator functions that
``yield``/``yield from`` down to these two primitives, SimPy-style.

Determinism: the event queue breaks time ties with a monotonically
increasing sequence number, so two runs with the same inputs schedule
identically.  There is no real-time anywhere in the kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.util.errors import DeadlockError, SimError
from repro.util.logging import get_logger

log = get_logger("simenv.kernel")

#: Type of kernel-driven coroutines.
SimGen = Generator["Syscall", Any, Any]


class Syscall:
    """Base class of objects a thread may yield to the kernel."""

    __slots__ = ()


class Delay(Syscall):
    """Block the yielding thread for ``seconds`` of simulated time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("cannot delay for negative time")
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover
        return f"Delay({self.seconds})"


class WaitEvent(Syscall):
    """Block the yielding thread until the event fires (or fails)."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent"):
        self.event = event

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitEvent({self.event})"


class SimEvent:
    """One-shot event: fires once with a value or an exception.

    Threads that wait after the event has already fired resume
    immediately with the stored outcome (future semantics).
    """

    __slots__ = ("name", "_fired", "_value", "_exc", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exc: BaseException | None = None
        self._waiters: list[SimThread] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise SimError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._release()

    def fail(self, exc: BaseException) -> None:
        if self._fired:
            raise SimError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        self._release()

    def _release(self) -> None:
        waiters, self._waiters = self._waiters, []
        for thread in waiters:
            thread._kernel._resume(thread, self._value, self._exc)

    def _add_waiter(self, thread: "SimThread") -> None:
        if self._fired:
            thread._kernel._resume(thread, self._value, self._exc)
        else:
            self._waiters.append(thread)

    def _discard_waiter(self, thread: "SimThread") -> None:
        try:
            self._waiters.remove(thread)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        state = "fired" if self._fired else f"{len(self._waiters)} waiters"
        return f"<SimEvent {self.name!r} {state}>"


class Queue:
    """Unbounded FIFO mailbox with blocking ``get``.

    ``put`` never blocks.  ``get()`` is a generator to be used as
    ``item = yield from queue.get()``.
    """

    def __init__(self, kernel: "Kernel", name: str = ""):
        self._kernel = kernel
        self.name = name
        self._items: list[Any] = []
        self._getters: list[SimEvent] = []

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).fire(item)
        else:
            self._items.append(item)

    def get(self) -> SimGen:
        if self._items:
            return_value = self._items.pop(0)
            if False:  # pragma: no cover - keeps this a generator fn
                yield
            return return_value
        event = SimEvent(f"queue.get:{self.name}")
        self._getters.append(event)
        received = False
        try:
            value = yield WaitEvent(event)
            received = True
            return value
        finally:
            if not received:
                # The getter was abandoned (its thread killed while
                # blocked).  If an item was already routed to it, put
                # the item back at the FRONT of the queue — it was the
                # oldest; otherwise withdraw the stale getter so a
                # future ``put`` does not fire into the void.
                if event.fired:
                    self._items.insert(0, event._value)
                else:
                    try:
                        self._getters.remove(event)
                    except ValueError:
                        pass

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.pop(0)
        return False, None

    def __len__(self) -> int:
        return len(self._items)


class SimThread:
    """A kernel-scheduled coroutine.

    ``daemon`` threads do not keep the simulation alive and are not
    counted by deadlock detection — the runtime's service loops (orted
    message pumps, coordinator listeners) are daemons.
    """

    _ids = iter(range(1, 1 << 60))

    def __init__(
        self,
        kernel: "Kernel",
        gen: SimGen,
        name: str = "",
        daemon: bool = False,
    ):
        self._kernel = kernel
        self._gen = gen
        self.tid = next(SimThread._ids)
        self.name = name or f"thread-{self.tid}"
        self.daemon = daemon
        self.alive = True
        self.blocked_on: Syscall | None = None
        self.done = SimEvent(f"done:{self.name}")
        self.result: Any = None

    def kill(self, exc: BaseException | None = None) -> None:
        """Terminate the thread without running further user code.

        Any thread waiting on :attr:`done` is failed with *exc* (or a
        generic :class:`SimError`).  Killing the *currently executing*
        thread (e.g. a process main calling ``proc.exit()``) marks it
        dead but lets its generator unwind naturally.
        """
        if not self.alive:
            return
        self.alive = False
        if isinstance(self.blocked_on, WaitEvent):
            self.blocked_on.event._discard_waiter(self)
        self.blocked_on = None
        if self._kernel._current is self:
            # Self-kill: the generator is executing right now; it will
            # finish via StopIteration and fire `done` itself.
            return
        self._gen.close()
        if not self.done.fired:
            self.done.fail(exc or SimError(f"thread {self.name} killed"))

    def __repr__(self) -> str:  # pragma: no cover
        state = "dead" if not self.alive else (
            f"blocked({self.blocked_on!r})" if self.blocked_on else "runnable"
        )
        return f"<SimThread {self.name} {state}>"


class Kernel:
    """The discrete-event scheduler."""

    def __init__(self) -> None:
        from repro.obs.trace import TraceRecorder

        self.now: float = 0.0
        self._pq: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._threads: list[SimThread] = []
        self._running = False
        self._current: "SimThread | None" = None
        #: optional trace callback ``(time, thread_name, event_str)``
        self.trace: Callable[[float, str, str], None] | None = None
        #: structured span/counter recorder (disabled by default; every
        #: layer reaches it via ``proc.kernel.tracer``)
        self.tracer = TraceRecorder(self)

    # -- scheduling primitives ---------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        if when < self.now:
            raise SimError(f"cannot schedule in the past ({when} < {self.now})")
        heapq.heappush(self._pq, (when, self._seq, fn))
        self._seq += 1

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(name)

    def queue(self, name: str = "") -> Queue:
        return Queue(self, name)

    # -- threads ------------------------------------------------------------

    def spawn(self, gen: SimGen, name: str = "", daemon: bool = False) -> SimThread:
        thread = SimThread(self, gen, name=name, daemon=daemon)
        self._threads.append(thread)
        self._resume(thread, None, None)
        return thread

    def _resume(
        self, thread: SimThread, value: Any, exc: BaseException | None
    ) -> None:
        thread.blocked_on = None
        self.call_at(self.now, lambda: self._step(thread, value, exc))

    def _step(
        self, thread: SimThread, value: Any, exc: BaseException | None
    ) -> None:
        if not thread.alive:
            return
        self._current = thread
        try:
            if exc is not None:
                syscall = thread._gen.throw(exc)
            else:
                syscall = thread._gen.send(value)
        except StopIteration as stop:
            thread.alive = False
            thread.result = stop.value
            if not thread.done.fired:
                thread.done.fire(stop.value)
            if self.trace:
                self.trace(self.now, thread.name, "exit")
            return
        except BaseException as err:
            thread.alive = False
            if not thread.done.fired:
                thread.done.fail(err)
            if self.trace:
                self.trace(self.now, thread.name, f"crash:{type(err).__name__}")
            return
        finally:
            self._current = None

        thread.blocked_on = syscall
        if isinstance(syscall, Delay):
            self.call_later(
                syscall.seconds, lambda: self._step_if_alive(thread)
            )
        elif isinstance(syscall, WaitEvent):
            syscall.event._add_waiter(thread)
        else:
            error = SimError(
                f"thread {thread.name} yielded non-syscall {syscall!r}"
            )
            self.call_at(self.now, lambda: self._step(thread, None, error))

    def _step_if_alive(self, thread: SimThread) -> None:
        if thread.alive:
            thread.blocked_on = None
            self._step(thread, None, None)

    # -- run loop -------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; return the final simulated time.

        Raises :class:`DeadlockError` if non-daemon threads remain
        blocked with nothing left to schedule.
        """
        if self._running:
            raise SimError("kernel.run() is not reentrant")
        self._running = True
        try:
            while self._pq:
                when, _, fn = heapq.heappop(self._pq)
                if until is not None and when > until:
                    heapq.heappush(self._pq, (when, 0, fn))
                    self.now = until
                    return self.now
                self.now = when
                fn()
            blocked = [
                t.name
                for t in self._threads
                if t.alive and not t.daemon and t.blocked_on is not None
            ]
            if blocked:
                raise DeadlockError(blocked)
            return self.now
        finally:
            self._running = False

    def run_until_complete(self, threads: "SimThread | Iterable[SimThread]") -> Any:
        """Run until the given thread(s) finish; return last result.

        Unlike :meth:`run`, daemon service loops blocked forever do not
        matter — but if the queue drains before the threads complete a
        :class:`DeadlockError` is raised.
        """
        if isinstance(threads, SimThread):
            targets = [threads]
        else:
            targets = list(threads)
        while any(t.alive for t in targets):
            if not self._pq:
                raise DeadlockError([t.name for t in targets if t.alive])
            self.run()
        result = None
        for t in targets:
            if t.done._exc is not None:
                raise t.done._exc
            result = t.result
        return result

    @property
    def live_threads(self) -> list[SimThread]:
        return [t for t in self._threads if t.alive]


def first_of(
    kernel: Kernel, events: list[SimEvent], name: str = "first"
) -> SimEvent:
    """Return an event firing with ``(index, value, exc)`` of whichever
    input settles first (failures settle too, with ``exc`` set)."""
    winner = kernel.event(name)

    def make_watcher(i: int, ev: SimEvent) -> SimGen:
        def watcher() -> SimGen:
            try:
                value = yield WaitEvent(ev)
            except BaseException as exc:
                if not winner.fired:
                    winner.fire((i, None, exc))
                return
            if not winner.fired:
                winner.fire((i, value, None))

        return watcher()

    for i, ev in enumerate(events):
        kernel.spawn(make_watcher(i, ev), name=f"{name}-w{i}", daemon=True)
    return winner


def join_all(events: list[SimEvent], kernel: Kernel, name: str = "join") -> SimEvent:
    """Return an event that fires when every input event has fired.

    If any input fails, the join fails with the first failure.
    """
    joined = kernel.event(name)
    remaining = {"n": len(events)}
    if not events:
        joined.fire([])
        return joined
    results: list[Any] = [None] * len(events)

    def make_watcher(i: int, ev: SimEvent) -> SimGen:
        def watcher() -> SimGen:
            try:
                results[i] = yield WaitEvent(ev)
            except BaseException as exc:
                if not joined.fired:
                    joined.fail(exc)
                return
            remaining["n"] -= 1
            if remaining["n"] == 0 and not joined.fired:
                joined.fire(list(results))

        return watcher()

    for i, ev in enumerate(events):
        kernel.spawn(make_watcher(i, ev), name=f"{name}-w{i}", daemon=True)
    return joined
