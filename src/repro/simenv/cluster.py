"""Virtual cluster builder.

A :class:`Cluster` bundles the kernel, the nodes (each with a local
disk and a NIC per fabric), the fabrics (GigE always; InfiniBand and
loopback optional), shared stable storage, the universe RNG, and the
failure injector — i.e. everything the paper's testbed provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.models import LinkModel, ethernet_1g, infiniband, loopback
from repro.netsim.transport import Fabric
from repro.simenv.failure import FailureInjector
from repro.simenv.kernel import Kernel
from repro.simenv.node import Node
from repro.simenv.rng import RngStream
from repro.vfs.localfs import LocalFS
from repro.vfs.sharedfs import SharedFS


@dataclass
class ClusterSpec:
    """Declarative description of a cluster to build."""

    n_nodes: int = 4
    cpu_ghz: float = 2.0
    mem_bytes: int = 4 * 2**30
    seed: int = 20070326  # IPPS 2007, Long Beach
    with_infiniband: bool = True
    #: node-local scratch is at least as fast as one client's share of
    #: the RAID — the premise that makes staged (local-write, then
    #: background drain) checkpointing attractive
    local_disk_Bps: float = 240e6
    stable_Bps: float = 200e6
    os_tags: list[str] = field(default_factory=list)
    #: ``False`` selects the legacy (pre-optimization) kernel scheduling
    #: discipline — per-resume heap closures, watcher-thread combinators,
    #: per-item transfer delays — for A/B benchmarking (see SIMULATOR.md)
    fast_paths: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("cluster needs at least one node")


class Cluster:
    """The simulated machine room."""

    def __init__(self, spec: ClusterSpec | None = None):
        self.spec = spec or ClusterSpec()
        self.kernel = Kernel(fast_paths=self.spec.fast_paths)
        self.nodes: list[Node] = []
        self._nodes_by_name: dict[str, Node] = {}
        self.fabrics: dict[str, Fabric] = {}
        self.stable_fs = SharedFS(
            self.kernel, bandwidth_Bps=self.spec.stable_Bps
        )
        self.failures = FailureInjector(self)
        #: persistent named RNG streams — one stream object per name,
        #: so repeated draws advance state (see :meth:`rng`)
        self._rng_streams: dict[str, RngStream] = {}
        self._build()

    def _build(self) -> None:
        models: list[LinkModel] = [ethernet_1g(), loopback()]
        if self.spec.with_infiniband:
            models.append(infiniband())
        for model in models:
            self.fabrics[model.name] = Fabric(self.kernel, model)
        tags = self.spec.os_tags
        for i in range(self.spec.n_nodes):
            node = Node(
                self.kernel,
                name=f"node{i:02d}",
                cpu_ghz=self.spec.cpu_ghz,
                mem_bytes=self.spec.mem_bytes,
                os_tag=tags[i] if i < len(tags) else "linux-x86_64",
            )
            LocalFS(node, bandwidth_Bps=self.spec.local_disk_Bps)
            for fabric in self.fabrics.values():
                fabric.attach(node)
            self.nodes.append(node)
            self._nodes_by_name[node.name] = node

    # -- lookups ------------------------------------------------------------

    def node(self, name_or_index: "str | int") -> Node:
        if isinstance(name_or_index, int):
            return self.nodes[name_or_index]
        try:
            return self._nodes_by_name[name_or_index]
        except KeyError:
            raise KeyError(f"no node named {name_or_index!r}") from None

    def fabric(self, name: str) -> Fabric:
        try:
            return self.fabrics[name]
        except KeyError:
            raise KeyError(
                f"no fabric {name!r} (have {', '.join(sorted(self.fabrics))})"
            ) from None

    @property
    def eth(self) -> Fabric:
        return self.fabrics["eth"]

    def rng(self, stream: str) -> RngStream:
        """The cluster's persistent named RNG stream.

        The same name always returns the same stream *object*, so
        repeated draws advance its state — a Poisson process sampled
        through here produces i.i.d. exponential inter-arrivals, not
        the same first sample forever.  Two same-seed clusters still
        reproduce identical draw sequences per stream name.
        """
        cached = self._rng_streams.get(stream)
        if cached is None:
            cached = RngStream(self.spec.seed, stream)
            self._rng_streams[stream] = cached
        return cached

    @property
    def up_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.up]

    def run(self, until: float | None = None) -> float:
        return self.kernel.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Cluster nodes={len(self.nodes)} "
            f"fabrics={sorted(self.fabrics)} t={self.kernel.now:.6f}>"
        )
