"""Simulated OS process: a named container of kernel threads on a node.

Mirrors the paper's process model: an application process hosts its
main (application) thread plus a *checkpoint notification thread*
(paper section 6.5) spawned by the OPAL layer.  Daemon processes
(orteds, mpirun) host service-loop threads.

A process exposes a picklable ``env`` dict (its "environment block"),
an OS-like pid, and kill semantics that fail every thread inside it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.simenv.kernel import SimGen, SimThread
from repro.util.errors import ProcessFailedError, SimInterrupt
from repro.util.ids import ProcessName

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel
    from repro.simenv.node import Node

class SimProcess:
    """One simulated OS process."""

    def __init__(
        self,
        node: "Node",
        name: ProcessName,
        label: str = "",
    ):
        self.node = node
        self.kernel: "Kernel" = node.kernel
        self.name = name
        self.pid = self.kernel.new_pid()
        self.label = label or f"proc{self.pid}"
        self.alive = True
        self.exit_event = self.kernel.event(f"exit:{self.label}")
        self.threads: list[SimThread] = []
        #: free-form environment; launch parameters land here
        self.env: dict[str, Any] = {}
        #: services registered by layers (opal/orte/ompi attach here)
        self.services: dict[str, Any] = {}
        node.attach(self)

    # -- threads ------------------------------------------------------------

    def spawn_thread(
        self, gen: SimGen, name: str = "", daemon: bool = False
    ) -> SimThread:
        if not self.alive:
            raise ProcessFailedError(f"{self.label} is dead")
        thread = self.kernel.spawn(
            gen, name=f"{self.label}/{name or 'main'}", daemon=daemon
        )
        self.threads.append(thread)
        # Long-lived daemons (orteds) spawn a thread per RPC served;
        # compact finished ones so the list stays bounded by live work.
        if len(self.threads) >= 32:
            live = [t for t in self.threads if t.alive]
            if len(live) * 2 <= len(self.threads):
                self.threads = live
        return thread

    @property
    def live_threads(self) -> list[SimThread]:
        return [t for t in self.threads if t.alive]

    # -- lifecycle ---------------------------------------------------------

    def exit(self, result: Any = None) -> None:
        """Clean process exit: kill remaining threads, fire exit event."""
        if not self.alive:
            return
        self.alive = False
        for thread in list(self.threads):
            thread.kill()
        self.node.detach(self)
        if not self.exit_event.fired:
            self.exit_event.fire(result)

    def kill(self, exc: BaseException | None = None) -> None:
        """Abnormal termination (signal/crash)."""
        if not self.alive:
            return
        self.alive = False
        error = exc or ProcessFailedError(f"{self.label} killed")
        for thread in list(self.threads):
            thread.kill(error)
        self.node.detach(self)
        if not self.exit_event.fired:
            self.exit_event.fail(error)

    # -- service registry ------------------------------------------------------

    def register_service(self, key: str, service: Any) -> None:
        if key in self.services:
            raise ValueError(f"{self.label}: service {key!r} already registered")
        self.services[key] = service

    def service(self, key: str) -> Any:
        try:
            return self.services[key]
        except KeyError:
            raise KeyError(
                f"{self.label}: no service {key!r} "
                f"(have: {', '.join(sorted(self.services)) or 'none'})"
            ) from None

    def maybe_service(self, key: str) -> Any | None:
        return self.services.get(key)

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.alive else "dead"
        return f"<SimProcess {self.label} {self.name} pid={self.pid} {state}>"


def run_process_main(
    proc: SimProcess, main: Callable[[], SimGen], name: str = "main"
) -> SimThread:
    """Spawn *main* as the process's primary thread.

    When the main thread returns, the process exits cleanly with the
    thread's return value; if it raises, the process dies with that
    error.
    """

    def wrapper() -> SimGen:
        try:
            result = yield from main()
        except GeneratorExit:
            raise
        except SimInterrupt:
            # Out-of-band interrupt of the whole run (wall-clock
            # watchdog): not this process dying — let it abort run().
            raise
        except BaseException as exc:
            proc.kill(exc)
            return None
        proc.exit(result)
        return result

    return proc.spawn_thread(wrapper(), name=name)
