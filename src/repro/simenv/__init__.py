"""Discrete-event simulation substrate.

The paper's system ran on a real Linux cluster; this reproduction runs
on a deterministic discrete-event simulation of one.  The kernel
(:mod:`repro.simenv.kernel`) schedules *threads* — Python generators
that yield blocking syscalls (``Delay``, ``WaitEvent``) — under a
virtual clock.  Processes (:mod:`repro.simenv.process`) are containers
of threads pinned to nodes (:mod:`repro.simenv.node`), matching the
paper's model where each MPI process hosts both application threads and
a checkpoint *notification thread*.
"""

from repro.simenv.kernel import (
    Delay,
    Kernel,
    KernelStats,
    Queue,
    SimEvent,
    SimThread,
    Syscall,
    WaitAll,
    WaitAny,
    WaitEvent,
)
from repro.simenv.node import Node
from repro.simenv.process import SimProcess
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.simenv.rng import RngStream
from repro.simenv.failure import FailureInjector, FailureSchedule
from repro.simenv.campaign import (
    FAULT_HNP_CRASH,
    CampaignReport,
    CampaignSpec,
    FaultCampaign,
    FaultSpec,
    build_campaign_report,
    run_campaign,
)

__all__ = [
    "CampaignReport",
    "build_campaign_report",
    "CampaignSpec",
    "FAULT_HNP_CRASH",
    "FaultCampaign",
    "FaultSpec",
    "run_campaign",
    "Delay",
    "Kernel",
    "KernelStats",
    "Queue",
    "SimEvent",
    "SimThread",
    "Syscall",
    "WaitAll",
    "WaitAny",
    "WaitEvent",
    "Node",
    "SimProcess",
    "Cluster",
    "ClusterSpec",
    "RngStream",
    "FailureInjector",
    "FailureSchedule",
]
