"""Failure injection.

Schedules node crashes and single-process kills at chosen simulated
times, or at random times drawn from an exponential distribution —
the failure model the rollback-recovery literature assumes.  Used by
the recovery integration tests and the restart experiments: crash a
node after a checkpoint interval, then drive ``ompi-restart`` from the
surviving global snapshot.

Beyond fail-stop node death, the injector speaks a wider fault
vocabulary aimed at the C/R machinery itself: transient stable-storage
write failures and throughput slowdowns (VFS fault windows), data-plane
network partitions that cut a node's staging transfers mid-stage, and
truncated global-snapshot metadata — each exercising a different
recovery path (staging retry, walk-back, skip set) under injected
rather than hand-edited faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.util.errors import NetworkError, ProcessFailedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.cluster import Cluster
    from repro.simenv.process import SimProcess


@dataclass
class FailureSchedule:
    """A declarative list of (time, kind, target) failures."""

    node_crashes: list[tuple[float, str]] = field(default_factory=list)
    process_kills: list[tuple[float, int]] = field(default_factory=list)

    def crash_node(self, at: float, node_name: str) -> "FailureSchedule":
        self.node_crashes.append((at, node_name))
        return self

    def kill_pid(self, at: float, pid: int) -> "FailureSchedule":
        self.process_kills.append((at, pid))
        return self


class FailureInjector:
    """Arms failure events against a cluster."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.injected: list[tuple[float, str]] = []
        self._on_failure: list[Callable[[str], None]] = []
        #: node name -> sim time its data-plane partition heals
        self._partitioned_until: dict[str, float] = {}

    def on_failure(self, callback: Callable[[str], None]) -> None:
        """Register an observer (the error manager subscribes here)."""
        self._on_failure.append(callback)

    def _notify(self, description: str) -> None:
        self.injected.append((self.cluster.kernel.now, description))
        for cb in list(self._on_failure):
            cb(description)

    # -- direct (immediate) ---------------------------------------------------

    def crash_node_now(self, node_name: str) -> None:
        node = self.cluster.node(node_name)
        node.crash()
        self._notify(f"node:{node_name}")

    def kill_process_now(self, proc: "SimProcess") -> None:
        proc.kill(ProcessFailedError(f"{proc.label} killed by injector"))
        self._notify(f"process:{proc.label}")

    def crash_hnp_node_now(self, universe) -> str | None:
        """Crash the node hosting the universe's live HNP.

        The control-plane fault: the whole node goes down (mpirun, the
        local orted, and any application ranks placed there), so the
        surviving orteds' failover machinery — election, state-store
        rehydration — is what must carry recovery.  Returns the victim
        node's name, or None when no live HNP exists to target.
        """
        hnp = universe.hnp
        if hnp is None or not hnp.proc.alive:
            return None
        victim = hnp.proc.node.name
        self.crash_node_now(victim)
        return victim

    # -- storage / network / metadata faults ----------------------------------

    def fail_stable_writes_now(self, duration_s: float) -> None:
        """Stable-storage writes fail for *duration_s* sim-seconds.

        Reads keep working (the array is degraded, not lost), so
        restart stays possible while staging commits bounce — the
        staging retry and FAILED-interval paths are what this attacks.
        """
        self.cluster.stable_fs.inject_write_failures(duration_s)
        self._notify(f"stable:write_fail:{duration_s:g}")

    def slow_stable_now(self, duration_s: float, factor: float) -> None:
        """Stable-storage throughput drops by *factor*× for a while."""
        self.cluster.stable_fs.inject_slowdown(duration_s, factor)
        self._notify(f"stable:slow:{factor:g}x:{duration_s:g}")

    def partition_node_now(self, node_name: str, duration_s: float) -> None:
        """Cut *node_name*'s data-plane transfers for *duration_s*.

        Models a storage-network partition: FILEM tree copies and chunk
        ship/fetch involving the node raise :class:`NetworkError` while
        the window is open (the control plane — OOB RPCs — stays up, so
        detection and recovery still function; a partitioned control
        plane is node death, which :meth:`crash_node_now` models).
        """
        self.cluster.node(node_name)  # validate the name
        now = self.cluster.kernel.now
        until = now + duration_s
        self._partitioned_until[node_name] = max(
            self._partitioned_until.get(node_name, 0.0), until
        )
        self._notify(f"partition:{node_name}:{duration_s:g}")

    def is_partitioned(self, node_name: str) -> bool:
        return self.cluster.kernel.now < self._partitioned_until.get(
            node_name, 0.0
        )

    def check_link(self, node_name: str) -> None:
        """Raise :class:`NetworkError` while *node_name* is partitioned.

        FILEM components call this around data-plane transfers; the
        resulting error flows through the same staging retry/abort
        machinery as a real mid-transfer link loss.
        """
        if self.is_partitioned(node_name):
            raise NetworkError(
                f"node {node_name} is partitioned from the storage network"
            )

    def corrupt_newest_snapshot_meta_now(self) -> str | None:
        """Truncate the newest global snapshot's persisted metadata.

        Returns the corrupted metadata path (or None when no snapshot
        metadata exists yet).  The next recovery that considers the
        interval fails to parse it (``SnapshotError``) and walks back
        to an older committed interval — the walk-back path driven by
        an injected fault instead of hand-edited metadata.
        """
        from repro.snapshot import GLOBAL_META

        stable = self.cluster.stable_fs
        candidates = [
            p for p in stable.list_tree("/")
            if p.endswith("/" + GLOBAL_META) and p.count("/rank") == 0
        ]
        if not candidates:
            return None
        victim = max(candidates, key=lambda p: stable.stat(p).mtime)
        data = stable.peek(victim)
        stable.poke(victim, data[: max(1, len(data) // 3)])
        self._notify(f"meta_corrupt:{victim}")
        return victim

    # -- scheduled -----------------------------------------------------------

    def crash_node_at(self, at: float, node_name: str) -> None:
        self.cluster.kernel.call_at(at, lambda: self.crash_node_now(node_name))

    def kill_process_at(self, at: float, proc: "SimProcess") -> None:
        def fire() -> None:
            if proc.alive:
                self.kill_process_now(proc)

        self.cluster.kernel.call_at(at, fire)

    def arm(self, schedule: FailureSchedule) -> None:
        for at, node_name in schedule.node_crashes:
            self.crash_node_at(at, node_name)
        for at, pid in schedule.process_kills:
            target = None
            for node in self.cluster.nodes:
                for proc in node.processes:
                    if proc.pid == pid:
                        target = proc
            if target is not None:
                self.kill_process_at(at, target)

    def crash_random_up_node_now(
        self, exclude: tuple[str, ...] = (), stream: str = "failures"
    ) -> str | None:
        """Crash one random up node, skipping *exclude*; returns the
        victim name (or None if no eligible node remains).

        Unlike :meth:`arm_random_node_crash` the victim is chosen at
        call time from the nodes *currently* up, so cascading-failure
        campaigns never re-kill an already-dead node.
        """
        rng = self.cluster.rng(stream)
        candidates = [
            n.name for n in self.cluster.up_nodes if n.name not in exclude
        ]
        if not candidates:
            return None
        victim = rng.choice(candidates)
        self.crash_node_now(victim)
        return victim

    def arm_random_node_crash(
        self, mean_time_s: float, stream: str = "failures"
    ) -> float:
        """Crash one random node at an exponentially distributed time.

        Returns the chosen time (deterministic given the seed).
        """
        rng = self.cluster.rng(stream)
        at = self.cluster.kernel.now + rng.exponential(mean_time_s)
        victim = rng.choice([n.name for n in self.cluster.up_nodes])
        self.crash_node_at(at, victim)
        return at
