"""Failure injection.

Schedules node crashes and single-process kills at chosen simulated
times, or at random times drawn from an exponential distribution —
the failure model the rollback-recovery literature assumes.  Used by
the recovery integration tests and the restart experiments: crash a
node after a checkpoint interval, then drive ``ompi-restart`` from the
surviving global snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.util.errors import ProcessFailedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.cluster import Cluster
    from repro.simenv.process import SimProcess


@dataclass
class FailureSchedule:
    """A declarative list of (time, kind, target) failures."""

    node_crashes: list[tuple[float, str]] = field(default_factory=list)
    process_kills: list[tuple[float, int]] = field(default_factory=list)

    def crash_node(self, at: float, node_name: str) -> "FailureSchedule":
        self.node_crashes.append((at, node_name))
        return self

    def kill_pid(self, at: float, pid: int) -> "FailureSchedule":
        self.process_kills.append((at, pid))
        return self


class FailureInjector:
    """Arms failure events against a cluster."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.injected: list[tuple[float, str]] = []
        self._on_failure: list[Callable[[str], None]] = []

    def on_failure(self, callback: Callable[[str], None]) -> None:
        """Register an observer (the error manager subscribes here)."""
        self._on_failure.append(callback)

    def _notify(self, description: str) -> None:
        self.injected.append((self.cluster.kernel.now, description))
        for cb in list(self._on_failure):
            cb(description)

    # -- direct (immediate) ---------------------------------------------------

    def crash_node_now(self, node_name: str) -> None:
        node = self.cluster.node(node_name)
        node.crash()
        self._notify(f"node:{node_name}")

    def kill_process_now(self, proc: "SimProcess") -> None:
        proc.kill(ProcessFailedError(f"{proc.label} killed by injector"))
        self._notify(f"process:{proc.label}")

    # -- scheduled -----------------------------------------------------------

    def crash_node_at(self, at: float, node_name: str) -> None:
        self.cluster.kernel.call_at(at, lambda: self.crash_node_now(node_name))

    def kill_process_at(self, at: float, proc: "SimProcess") -> None:
        def fire() -> None:
            if proc.alive:
                self.kill_process_now(proc)

        self.cluster.kernel.call_at(at, fire)

    def arm(self, schedule: FailureSchedule) -> None:
        for at, node_name in schedule.node_crashes:
            self.crash_node_at(at, node_name)
        for at, pid in schedule.process_kills:
            target = None
            for node in self.cluster.nodes:
                for proc in node.processes:
                    if proc.pid == pid:
                        target = proc
            if target is not None:
                self.kill_process_at(at, target)

    def crash_random_up_node_now(
        self, exclude: tuple[str, ...] = (), stream: str = "failures"
    ) -> str | None:
        """Crash one random up node, skipping *exclude*; returns the
        victim name (or None if no eligible node remains).

        Unlike :meth:`arm_random_node_crash` the victim is chosen at
        call time from the nodes *currently* up, so cascading-failure
        campaigns never re-kill an already-dead node.
        """
        rng = self.cluster.rng(stream)
        candidates = [
            n.name for n in self.cluster.up_nodes if n.name not in exclude
        ]
        if not candidates:
            return None
        victim = rng.choice(candidates)
        self.crash_node_now(victim)
        return victim

    def arm_random_node_crash(
        self, mean_time_s: float, stream: str = "failures"
    ) -> float:
        """Crash one random node at an exponentially distributed time.

        Returns the chosen time (deterministic given the seed).
        """
        rng = self.cluster.rng(stream)
        at = self.cluster.kernel.now + rng.exponential(mean_time_s)
        victim = rng.choice([n.name for n in self.cluster.up_nodes])
        self.crash_node_at(at, victim)
        return at
