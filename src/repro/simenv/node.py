"""Simulated cluster node.

A node models the paper's testbed machines (dual 2.0 GHz Opterons,
4 GB RAM, GigE + InfiniBand): it owns a CPU-speed factor used to turn
abstract work units into simulated seconds, a local disk
(:class:`repro.vfs.localfs.LocalFS`), network interfaces added by the
cluster builder, and the set of processes currently placed on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.util.errors import ProcessFailedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel
    from repro.simenv.process import SimProcess
    from repro.vfs.localfs import LocalFS


class Node:
    """One machine of the simulated cluster."""

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        cpu_ghz: float = 2.0,
        mem_bytes: int = 4 * 2**30,
        os_tag: str = "linux-x86_64",
    ):
        self.kernel = kernel
        self.name = name
        self.cpu_ghz = cpu_ghz
        self.mem_bytes = mem_bytes
        #: OS/arch tag; the CRS records it in snapshot metadata so that
        #: restart can check image compatibility (heterogeneous support,
        #: paper section 4).
        self.os_tag = os_tag
        self.up = True
        self.processes: list["SimProcess"] = []
        #: network interfaces by fabric name ("eth", "ib", "lo")
        self.nics: dict[str, Any] = {}
        self.local_fs: "LocalFS | None" = None

    # -- placement -----------------------------------------------------------

    def attach(self, proc: "SimProcess") -> None:
        if not self.up:
            raise ProcessFailedError(f"node {self.name} is down")
        self.processes.append(proc)

    def detach(self, proc: "SimProcess") -> None:
        try:
            self.processes.remove(proc)
        except ValueError:
            pass

    # -- compute cost model ----------------------------------------------------

    def compute_seconds(self, work_units: float) -> float:
        """Convert abstract work units (≈ Gcycles) to seconds on this CPU."""
        if work_units < 0:
            raise ValueError("work must be non-negative")
        return work_units / self.cpu_ghz

    # -- failure ------------------------------------------------------------

    def crash(self) -> None:
        """Non-transient node failure: kill every process placed here.

        The local disk contents become unreachable (the motivation for
        FILEM gathering snapshots to *stable storage*, paper section
        5.2).
        """
        if not self.up:
            return
        self.up = False
        for proc in list(self.processes):
            proc.kill(ProcessFailedError(f"node {self.name} crashed"))
        if self.local_fs is not None:
            self.local_fs.mark_unreachable()

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.up else "DOWN"
        return f"<Node {self.name} {state} procs={len(self.processes)}>"
