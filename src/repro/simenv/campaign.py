"""Fault-injection campaigns: Poisson-paced faults at a given MTBF.

A campaign arms a Poisson process of faults (inter-arrival times drawn
from an exponential distribution, the standard failure model of the
rollback-recovery literature) against a running universe, then follows
a job's recovery lineage — original job, first restart, second
restart, ... — until some incarnation finishes or the error manager
gives up.  The resulting :class:`CampaignReport` carries the classic
C/R tradeoff numbers: work lost to rollbacks, recovery latency, and
effective progress, to be plotted against the checkpoint interval.

Beyond node crashes, a campaign's :class:`FaultSpec` vocabulary can mix
in the faults that attack the C/R machinery itself — transient
stable-storage write failures and slowdowns, data-plane network
partitions mid-stage, and truncated snapshot metadata — so ErrMgr's
walk-back, skip-set, and staging-retry paths are exercised by injected
faults.

Victims are drawn at *fire time* from the nodes still up (minus the
current HNP's node — hostile campaigns can still attack the control
plane through the dedicated ``hnp_crash`` fault, legal only when HNP
failover is enabled and a surviving orted could win the election), so
a cascading campaign never re-kills a dead node.  Everything is
deterministic given the cluster seed and the campaign's RNG stream:
the stream is persistent on the cluster, so successive inter-arrivals
are i.i.d. draws, not the same first sample replayed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.simenv.kernel import DeadlockError, SimError, SimGen, WaitEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.job import Job
    from repro.orte.universe import Universe

#: fault kinds a campaign can inject (see :class:`FaultSpec`)
FAULT_NODE_CRASH = "node_crash"
FAULT_STABLE_WRITE_FAIL = "stable_write_fail"
FAULT_STABLE_SLOW = "stable_slow"
FAULT_NET_PARTITION = "net_partition"
FAULT_META_CORRUPT = "meta_corrupt"
FAULT_HNP_CRASH = "hnp_crash"

FAULT_KINDS = (
    FAULT_NODE_CRASH,
    FAULT_STABLE_WRITE_FAIL,
    FAULT_STABLE_SLOW,
    FAULT_NET_PARTITION,
    FAULT_META_CORRUPT,
    FAULT_HNP_CRASH,
)


@dataclass(frozen=True)
class FaultSpec:
    """One kind of fault a campaign may draw at each arrival.

    ``weight`` sets the relative draw probability among the faults
    *applicable* at fire time (a crash that would drop below
    ``min_survivors`` is not applicable; metadata corruption needs a
    snapshot to exist).  ``duration_s`` bounds transient windows
    (write-fail, slowdown, partition) and ``factor`` is the slowdown
    multiplier.
    """

    kind: str = FAULT_NODE_CRASH
    weight: float = 1.0
    duration_s: float = 0.2
    factor: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(have {', '.join(FAULT_KINDS)})"
            )
        if self.weight <= 0:
            raise ValueError("fault weight must be positive")


@dataclass(frozen=True)
class CampaignSpec:
    """Shape of one fault-injection campaign."""

    #: mean time between faults (simulated seconds)
    mtbf_s: float
    #: stop injecting after this many faults
    max_failures: int = 2
    #: earliest time the first fault may fire
    start_at: float = 0.0
    #: node names never crashed (the HNP's node is always excluded)
    exclude_nodes: tuple[str, ...] = ()
    #: stop crashing when this few eligible nodes would remain
    min_survivors: int = 1
    #: RNG stream name (deterministic per cluster seed)
    stream: str = "campaign"
    #: fault vocabulary drawn from at each arrival (weighted)
    faults: tuple[FaultSpec, ...] = (FaultSpec(),)


@dataclass
class CampaignReport:
    """What happened: completion, failures, and recovery economics."""

    completed: bool
    final_jobid: int
    final_state: str
    #: sim time when the lineage settled (finished or gave up)
    makespan_s: float
    #: injected faults: [{"at": sim_time, "kind": ..., "node": name|None}]
    failures: list = field(default_factory=list)
    #: per-episode recovery audit (see RecoveryRecord.to_dict)
    recoveries: list = field(default_factory=list)
    #: successful restarts across the lineage
    restarts: int = 0
    #: total progress rolled back across all recoveries
    work_lost_s: float = 0.0
    #: total failure-detection-to-running latency
    recovery_latency_s: float = 0.0
    #: intervals that reached stable storage across the followed lineage
    committed_checkpoints: int = 0
    #: injected faults per kind
    fault_counts: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


class FaultCampaign:
    """Arms and re-arms exponentially spaced faults against a cluster."""

    def __init__(self, universe: "Universe", spec: CampaignSpec):
        self.universe = universe
        self.spec = spec
        self.failures: list[dict] = []
        self.stopped = False
        self._static_exclude = tuple(spec.exclude_nodes)

    @property
    def _exclude(self) -> tuple[str, ...]:
        """Nodes shielded from ordinary crashes, *as of now*.

        The control-plane node is resolved at fire time, not arm time:
        after an HNP failover the newly elected HNP's node inherits the
        protection (only the dedicated ``hnp_crash`` fault may target
        it), and the old node is dead anyway.
        """
        universe = self.universe
        hnp = universe.hnp
        if hnp is not None and hnp.proc.alive:
            hnp_node = hnp.proc.node.name
        else:
            hnp_node = universe.cluster.nodes[0].name
        return tuple(set(self._static_exclude) | {hnp_node})

    def arm(self) -> None:
        self._schedule(max(0.0, self.spec.start_at))

    def stop(self) -> None:
        """No further faults (already-scheduled timers become no-ops)."""
        self.stopped = True

    def _rng(self):
        # One persistent stream per campaign stream name: every call
        # advances it, so inter-arrivals are i.i.d. exponential.
        return self.universe.cluster.rng(self.spec.stream)

    def _schedule(self, base_delay: float = 0.0) -> None:
        delay = base_delay + self._rng().exponential(self.spec.mtbf_s)
        self.universe.kernel.call_later(delay, self._fire)

    # -- fault applicability & execution ---------------------------------------

    def _eligible_nodes(self) -> list[str]:
        cluster = self.universe.cluster
        return [
            n.name for n in cluster.up_nodes if n.name not in self._exclude
        ]

    def _applicable(self, eligible: list[str]) -> list[FaultSpec]:
        out = []
        for fault in self.spec.faults:
            if fault.kind == FAULT_NODE_CRASH:
                if len(eligible) > self.spec.min_survivors:
                    out.append(fault)
            elif fault.kind == FAULT_NET_PARTITION:
                if eligible:
                    out.append(fault)
            elif fault.kind == FAULT_HNP_CRASH:
                if self._hnp_crash_applicable():
                    out.append(fault)
            else:
                # storage and metadata faults need no victim node
                out.append(fault)
        return out

    def _hnp_crash_applicable(self) -> bool:
        """A control-plane crash is legal only when failover can win.

        Needs failover enabled, a live HNP, at least one electable
        orted on a *different* up node (someone must be able to take
        over), and enough survivors left after the crash.
        """
        universe = self.universe
        if not universe.failover_enabled:
            return False
        hnp = universe.hnp
        if hnp is None or not hnp.proc.alive:
            return False
        hnp_node = hnp.proc.node.name
        if not any(
            o.node.name != hnp_node for o in universe.electable_orteds()
        ):
            return False
        survivors = [
            n for n in universe.cluster.up_nodes if n.name != hnp_node
        ]
        return len(survivors) >= max(1, self.spec.min_survivors)

    def _inject(self, fault: FaultSpec, eligible: list[str]) -> dict | None:
        """Fire one fault; returns the failure record or None."""
        failures = self.universe.cluster.failures
        rng = self._rng()
        if fault.kind == FAULT_NODE_CRASH:
            victim = failures.crash_random_up_node_now(
                exclude=self._exclude, stream=self.spec.stream
            )
            if victim is None:
                return None
            return {"kind": fault.kind, "node": victim}
        if fault.kind == FAULT_NET_PARTITION:
            victim = rng.choice(eligible)
            failures.partition_node_now(victim, fault.duration_s)
            return {"kind": fault.kind, "node": victim}
        if fault.kind == FAULT_STABLE_WRITE_FAIL:
            failures.fail_stable_writes_now(fault.duration_s)
            return {"kind": fault.kind, "node": None}
        if fault.kind == FAULT_STABLE_SLOW:
            failures.slow_stable_now(fault.duration_s, fault.factor)
            return {"kind": fault.kind, "node": None}
        if fault.kind == FAULT_META_CORRUPT:
            victim_path = failures.corrupt_newest_snapshot_meta_now()
            if victim_path is None:
                return None
            return {"kind": fault.kind, "node": None, "path": victim_path}
        if fault.kind == FAULT_HNP_CRASH:
            victim = failures.crash_hnp_node_now(self.universe)
            if victim is None:
                return None
            return {"kind": fault.kind, "node": victim}
        return None  # pragma: no cover

    def _fire(self) -> None:
        if self.stopped or len(self.failures) >= self.spec.max_failures:
            return
        eligible = self._eligible_nodes()
        applicable = self._applicable(eligible)
        if not applicable:
            return
        total = sum(f.weight for f in applicable)
        draw = self._rng().uniform(0.0, total)
        chosen = applicable[-1]
        for fault in applicable:
            draw -= fault.weight
            if draw <= 0:
                chosen = fault
                break
        record = self._inject(chosen, eligible)
        if record is not None:
            record["at"] = self.universe.kernel.now
            self.failures.append(record)
        # A fault that found no target (e.g. meta_corrupt before the
        # first snapshot) re-arms without consuming the failure budget.
        if len(self.failures) < self.spec.max_failures:
            self._schedule()


def follow_lineage(universe: "Universe", job: "Job") -> SimGen:
    """Generator: block until *job*'s recovery lineage settles.

    Returns the final incarnation — the job that FINISHED, or the last
    FAILED one when recovery was exhausted or impossible.
    """
    from repro.orte.job import JobState

    current = job
    while True:
        state = yield from current.wait()
        if state != JobState.FAILED:
            return current
        # Re-resolve the error manager every episode: an HNP failover
        # replaces it mid-campaign (the outcome events themselves live
        # on the universe, so none are lost across the swap).
        errmgr = universe.hnp.errmgr
        successor = yield WaitEvent(errmgr.recovery_outcome(current.jobid))
        if successor is None:
            return current
        current = successor


def _drain_background(universe: "Universe") -> None:
    """Let in-flight background work settle after the lineage has.

    Disarmed campaign timers fire as no-ops during the drain; staging
    workers finish committing in-flight intervals.  The ``try`` is
    scoped to the drain alone and forgives exactly one outcome: the
    kernel running out of runnable threads (:class:`DeadlockError`) —
    the expected end state, since killed incarnations leave non-daemon
    threads parked on events that will never fire.  A thread *crashing*
    during the drain, by contrast, is a real bug and is re-raised: the
    crash watcher piggybacks on ``kernel.trace`` (chaining to any
    caller-installed callback) and surfaces the thread's stored
    exception instead of letting the drain eat it.
    """
    kernel = universe.kernel
    crashed: list[str] = []
    prior = kernel.trace

    def watch(t: float, name: str, ev: str) -> None:
        if ev.startswith("crash:"):
            crashed.append(name)
        if prior is not None:
            prior(t, name, ev)

    kernel.trace = watch
    try:
        kernel.run()
    except DeadlockError:
        pass
    finally:
        kernel.trace = prior
    if crashed:
        for thread in kernel._threads:
            if thread.name in crashed and thread.done._exc is not None:
                raise thread.done._exc
        raise SimError(
            f"thread(s) crashed during campaign drain: {sorted(set(crashed))}"
        )


def build_campaign_report(
    universe: "Universe", job: "Job", campaign: FaultCampaign, makespan: float
) -> CampaignReport:
    """Assemble the post-campaign report for *job*'s settled lineage.

    Shared by the single-run path (:func:`run_campaign`) and the fleet
    worker (``repro.fleet.runner``), so lineage filtering, committed-
    interval counting, and fault tallies have exactly one
    implementation.  The final incarnation is the lineage's newest
    jobid — restarts always mint fresh, larger jobids, so the job that
    FINISHED (or the last FAILED one when recovery gave up) is the max.
    """
    from repro.orte.job import JobState
    from repro.snapshot import STAGE_COMMITTED

    errmgr = universe.hnp.errmgr
    lineage = errmgr.lineage_jobids(job)
    final = universe.jobs[max(lineage)]
    # Committed intervals of the *followed lineage only* — a stager in
    # a multi-job universe holds other jobs' records too.
    committed = 0
    stager_fn = getattr(universe.hnp.snapc, "stager", None)
    if stager_fn is not None:
        stager = stager_fn(universe.hnp)
        for jobid in lineage:
            committed += sum(
                1 for rec in stager.job_records(jobid)
                if rec.state == STAGE_COMMITTED
            )
    fault_counts: dict[str, int] = {}
    for entry in campaign.failures:
        kind = entry.get("kind", FAULT_NODE_CRASH)
        fault_counts[kind] = fault_counts.get(kind, 0) + 1
    lineage_records = [
        r for r in errmgr.recovery_log if r.failed_jobid in lineage
    ]
    lineage_recovered = [r for r in lineage_records if r.recovered]
    return CampaignReport(
        completed=final.state == JobState.FINISHED,
        final_jobid=final.jobid,
        final_state=final.state.value,
        makespan_s=makespan,
        failures=list(campaign.failures),
        recoveries=[r.to_dict() for r in lineage_records],
        restarts=len(lineage_recovered),
        work_lost_s=sum(r.work_lost_s or 0.0 for r in lineage_recovered),
        recovery_latency_s=sum(
            r.latency_s or 0.0 for r in lineage_recovered
        ),
        committed_checkpoints=committed,
        fault_counts=fault_counts,
    )


def run_campaign(
    universe: "Universe", job: "Job", spec: CampaignSpec
) -> CampaignReport:
    """Drive the kernel through a campaign against *job*'s lineage."""
    campaign = FaultCampaign(universe, spec)
    campaign.arm()
    marks: dict[str, float] = {}

    def tracked() -> SimGen:
        # Stamp the settle time from inside the simulation: kernel.now
        # read after run_until_complete() would include whatever later
        # campaign timers the final drain happened to process.
        final = yield from follow_lineage(universe, job)
        marks["settled_at"] = universe.kernel.now
        return final

    thread = universe.kernel.spawn(tracked(), name=f"campaign-job{job.jobid}")
    universe.kernel.run_until_complete(thread)
    makespan = marks.get("settled_at", universe.kernel.now)
    campaign.stop()
    _drain_background(universe)
    return build_campaign_report(universe, job, campaign, makespan)
