"""Fault-injection campaigns: cascading node crashes at a given MTBF.

A campaign arms a Poisson process of node failures (inter-arrival times
drawn from an exponential distribution, the standard failure model of
the rollback-recovery literature) against a running universe, then
follows a job's recovery lineage — original job, first restart, second
restart, ... — until some incarnation finishes or the error manager
gives up.  The resulting :class:`CampaignReport` carries the classic
C/R tradeoff numbers: work lost to rollbacks, recovery latency, and
effective progress, to be plotted against the checkpoint interval.

Victims are drawn at *fire time* from the nodes still up (minus the
HNP's node, which hosts the simulated mpirun and is not recoverable),
so a cascading campaign never re-kills a dead node.  Everything is
deterministic given the cluster seed and the campaign's RNG stream.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.simenv.kernel import DeadlockError, SimGen, WaitEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.job import Job
    from repro.orte.universe import Universe


@dataclass(frozen=True)
class CampaignSpec:
    """Shape of one fault-injection campaign."""

    #: mean time between node failures (simulated seconds)
    mtbf_s: float
    #: stop injecting after this many crashes
    max_failures: int = 2
    #: earliest time the first failure may fire
    start_at: float = 0.0
    #: node names never crashed (the HNP's node is always excluded)
    exclude_nodes: tuple[str, ...] = ()
    #: stop injecting when this few eligible nodes would remain
    min_survivors: int = 1
    #: RNG stream name (deterministic per cluster seed)
    stream: str = "campaign"


@dataclass
class CampaignReport:
    """What happened: completion, failures, and recovery economics."""

    completed: bool
    final_jobid: int
    final_state: str
    #: sim time when the lineage settled (finished or gave up)
    makespan_s: float
    #: injected crashes: [{"at": sim_time, "node": name}]
    failures: list = field(default_factory=list)
    #: per-episode recovery audit (see RecoveryRecord.to_dict)
    recoveries: list = field(default_factory=list)
    #: successful restarts across the lineage
    restarts: int = 0
    #: total progress rolled back across all recoveries
    work_lost_s: float = 0.0
    #: total failure-detection-to-running latency
    recovery_latency_s: float = 0.0
    #: intervals that reached stable storage across the lineage
    committed_checkpoints: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


class FaultCampaign:
    """Arms and re-arms exponential node crashes against a cluster."""

    def __init__(self, universe: "Universe", spec: CampaignSpec):
        self.universe = universe
        self.spec = spec
        self.failures: list[dict] = []
        self.stopped = False
        hnp_node = universe.cluster.nodes[0].name
        self._exclude = tuple(set(spec.exclude_nodes) | {hnp_node})

    def arm(self) -> None:
        self._schedule(max(0.0, self.spec.start_at))

    def stop(self) -> None:
        """No further crashes (already-scheduled timers become no-ops)."""
        self.stopped = True

    def _schedule(self, base_delay: float = 0.0) -> None:
        rng = self.universe.cluster.rng(self.spec.stream)
        delay = base_delay + rng.exponential(self.spec.mtbf_s)
        self.universe.kernel.call_later(delay, self._fire)

    def _fire(self) -> None:
        if self.stopped or len(self.failures) >= self.spec.max_failures:
            return
        cluster = self.universe.cluster
        eligible = [
            n for n in cluster.up_nodes if n.name not in self._exclude
        ]
        if len(eligible) <= self.spec.min_survivors:
            return
        victim = cluster.failures.crash_random_up_node_now(
            exclude=self._exclude, stream=self.spec.stream
        )
        if victim is None:
            return
        self.failures.append(
            {"at": self.universe.kernel.now, "node": victim}
        )
        if len(self.failures) < self.spec.max_failures:
            self._schedule()


def follow_lineage(universe: "Universe", job: "Job") -> SimGen:
    """Generator: block until *job*'s recovery lineage settles.

    Returns the final incarnation — the job that FINISHED, or the last
    FAILED one when recovery was exhausted or impossible.
    """
    from repro.orte.job import JobState

    errmgr = universe.hnp.errmgr
    current = job
    while True:
        state = yield from current.wait()
        if state != JobState.FAILED:
            return current
        successor = yield WaitEvent(errmgr.recovery_outcome(current.jobid))
        if successor is None:
            return current
        current = successor


def run_campaign(
    universe: "Universe", job: "Job", spec: CampaignSpec
) -> CampaignReport:
    """Drive the kernel through a campaign against *job*'s lineage."""
    from repro.orte.job import JobState
    from repro.snapshot import STAGE_COMMITTED

    campaign = FaultCampaign(universe, spec)
    campaign.arm()
    marks: dict[str, float] = {}

    def tracked() -> SimGen:
        # Stamp the settle time from inside the simulation: kernel.now
        # read after run_until_complete() would include whatever later
        # campaign timers the final drain happened to process.
        final = yield from follow_lineage(universe, job)
        marks["settled_at"] = universe.kernel.now
        return final

    thread = universe.kernel.spawn(tracked(), name=f"campaign-job{job.jobid}")
    final = universe.kernel.run_until_complete(thread)
    makespan = marks.get("settled_at", universe.kernel.now)
    campaign.stop()
    try:
        # Let in-flight background staging settle (disarmed campaign
        # timers fire as no-ops during the drain).
        universe.kernel.run()
    except DeadlockError:
        pass

    errmgr = universe.hnp.errmgr
    recovered = [r for r in errmgr.recovery_log if r.recovered]
    committed = 0
    stager_fn = getattr(universe.hnp.snapc, "stager", None)
    if stager_fn is not None:
        stager = stager_fn(universe.hnp)
        for st in stager._jobs.values():
            committed += sum(
                1 for rec in st.records.values()
                if rec.state == STAGE_COMMITTED
            )
    return CampaignReport(
        completed=final.state == JobState.FINISHED,
        final_jobid=final.jobid,
        final_state=final.state.value,
        makespan_s=makespan,
        failures=list(campaign.failures),
        recoveries=[r.to_dict() for r in errmgr.recovery_log],
        restarts=len(errmgr.recoveries),
        work_lost_s=sum(r.work_lost_s or 0.0 for r in recovered),
        recovery_latency_s=sum(r.latency_s or 0.0 for r in recovered),
        committed_checkpoints=committed,
    )
