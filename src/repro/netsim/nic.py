"""Per-node network interface with transmit serialization.

A NIC can only serialize one message at a time: concurrent senders on
the same node queue behind each other, which is what makes large-
message bandwidth a real resource in the simulation (and lets the
FILEM gather experiments show congestion effects).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.netsim.models import LinkModel
from repro.util.errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel
    from repro.simenv.node import Node


class NIC:
    """One interface of one node on one fabric."""

    def __init__(self, node: "Node", model: LinkModel):
        self.node = node
        self.kernel: "Kernel" = node.kernel
        self.model = model
        self.up = True
        #: simulated time at which the transmit side becomes free
        self._tx_free_at = 0.0
        #: counters for diagnostics / tests
        self.tx_msgs = 0
        self.tx_bytes = 0
        self.rx_msgs = 0
        self.rx_bytes = 0

    @property
    def addr(self) -> str:
        return self.node.name

    def reserve_tx(self, nbytes: int) -> float:
        """Reserve the transmitter for a message of *nbytes*.

        Returns the delay the caller must wait (queueing + transmit
        serialization) before the message is on the wire.
        """
        if not self.up or not self.node.up:
            raise NetworkError(f"NIC {self.addr}/{self.model.name} is down")
        now = self.kernel.now
        start = max(now, self._tx_free_at)
        tx = self.model.transmit_time(nbytes)
        self._tx_free_at = start + tx
        self.tx_msgs += 1
        self.tx_bytes += nbytes
        return (start - now) + tx

    def note_rx(self, nbytes: int) -> None:
        self.rx_msgs += 1
        self.rx_bytes += nbytes

    def down(self) -> None:
        self.up = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NIC {self.addr}/{self.model.name} {'up' if self.up else 'down'}>"
