"""Reliable, in-order datagram transport over a switched fabric.

Endpoints are ``(node_name, port)`` pairs.  ``Fabric.send`` is a
blocking (generator) operation modelling sender-side serialization;
delivery happens ``latency`` later into the destination endpoint's
mailbox.  In-order delivery between any endpoint pair is guaranteed by
construction (single event queue + per-NIC serialization + fixed
latency).

In-flight accounting (``in_flight``) exists for tests and for the
fabric-level drain assertions in the CRCP experiments: the MPI-level
bookmark protocol must leave the fabric empty between any pair of
coordinated processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.netsim.models import LinkModel
from repro.netsim.nic import NIC
from repro.simenv.kernel import Delay, Queue, SimGen
from repro.util.errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel
    from repro.simenv.node import Node


@dataclass(frozen=True)
class Endpoint:
    """Address of a transport mailbox."""

    node: str
    port: str

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.node}:{self.port}"


@dataclass
class Datagram:
    """One message on the wire."""

    src: Endpoint
    dst: Endpoint
    payload: Any
    nbytes: int
    fabric: str = ""
    send_time: float = 0.0
    meta: dict = field(default_factory=dict)


class Fabric:
    """A switched network connecting every attached node."""

    def __init__(self, kernel: "Kernel", model: LinkModel):
        self.kernel = kernel
        self.model = model
        self.name = model.name
        self.nics: dict[str, NIC] = {}
        self._mailboxes: dict[Endpoint, Queue] = {}
        self.in_flight = 0
        self.delivered = 0
        self.dropped = 0

    # -- topology ------------------------------------------------------------

    def attach(self, node: "Node") -> NIC:
        if node.name in self.nics:
            raise NetworkError(f"{node.name} already attached to {self.name}")
        nic = NIC(node, self.model)
        self.nics[node.name] = nic
        node.nics[self.name] = nic
        return nic

    def has_node(self, node_name: str) -> bool:
        return node_name in self.nics

    # -- endpoints ----------------------------------------------------------

    def bind(self, node_name: str, port: str) -> Endpoint:
        if node_name not in self.nics:
            raise NetworkError(f"node {node_name} not on fabric {self.name}")
        ep = Endpoint(node_name, port)
        if ep in self._mailboxes:
            raise NetworkError(f"endpoint {ep} already bound on {self.name}")
        self._mailboxes[ep] = self.kernel.queue(f"{self.name}:{ep}")
        return ep

    def unbind(self, ep: Endpoint) -> None:
        self._mailboxes.pop(ep, None)

    def is_bound(self, ep: Endpoint) -> bool:
        return ep in self._mailboxes

    # -- data path ----------------------------------------------------------

    def send(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        nbytes: int,
        meta: dict | None = None,
    ) -> SimGen:
        """Blocking send: returns once the message is serialized onto
        the wire (not once delivered) — eager-protocol semantics."""
        nic = self.nics.get(src.node)
        if nic is None:
            raise NetworkError(f"node {src.node} not on fabric {self.name}")
        dgram = Datagram(
            src=src,
            dst=dst,
            payload=payload,
            nbytes=nbytes,
            fabric=self.name,
            send_time=self.kernel.now,
            meta=dict(meta or {}),
        )
        delay = nic.reserve_tx(nbytes)
        self.in_flight += 1
        yield Delay(delay)
        self.kernel.call_later(self.model.latency_s, lambda: self._deliver(dgram))
        return dgram

    def _deliver(self, dgram: Datagram) -> None:
        self.in_flight -= 1
        dst_nic = self.nics.get(dgram.dst.node)
        if dst_nic is None or not dst_nic.up or not dst_nic.node.up:
            self.dropped += 1
            return
        mailbox = self._mailboxes.get(dgram.dst)
        if mailbox is None:
            self.dropped += 1
            return
        dst_nic.note_rx(dgram.nbytes)
        self.delivered += 1
        mailbox.put(dgram)

    def recv(self, ep: Endpoint) -> SimGen:
        """Blocking receive from the endpoint's mailbox."""
        mailbox = self._mailboxes.get(ep)
        if mailbox is None:
            raise NetworkError(f"endpoint {ep} not bound on {self.name}")
        dgram = yield from mailbox.get()
        return dgram

    def try_recv(self, ep: Endpoint) -> tuple[bool, Datagram | None]:
        mailbox = self._mailboxes.get(ep)
        if mailbox is None:
            raise NetworkError(f"endpoint {ep} not bound on {self.name}")
        ok, dgram = mailbox.try_get()
        return ok, dgram

    def pending(self, ep: Endpoint) -> int:
        mailbox = self._mailboxes.get(ep)
        return len(mailbox) if mailbox is not None else 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Fabric {self.name} nodes={len(self.nics)} "
            f"inflight={self.in_flight}>"
        )
