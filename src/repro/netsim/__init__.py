"""Network substrate: fabrics, NICs, link cost models, transport.

Models the paper's testbed interconnects — gigabit Ethernet and
InfiniBand — as switched *fabrics*.  Every node gets one NIC per
fabric; a reliable, in-order datagram transport delivers messages
between ``(node, port)`` endpoints with simulated latency and
sender-NIC bandwidth serialization.

The InfiniBand fabric is flagged *non-checkpointable*: its endpoints
hold state outside the process image, so the PML's ``ft_event`` must
shut such BTLs down before a checkpoint and reconnect on restart
(paper section 6.3).
"""

from repro.netsim.models import LinkModel, ethernet_1g, infiniband, loopback
from repro.netsim.nic import NIC
from repro.netsim.transport import Datagram, Endpoint, Fabric

__all__ = [
    "LinkModel",
    "ethernet_1g",
    "infiniband",
    "loopback",
    "NIC",
    "Datagram",
    "Endpoint",
    "Fabric",
]
