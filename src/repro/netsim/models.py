"""Link cost models.

A :class:`LinkModel` turns a message size into transmission and
propagation costs.  Parameters approximate the paper's testbed
(section 7): gigabit Ethernet and InfiniBand between dual-Opteron
nodes.  Absolute values are not the point — the *ratios* (IB an order
of magnitude lower latency and ~8x the bandwidth of GigE) drive the
shapes of the NetPIPE curves.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkModel:
    """Cost model for one fabric.

    ``transmit_time`` is the time the sender NIC is busy serializing
    the message; ``latency`` is switch+wire propagation added after
    serialization.  ``per_msg_overhead`` models fixed protocol costs
    (header processing, DMA setup).
    """

    name: str
    latency_s: float
    bandwidth_Bps: float
    per_msg_overhead_s: float = 0.0
    #: Whether endpoint state survives inside a process image.  False
    #: for RDMA-style fabrics whose HCA state lives outside the
    #: process; the PML shuts these down around checkpoints.
    checkpointable: bool = True

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_Bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")

    def transmit_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        return self.per_msg_overhead_s + nbytes / self.bandwidth_Bps

    def transfer_time(self, nbytes: int) -> float:
        """End-to-end time for one unqueued message."""
        return self.transmit_time(nbytes) + self.latency_s


def ethernet_1g() -> LinkModel:
    """Gigabit Ethernet: ~50 us latency, 125 MB/s."""
    return LinkModel(
        name="eth",
        latency_s=50e-6,
        bandwidth_Bps=125e6,
        per_msg_overhead_s=2e-6,
        checkpointable=True,
    )


def infiniband() -> LinkModel:
    """4x SDR InfiniBand: ~5 us latency, ~1 GB/s, non-checkpointable."""
    return LinkModel(
        name="ib",
        latency_s=5e-6,
        bandwidth_Bps=1e9,
        per_msg_overhead_s=0.5e-6,
        checkpointable=False,
    )


def loopback() -> LinkModel:
    """Same-node transfers (shared memory copy)."""
    return LinkModel(
        name="lo",
        latency_s=0.5e-6,
        bandwidth_Bps=4e9,
        per_msg_overhead_s=0.1e-6,
        checkpointable=True,
    )
