"""1-D Jacobi heat diffusion with halo exchange.

The canonical long-running HPC workload the paper's fault tolerance
targets: iterative stencil sweeps, nearest-neighbour halo exchanges,
periodic residual allreduce, and optional periodic checkpoints.  The
domain state lives in NumPy arrays — real bytes on the simulated wire
and in the process image.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import app
from repro.ompi.coll.base import MAX

TAG_LEFT = 11
TAG_RIGHT = 12


@app("jacobi")
def jacobi_main(ctx):
    """args: n_global (default 1024), iters (default 50),
    checkpoint_every (optional int: rank 0 checkpoints every N iters),
    tol (optional float: stop early when residual < tol)."""
    n_global = int(ctx.args.get("n_global", 1024))
    iters = int(ctx.args.get("iters", 50))
    checkpoint_every = ctx.args.get("checkpoint_every")
    tol = ctx.args.get("tol")
    rank, size = ctx.rank, ctx.size

    n_local = n_global // size + (1 if rank < n_global % size else 0)
    # Local slab with two ghost cells; fixed boundary values 1.0 / 0.0.
    u = np.zeros(n_local + 2, dtype=np.float64)
    if rank == 0:
        u[0] = 1.0

    residual = np.inf
    completed = 0
    for it in range(iters):
        # Halo exchange with neighbours.
        reqs = []
        if rank > 0:
            reqs.append((yield ctx.isend(u[1:2].copy(), rank - 1, TAG_LEFT)))
            right_req = yield ctx.irecv(rank - 1, TAG_RIGHT)
        if rank < size - 1:
            reqs.append((yield ctx.isend(u[-2:-1].copy(), rank + 1, TAG_RIGHT)))
            left_req = yield ctx.irecv(rank + 1, TAG_LEFT)
        if rank > 0:
            result = yield ctx.wait(right_req)
            u[0] = result[0][0]
        if rank < size - 1:
            result = yield ctx.wait(left_req)
            u[-1] = result[0][0]
        yield from ctx.waitall(reqs)

        # Sweep (~2 flops/cell at 1 GFLOP/s effective).
        new_interior = 0.5 * (u[:-2] + u[2:])
        residual = float(np.max(np.abs(new_interior - u[1:-1]))) if n_local else 0.0
        u[1:-1] = new_interior
        yield ctx.compute(seconds=max(n_local, 1) * 2e-9)
        completed = it + 1

        if tol is not None and it % 10 == 9:
            residual = yield from ctx.allreduce(residual, op=MAX)
            if residual < float(tol):
                break
        if (
            checkpoint_every
            and rank == 0
            and (it + 1) % int(checkpoint_every) == 0
            and it + 1 < iters
        ):
            yield ctx.checkpoint()

    checksum = float(u[1:-1].sum()) if n_local else 0.0
    total = yield from ctx.allreduce(checksum)
    return {
        "rank": rank,
        "iters": completed,
        "checksum": total,
        "residual": residual,
    }
