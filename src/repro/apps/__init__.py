"""Application kit and sample workloads.

Applications are generator functions ``main(ctx)`` that *yield*
:class:`repro.ompi.ops.MPIOp` descriptors (built via the
:class:`AppContext` API) and compose helper generators with
``yield from``.  They are registered by name
(:mod:`repro.apps.registry`) so that global snapshot metadata can name
them and ``ompi-restart`` can re-instantiate them.
"""

from repro.apps.appkit import AppContext, AppRunner
from repro.apps.registry import app, get_app, has_app, registered_apps

__all__ = [
    "AppContext",
    "AppRunner",
    "app",
    "get_app",
    "has_app",
    "registered_apps",
]

# Importing the workload modules registers them.
from repro.apps import cg, churn, jacobi, master_worker, netpipe, pi, ring  # noqa: E402,F401
