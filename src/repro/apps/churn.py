"""Churn workload: a tunable stay-alive application for experiments.

Loops of coarse compute chunks with optional neighbour messaging and
optional bulk state, giving the benchmarks precise control over three
knobs that drive checkpoint costs:

* lifetime (``loops`` x ``compute_s``) — cheap in kernel events;
* in-flight messaging rate (``msgs_per_loop``, ``payload_bytes``) —
  drives the CRCP drain (E4);
* image size (``state_bytes`` of per-rank NumPy ballast) — drives the
  FILEM gather (E5).
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import app

TAG_CHURN = 41


@app("churn")
def churn_main(ctx):
    """args: loops (20), compute_s (0.01), msgs_per_loop (0),
    payload_bytes (1024), state_bytes (0)."""
    loops = int(ctx.args.get("loops", 20))
    compute_s = float(ctx.args.get("compute_s", 0.01))
    msgs_per_loop = int(ctx.args.get("msgs_per_loop", 0))
    payload_bytes = int(ctx.args.get("payload_bytes", 1024))
    state_bytes = int(ctx.args.get("state_bytes", 0))
    rank, size = ctx.rank, ctx.size

    ballast = np.zeros(max(state_bytes, 1), dtype=np.uint8)
    right = (rank + 1) % size
    left = (rank - 1) % size

    if state_bytes and size > 1:
        # Route the ballast through a neighbour exchange so it enters
        # the op log — i.e. the process image really carries
        # ``state_bytes`` of data (local variables are reconstructed by
        # replay; logged op results are stored).
        incoming, _status = yield from ctx.sendrecv(
            ballast, right, src=left, tag=TAG_CHURN + 1
        )
        ballast = incoming

    received = 0
    for loop in range(loops):
        yield ctx.compute(seconds=compute_s)
        ballast[loop % len(ballast)] = loop % 256
        if msgs_per_loop and size > 1:
            payload = np.full(payload_bytes, loop % 256, dtype=np.uint8)
            send_reqs = []
            for _ in range(msgs_per_loop):
                send_reqs.append((yield ctx.isend(payload, right, TAG_CHURN)))
            for _ in range(msgs_per_loop):
                yield ctx.wait((yield ctx.irecv(left, TAG_CHURN)))
                received += 1
            for req in send_reqs:
                yield ctx.wait(req)
    checksum = int(ballast.sum())
    return {"rank": rank, "received": received, "checksum": checksum}
