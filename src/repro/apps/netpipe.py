"""NetPIPE analogue: two-rank ping-pong sweep over message sizes.

The paper's evaluation instrument (section 7).  Rank 0 and rank 1
bounce messages of increasing size; for each size we record the
half-round-trip simulated latency and derived bandwidth.  The harness
in :mod:`repro.bench.netpipe_bench` additionally measures *wall-clock*
per-call cost, which is where the C/R interposition overhead (the
paper's ~3% small-message figure) shows up.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import app

TAG_PING = 31
TAG_PONG = 32

#: default size sweep: 1 B .. 4 MiB in octave steps
DEFAULT_SIZES = [1 << i for i in range(0, 23, 2)]


@app("netpipe")
def netpipe_main(ctx):
    """args: sizes (list of ints), reps_per_size (default 5).

    Rank 0 returns ``{"series": [(size, latency_s, bandwidth_Bps)]}``.
    Extra ranks (size > 2) idle at the final barrier.
    """
    sizes = [int(s) for s in ctx.args.get("sizes", DEFAULT_SIZES)]
    reps = int(ctx.args.get("reps_per_size", 5))
    rank = ctx.rank
    if ctx.size < 2:
        raise ValueError("netpipe needs at least 2 ranks")

    series: list[tuple[int, float, float]] = []
    if rank == 0:
        for size in sizes:
            payload = np.zeros(size, dtype=np.uint8)
            start = yield ctx.now()
            for _ in range(reps):
                yield from ctx.send(payload, 1, TAG_PING)
                _echo, _status = yield from ctx.recv(1, TAG_PONG)
            end = yield ctx.now()
            half_rtt = (end - start) / (2 * reps)
            bandwidth = size / half_rtt if half_rtt > 0 else 0.0
            series.append((size, half_rtt, bandwidth))
    elif rank == 1:
        for size in sizes:
            for _ in range(reps):
                payload, _status = yield from ctx.recv(0, TAG_PING)
                yield from ctx.send(payload, 0, TAG_PONG)
    yield from ctx.barrier()
    return {"rank": rank, "series": series}
