"""Application registry.

Global snapshot metadata records the *name* of the application plus its
arguments (paper section 4: restart must not require the user to
remember how the job was started); this registry maps names back to
main functions at restart time.
"""

from __future__ import annotations

from typing import Callable

from repro.util.errors import RestartError

_APPS: dict[str, Callable] = {}


def app(name: str):
    """Decorator registering an application main function."""

    def register(fn: Callable) -> Callable:
        if name in _APPS and _APPS[name] is not fn:
            raise ValueError(f"application {name!r} already registered")
        _APPS[name] = fn
        return fn

    return register


def get_app(name: str) -> Callable:
    try:
        return _APPS[name]
    except KeyError:
        raise RestartError(
            f"unknown application {name!r} "
            f"(registered: {', '.join(sorted(_APPS)) or 'none'})"
        ) from None


def has_app(name: str) -> bool:
    return name in _APPS


def registered_apps() -> list[str]:
    return sorted(_APPS)
