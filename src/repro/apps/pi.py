"""Monte-Carlo pi estimation: embarrassingly parallel + one allreduce.

Exercises compute phases, the deterministic per-rank RNG (identical
across restart replay), and reduction collectives.
"""

from __future__ import annotations

from repro.apps.registry import app
from repro.ompi.coll.base import SUM


@app("pi")
def pi_main(ctx):
    """args: samples_per_rank (default 10000), batches (default 4),
    checkpoint_each_batch (bool, rank 0 checkpoints between batches)."""
    samples = int(ctx.args.get("samples_per_rank", 10_000))
    batches = int(ctx.args.get("batches", 4))
    ckpt_each = bool(ctx.args.get("checkpoint_each_batch", False))
    per_batch = max(1, samples // batches)

    hits = 0
    total = 0
    for batch in range(batches):
        # ~50 ns of simulated work per sample.
        yield ctx.compute(seconds=per_batch * 50e-9)
        for _ in range(per_batch):
            x = ctx.rng.uniform()
            y = ctx.rng.uniform()
            if x * x + y * y <= 1.0:
                hits += 1
        total += per_batch
        yield from ctx.barrier()
        if ckpt_each and ctx.rank == 0 and batch < batches - 1:
            yield ctx.checkpoint()
    global_hits = yield from ctx.allreduce(hits, op=SUM)
    global_total = yield from ctx.allreduce(total, op=SUM)
    estimate = 4.0 * global_hits / global_total
    return {"rank": ctx.rank, "pi": estimate, "samples": global_total}
