"""Ring workload: a token circulates rank 0 → 1 → … → 0, many laps.

The classic smoke test: exercises blocking point-to-point in a
dependency chain, and (with ``checkpoint_at_lap``) a synchronous
checkpoint mid-stream.
"""

from __future__ import annotations

from repro.apps.registry import app

TAG_TOKEN = 7


@app("ring")
def ring_main(ctx):
    """args: laps (int, default 3), payload_bytes (int, default 64),
    checkpoint_at_lap (int, optional; rank 0 requests a checkpoint
    after completing that lap)."""
    laps = int(ctx.args.get("laps", 3))
    payload_bytes = int(ctx.args.get("payload_bytes", 64))
    checkpoint_at_lap = ctx.args.get("checkpoint_at_lap")
    rank, size = ctx.rank, ctx.size
    right = (rank + 1) % size
    left = (rank - 1) % size

    hops = 0
    if size == 1:
        return {"rank": rank, "hops": laps}
    for lap in range(laps):
        if rank == 0:
            token = bytes([lap % 256]) * payload_bytes
            yield from ctx.send(token, right, TAG_TOKEN)
            token_back, _status = yield from ctx.recv(left, TAG_TOKEN)
            assert token_back == token, "token corrupted on the ring"
            hops += size
            if checkpoint_at_lap is not None and lap == int(checkpoint_at_lap):
                result = yield ctx.checkpoint()
                yield ctx.log(f"checkpointed to {result['snapshot']}")
        else:
            token, _status = yield from ctx.recv(left, TAG_TOKEN)
            yield from ctx.send(token, right, TAG_TOKEN)
            hops += size
    finish = yield ctx.now()
    return {"rank": rank, "hops": hops, "finished_at": finish}
