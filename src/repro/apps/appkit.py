"""Application runtime: the op-driving runner and the ``ctx`` API.

The **AppRunner** drives the application generator, executing each
yielded :class:`MPIOp` and recording its outcome.  That outcome log is
the application half of the ``simcr`` process image: restart replays
the log against a fresh generator (ops suppressed, outcomes fed back),
reconstructing the exact application state at the checkpoint, then
switches to live execution.  Failed ops are logged too — ``("err",
type, message)`` — so applications that catch and handle errors replay
identically.

The **AppContext** is the user-facing MPI façade (mpi4py-flavoured
lowercase API: ``send``/``recv``/``bcast``…).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.ft_event import FTState
from repro.ompi import errors_map
from repro.ompi.coll.base import SUM, check_app_tag
from repro.ompi.communicator import Communicator
from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.group import Group
from repro.ompi.ops import (
    MPIOp,
    OpCheckpoint,
    OpCompute,
    OpIProbe,
    OpIRecv,
    OpISend,
    OpLog,
    OpNow,
    OpTest,
    OpWait,
)
from repro.ompi.status import Status
from repro.simenv.kernel import SimGen
from repro.simenv.rng import RngStream
from repro.util.errors import MPIError, ReproError, RestartError
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.ompi.layer import OmpiLayer
    from repro.opal.layer import OpalLayer
    from repro.orte.job import ProcSpec
    from repro.orte.proc_layer import OrteProcLayer
    from repro.orte.universe import Universe
    from repro.simenv.process import SimProcess

log = get_logger("apps.runner")


class AppRunner:
    """Drives an application main generator; owns the record-replay log."""

    image_key = "app.runner"

    def __init__(
        self,
        proc: "SimProcess",
        universe: "Universe",
        opal: "OpalLayer",
        orte_layer: "OrteProcLayer",
        ompi: "OmpiLayer",
        spec: "ProcSpec",
    ):
        self.proc = proc
        self.universe = universe
        self.opal = opal
        self.orte = orte_layer
        self.ompi = ompi
        self.spec = spec
        self.kernel = proc.kernel
        self.rml = orte_layer.rml
        #: outcomes of completed ops, in program order
        self.log: list[Any] = []
        #: the op currently executing (None between ops)
        self.current_op: MPIOp | None = None
        self._restored_log: list[Any] | None = None
        self.is_restart = spec.restart_from is not None
        self.ctx = AppContext(self)
        opal.register_contributor(self)

    # -- image contribution -------------------------------------------------------

    def capture_image_state(self, crs_name: str):
        if crs_name == "self":
            # Application state is the user's business under SELF.
            return None
        log = list(self.log)
        if isinstance(self.current_op, OpCheckpoint):
            # The main thread is blocked inside a synchronous checkpoint
            # request — the very checkpoint being taken.  In the image,
            # that call is recorded as *returned*, so the restarted
            # process resumes out of the checkpoint call with a
            # "restarted" indicator rather than re-requesting a
            # checkpoint (Open MPI's synchronous-API semantics).
            log.append(
                (
                    "ok",
                    {
                        "ok": True,
                        "restarted": True,
                        "snapshot": None,
                        "interval": None,
                        "error": None,
                    },
                )
            )
        return {"log": log}

    def restore_image_state(self, state) -> None:
        self._restored_log = list(state["log"])

    # -- the process main thread ---------------------------------------------------

    def main_thread(self) -> SimGen:
        from repro.apps.registry import get_app

        if self.is_restart:
            yield from self._load_image()
        yield from self.ompi.mpi_init()
        self.ctx._post_init()

        replay = list(self._restored_log or [])
        self.log = list(replay)
        restart_pending = self.is_restart
        if restart_pending and not replay:
            # Nothing to replay (SELF images, or a checkpoint taken
            # before the first op): notify RESTART before app code runs.
            yield from self.opal.restart_notify()
            restart_pending = False

        main = get_app(self.spec.app.name)
        gen = main(self.ctx)
        index = 0
        value: Any = None
        throw: BaseException | None = None
        while True:
            try:
                if throw is not None:
                    op = gen.throw(throw)
                    throw = None
                else:
                    op = gen.send(value) if index or value is not None else next(gen)
            except StopIteration as stop:
                result = stop.value
                break
            if not isinstance(op, MPIOp):
                raise MPIError(
                    f"{self.proc.label}: application yielded {op!r}, "
                    "expected an MPIOp"
                )
            if index < len(replay):
                entry = replay[index]
                index += 1
                value, throw = self._decode_entry(entry)
                continue
            if restart_pending:
                yield from self.opal.restart_notify()
                restart_pending = False
            self.current_op = op
            try:
                value = yield from op.execute(self)
                self.log.append(("ok", value))
            except ReproError as exc:
                self.log.append(("err", type(exc).__name__, str(exc)))
                throw = exc
                value = None
            finally:
                self.current_op = None
            index += 1

        yield from self.ompi.mpi_finalize()
        return result

    def _decode_entry(self, entry) -> tuple[Any, BaseException | None]:
        kind = entry[0]
        if kind == "ok":
            return entry[1], None
        if kind == "err":
            return None, errors_map.rebuild(entry[1], entry[2])
        raise RestartError(f"corrupt replay log entry {entry!r}")

    def _load_image(self) -> SimGen:
        from repro.snapshot import LocalSnapshotRef

        info = self.spec.restart_from
        assert info is not None
        if info["fs"] == "stable":
            fs = self.universe.cluster.stable_fs
        else:
            fs = self.proc.node.local_fs
        # A delta snapshot is reconstructed from its base-chain
        # (oldest full first, newest last); full snapshots and
        # pre-incremental layouts are a single-entry chain.
        dirs = info.get("chain") or [info["dir"]]
        refs = [LocalSnapshotRef(fs_name=fs.name, path=d) for d in dirs]
        meta, image = yield from self.opal.crs.restart_extract_chain(fs, refs)
        if not meta.portable and meta.os_tag != self.proc.node.os_tag:
            raise RestartError(
                f"image from {meta.origin_node} ({meta.os_tag}) is not "
                f"portable to {self.proc.node.name} ({self.proc.node.os_tag})"
            )
        self.opal.crs.restore(self.opal, image)
        return None


class AppContext:
    """The API applications program against.

    Point-to-point and collective calls follow mpi4py's lowercase
    pickle-style conventions; everything blocking is used as
    ``x = yield ctx.op(...)`` (single ops) or
    ``x = yield from ctx.helper(...)`` (composites).
    """

    def __init__(self, runner: AppRunner):
        self._runner = runner
        self.args: dict = dict(runner.spec.app.args)
        self.restored_state: Any = None
        self._rng: RngStream | None = None

    # -- identity -----------------------------------------------------------------

    def _post_init(self) -> None:
        """Called by the runner right after MPI_INIT."""
        opal = self._runner.opal
        self.restored_state = opal.self_callbacks.pop("_restored_state", None)

    @property
    def comm_world(self) -> Communicator:
        comm = self._runner.ompi.comm_world
        if comm is None:
            raise MPIError("MPI not initialized yet")
        return comm

    @property
    def rank(self) -> int:
        return self.comm_world.rank

    @property
    def size(self) -> int:
        return self.comm_world.size

    @property
    def rng(self) -> RngStream:
        """Deterministic per-(app, rank) random stream.

        Keyed by application name + rank (not jobid), so a restarted
        job replays the identical stream.
        """
        if self._rng is None:
            self._rng = RngStream(
                self._runner.universe.cluster.spec.seed,
                f"app.{self._runner.spec.app.name}.rank{self.rank}",
            )
        return self._rng

    # -- point-to-point (single ops) ----------------------------------------------

    def isend(self, payload: Any, dst: int, tag: int = 0, comm: Communicator | None = None) -> MPIOp:
        return OpISend(comm or self.comm_world, dst, check_app_tag(tag), payload)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG, comm: Communicator | None = None) -> MPIOp:
        if tag not in (ANY_TAG,):
            check_app_tag(tag)
        return OpIRecv(comm or self.comm_world, src, tag)

    def wait(self, req_id: int) -> MPIOp:
        return OpWait(req_id)

    def test(self, req_id: int) -> MPIOp:
        return OpTest(req_id)

    def iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG, comm: Communicator | None = None) -> MPIOp:
        return OpIProbe(comm or self.comm_world, src, tag)

    # -- point-to-point (blocking composites) ----------------------------------------

    def send(self, payload: Any, dst: int, tag: int = 0, comm: Communicator | None = None) -> SimGen:
        req = yield self.isend(payload, dst, tag, comm)
        yield OpWait(req)
        return None

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG, comm: Communicator | None = None) -> SimGen:
        """Blocking receive; returns ``(payload, Status)``."""
        req = yield self.irecv(src, tag, comm)
        result = yield OpWait(req)
        payload, status_tuple = result
        return payload, Status.from_tuple(status_tuple)

    def sendrecv(
        self,
        payload: Any,
        dst: int,
        src: int = ANY_SOURCE,
        tag: int = 0,
        comm: Communicator | None = None,
    ) -> SimGen:
        send_req = yield self.isend(payload, dst, tag, comm)
        recv_req = yield self.irecv(src, tag if src != ANY_SOURCE else ANY_TAG, comm)
        result = yield OpWait(recv_req)
        yield OpWait(send_req)
        received, status_tuple = result
        return received, Status.from_tuple(status_tuple)

    def waitall(self, req_ids: list[int]) -> SimGen:
        results = []
        for req in req_ids:
            results.append((yield OpWait(req)))
        return results

    # -- collectives ---------------------------------------------------------------

    def _coll(self):
        return self._runner.ompi.coll

    def barrier(self, comm: Communicator | None = None) -> SimGen:
        yield from self._coll().barrier(comm or self.comm_world)
        return None

    def bcast(self, value: Any, root: int = 0, comm: Communicator | None = None) -> SimGen:
        result = yield from self._coll().bcast(comm or self.comm_world, value, root)
        return result

    def reduce(self, value: Any, op=SUM, root: int = 0, comm: Communicator | None = None) -> SimGen:
        result = yield from self._coll().reduce(
            comm or self.comm_world, value, op=op, root=root
        )
        return result

    def allreduce(self, value: Any, op=SUM, comm: Communicator | None = None) -> SimGen:
        result = yield from self._coll().allreduce(comm or self.comm_world, value, op=op)
        return result

    def gather(self, value: Any, root: int = 0, comm: Communicator | None = None) -> SimGen:
        result = yield from self._coll().gather(comm or self.comm_world, value, root=root)
        return result

    def scatter(self, values, root: int = 0, comm: Communicator | None = None) -> SimGen:
        result = yield from self._coll().scatter(
            comm or self.comm_world, values, root=root
        )
        return result

    def allgather(self, value: Any, comm: Communicator | None = None) -> SimGen:
        result = yield from self._coll().allgather(comm or self.comm_world, value)
        return result

    def alltoall(self, values, comm: Communicator | None = None) -> SimGen:
        result = yield from self._coll().alltoall(comm or self.comm_world, values)
        return result

    def scan(self, value: Any, op=SUM, comm: Communicator | None = None) -> SimGen:
        result = yield from self._coll().scan(comm or self.comm_world, value, op=op)
        return result

    # -- communicator management ------------------------------------------------------

    def comm_dup(self, comm: Communicator | None = None) -> SimGen:
        base = comm or self.comm_world
        cid = yield from self._agree_cid(base)
        dup = Communicator(cid, base.group, base.my_world_rank)
        self._runner.ompi.register_comm(dup)
        return dup

    def comm_split(self, color: int, key: int, comm: Communicator | None = None) -> SimGen:
        base = comm or self.comm_world
        cid = yield from self._agree_cid(base)
        triples = yield from self._coll().allgather(base, (color, key, base.rank))
        members = sorted(
            (k, r) for (c, k, r) in triples if c == color
        )
        world_ranks = [base.world_rank(r) for _k, r in members]
        split = Communicator(cid + color, Group(world_ranks), base.my_world_rank)
        self._runner.ompi.register_comm(split)
        return split

    def _agree_cid(self, base: Communicator) -> SimGen:
        from repro.ompi.coll.base import MAX

        ompi = self._runner.ompi
        proposal = ompi.next_cid
        agreed = yield from self._coll().allreduce(base, proposal, op=MAX)
        # Reserve a generous block so comm_split's color offsets are safe.
        ompi.next_cid = agreed + base.size + 1
        return agreed

    # -- local ops ----------------------------------------------------------------

    def compute(self, seconds: float | None = None, work: float | None = None) -> MPIOp:
        return OpCompute(seconds=seconds, work=work)

    def now(self) -> MPIOp:
        return OpNow()

    def log(self, message: str) -> MPIOp:
        return OpLog(message)

    def checkpoint(self, terminate: bool = False, **options) -> MPIOp:
        """Synchronous checkpoint request (common API, paper section 1)."""
        return OpCheckpoint(terminate=terminate, options=options)

    # -- fault tolerance registration ------------------------------------------------

    def register_inc(self, inc: Callable) -> Callable:
        """Register an application INC; returns the previous callback
        (which the new INC must invoke — paper section 5.5).

        The INC signature is ``inc(state, down)`` where ``down(state)``
        is a generator calling the rest of the stack.
        """
        return self._runner.opal.inc_stack.register("app", inc)

    def register_self_callbacks(
        self,
        checkpoint: Callable | None = None,
        restart: Callable | None = None,
        continue_: Callable | None = None,
    ) -> None:
        """Register SELF-CRS callbacks (paper sections 2, 6.4)."""
        callbacks = self._runner.opal.self_callbacks
        if checkpoint is not None:
            callbacks["checkpoint"] = checkpoint
        if restart is not None:
            callbacks["restart"] = restart
        if continue_ is not None:
            callbacks["continue"] = continue_

    # -- constants re-exported for app convenience -----------------------------------

    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG
    FTState = FTState
