"""Distributed conjugate-gradient solver (collectives-heavy workload).

Solves a 1-D Laplacian system row-partitioned across ranks.  Each
iteration performs a halo exchange (sparse mat-vec) and two global
reductions — the dot products — making CG the canonical
collective-latency-bound HPC kernel and a sharp test for
checkpointing inside tight allreduce loops.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import app
from repro.ompi.coll.base import SUM

TAG_LO = 51
TAG_HI = 52


def _halo_exchange(ctx, x_local):
    """Exchange boundary values with neighbours; returns (lo, hi)."""
    rank, size = ctx.rank, ctx.size
    reqs = []
    lo = hi = 0.0
    lo_req = hi_req = None
    if rank > 0:
        reqs.append((yield ctx.isend(float(x_local[0]), rank - 1, TAG_LO)))
        lo_req = yield ctx.irecv(rank - 1, TAG_HI)
    if rank < size - 1:
        reqs.append((yield ctx.isend(float(x_local[-1]), rank + 1, TAG_HI)))
        hi_req = yield ctx.irecv(rank + 1, TAG_LO)
    if lo_req is not None:
        result = yield ctx.wait(lo_req)
        lo = result[0]
    if hi_req is not None:
        result = yield ctx.wait(hi_req)
        hi = result[0]
    for req in reqs:
        yield ctx.wait(req)
    return lo, hi


def _apply_laplacian(ctx, x_local):
    """y = A x for the 1-D Laplacian (2 on diag, -1 off), distributed."""
    lo, hi = yield from _halo_exchange(ctx, x_local)
    y = 2.0 * x_local
    y[1:] -= x_local[:-1]
    y[:-1] -= x_local[1:]
    if ctx.rank > 0:
        y[0] -= lo
    if ctx.rank < ctx.size - 1:
        y[-1] -= hi
    return y


@app("cg")
def cg_main(ctx):
    """args: n_global (default 512), max_iters (default 200),
    tol (default 1e-8), checkpoint_at_iter (optional, rank 0),
    iter_compute_s (optional: override per-iteration compute time)."""
    n_global = int(ctx.args.get("n_global", 512))
    max_iters = int(ctx.args.get("max_iters", 200))
    tol = float(ctx.args.get("tol", 1e-8))
    checkpoint_at = ctx.args.get("checkpoint_at_iter")
    iter_compute_s = ctx.args.get("iter_compute_s")
    rank, size = ctx.rank, ctx.size

    base = n_global // size
    extra = n_global % size
    n_local = base + (1 if rank < extra else 0)

    # b = all ones; x0 = 0.
    b = np.ones(n_local)
    x = np.zeros(n_local)
    r = b.copy()
    p = r.copy()
    rs_old = yield from ctx.allreduce(float(r @ r), op=SUM)

    iters = 0
    for it in range(max_iters):
        ap = yield from _apply_laplacian(ctx, p)
        p_ap = yield from ctx.allreduce(float(p @ ap), op=SUM)
        alpha = rs_old / p_ap
        x += alpha * p
        r -= alpha * ap
        rs_new = yield from ctx.allreduce(float(r @ r), op=SUM)
        iters = it + 1
        yield ctx.compute(
            seconds=(
                float(iter_compute_s)
                if iter_compute_s is not None
                else max(n_local, 1) * 4e-9
            )
        )
        if checkpoint_at is not None and rank == 0 and iters == int(checkpoint_at):
            yield ctx.checkpoint()
        if rs_new**0.5 < tol:
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    residual = rs_old**0.5 if iters == max_iters else rs_new**0.5
    checksum = yield from ctx.allreduce(float(x.sum()), op=SUM)
    return {
        "rank": rank,
        "iters": iters,
        "residual": float(residual),
        "checksum": float(checksum),
    }
