"""Master/worker task farm.

Rank 0 hands out work units; workers compute and return results.
Exercises ``ANY_SOURCE`` receives (the matching path wildcards) and
unbalanced communication — the pattern under which unexpected-message
queues actually fill up, which matters for the drained-state image.
"""

from __future__ import annotations

from repro.apps.registry import app

TAG_WORK = 21
TAG_RESULT = 22
TAG_STOP = 23


@app("master_worker")
def master_worker_main(ctx):
    """args: n_tasks (default 20), task_seconds (default 1e-4)."""
    n_tasks = int(ctx.args.get("n_tasks", 20))
    task_seconds = float(ctx.args.get("task_seconds", 1e-4))
    rank, size = ctx.rank, ctx.size

    if size == 1:
        # Degenerate case: do everything locally.
        total = 0
        for task in range(n_tasks):
            yield ctx.compute(seconds=task_seconds)
            total += task * task
        return {"rank": 0, "total": total, "tasks_done": n_tasks}

    if rank == 0:
        results: dict[int, int] = {}
        next_task = 0
        outstanding = 0
        # Prime every worker.
        for worker in range(1, size):
            if next_task < n_tasks:
                yield from ctx.send(next_task, worker, TAG_WORK)
                next_task += 1
                outstanding += 1
            else:
                yield from ctx.send(None, worker, TAG_STOP)
        # Farm until done.
        while outstanding:
            (task_id, value), status = yield from ctx.recv(
                ctx.ANY_SOURCE, TAG_RESULT
            )
            results[task_id] = value
            outstanding -= 1
            if next_task < n_tasks:
                yield from ctx.send(next_task, status.source, TAG_WORK)
                next_task += 1
                outstanding += 1
            else:
                yield from ctx.send(None, status.source, TAG_STOP)
        total = sum(results.values())
        return {"rank": 0, "total": total, "tasks_done": len(results)}

    done = 0
    while True:
        task, status = yield from ctx.recv(0)
        if status.tag == TAG_STOP:
            break
        yield ctx.compute(seconds=task_seconds)
        yield from ctx.send((task, task * task), 0, TAG_RESULT)
        done += 1
    return {"rank": rank, "tasks_done": done}
