"""Shared stable storage.

Models the administrator-provided shared RAID filesystem of paper
section 5.2: reachable from every node and persistent across any node
failure.  Access from a node pays a network hop cost in addition to the
disk transfer time, so gathering large snapshots is visibly more
expensive than local writes — the effect the FILEM experiments measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.vfs.fsbase import FS

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel


class SharedFS(FS):
    """Cluster-wide stable storage (RAID over the service network)."""

    def __init__(
        self,
        kernel: "Kernel",
        name: str = "stable",
        bandwidth_Bps: float = 200e6,
        op_latency_s: float = 2e-3,
        net_hop_s: float = 100e-6,
    ):
        super().__init__(
            kernel, name=name, bandwidth_Bps=bandwidth_Bps, op_latency_s=op_latency_s
        )
        self.net_hop_s = net_hop_s

    def _io_time(self, nbytes: int) -> float:
        # one network hop per operation, on top of the disk transfer —
        # pricing through the hook keeps batched read_many/write_many
        # identical in total time to per-file loops
        return self.net_hop_s + super()._io_time(nbytes)

    def mark_unreachable(self) -> None:
        """Stable storage survives node failures by definition; refuse."""
        raise AssertionError("stable storage cannot become unreachable")
